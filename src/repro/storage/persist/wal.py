"""File-backed write-ahead binlog (paper Section 5 / 7.3).

Production OpenMLDB persists every table through a binlog plus snapshot
scheme: appends land in segment files on disk, a restarted tablet loads
the last snapshot and replays the binlog tail.  :class:`FileBinlog` is
that binlog:

* **frames** — each appended entry is one self-describing frame::

      +---------+------+-----------+-------+-------------+---------+-------+
      | offset  | kind | table_len | table | payload_len | payload | crc32 |
      | u64     | u8   | u16       | utf-8 | u32         | bytes   | u32   |
      +---------+------+-----------+-------+-------------+---------+-------+

  ``kind`` distinguishes row frames (payload = the
  :class:`~repro.storage.encoding.RowCodec` encoding of the row — the
  same compact layout the memtable accounts in) from control frames
  (payload = utf-8 event text, e.g. an explicit LSM flush or compaction,
  so recovery can re-apply storage events in stream order).  The
  trailing CRC covers the whole frame; replay stops at the first frame
  that fails it, which is exactly the torn-tail semantics of a real WAL.

* **segments** — frames append to ``binlog-<first_offset>.wal``; once a
  segment exceeds ``segment_bytes`` the log rotates to a new file named
  by the next frame's offset, so :meth:`replay` can skip whole segments
  below the requested offset without parsing them.

* **fsync batching** — appends buffer in the OS page cache and are
  fsync'd every ``fsync_every`` frames (and on :meth:`sync`/:meth:`close`),
  the standard group-commit trade: bounded loss window, amortised
  syscall cost.  :attr:`synced_offset` is the durability watermark.
"""

from __future__ import annotations

import dataclasses
import os
import struct
import zlib
from typing import Iterator, List, Optional

from ...errors import StorageError
from ...obs import NULL_OBS, Observability

__all__ = ["FRAME_ROW", "FRAME_CONTROL", "WalFrame", "FileBinlog"]

FRAME_ROW = 0
FRAME_CONTROL = 1

_HEADER = struct.Struct("<QBH")  # offset, kind, table_len
_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")


@dataclasses.dataclass(frozen=True)
class WalFrame:
    """One decoded binlog frame."""

    offset: int
    kind: int
    table: str
    payload: bytes

    @property
    def is_row(self) -> bool:
        return self.kind == FRAME_ROW

    def control_text(self) -> str:
        return self.payload.decode("utf-8")


def _segment_name(first_offset: int) -> str:
    return f"binlog-{first_offset:012d}.wal"


def _segment_first_offset(name: str) -> int:
    return int(name[len("binlog-"):-len(".wal")])


class FileBinlog:
    """Append-only segmented WAL with offset-addressed replay."""

    def __init__(self, directory: str, segment_bytes: int = 1 << 20,
                 fsync_every: int = 64,
                 obs: Optional[Observability] = None) -> None:
        if segment_bytes <= 0:
            raise StorageError("segment_bytes must be positive")
        if fsync_every <= 0:
            raise StorageError("fsync_every must be positive")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync_every = fsync_every
        os.makedirs(directory, exist_ok=True)
        obs = obs or NULL_OBS
        self._m_appends = obs.registry.counter("storage.binlog.appends")
        self._m_syncs = obs.registry.counter("storage.binlog.syncs")
        self._m_rotations = obs.registry.counter("storage.binlog.rotations")
        self._m_bytes = obs.registry.counter("storage.binlog.bytes")
        self._file = None
        self._file_bytes = 0
        self._unsynced = 0
        self.synced_offset = -1
        self.last_offset = -1
        for frame in self.replay(0):
            self.last_offset = max(self.last_offset, frame.offset)
        self.synced_offset = self.last_offset

    # ------------------------------------------------------------------
    # append path

    def append(self, offset: int, table: str, payload: bytes,
               kind: int = FRAME_ROW) -> None:
        """Append one frame; fsync'd in batches of ``fsync_every``."""
        table_bytes = table.encode("utf-8")
        body = (_HEADER.pack(offset, kind, len(table_bytes)) + table_bytes +
                _LEN.pack(len(payload)) + payload)
        frame = body + _CRC.pack(zlib.crc32(body))
        if self._file is None or self._file_bytes >= self.segment_bytes:
            self._rotate(offset)
        self._file.write(frame)
        self._file_bytes += len(frame)
        self.last_offset = max(self.last_offset, offset)
        self._unsynced += 1
        self._m_appends.inc()
        self._m_bytes.inc(len(frame))
        if self._unsynced >= self.fsync_every:
            self.sync()

    def _rotate(self, first_offset: int) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._m_rotations.inc()
        path = os.path.join(self.directory, _segment_name(first_offset))
        self._file = open(path, "ab")
        self._file_bytes = self._file.tell()

    def sync(self) -> None:
        """Flush buffered frames and fsync the active segment."""
        if self._file is None:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0
        self.synced_offset = self.last_offset
        self._m_syncs.inc()

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    # replay path

    def segments(self) -> List[str]:
        """Segment file paths, oldest first."""
        names = sorted(name for name in os.listdir(self.directory)
                       if name.startswith("binlog-")
                       and name.endswith(".wal"))
        return [os.path.join(self.directory, name) for name in names]

    def replay(self, from_offset: int = 0) -> Iterator[WalFrame]:
        """Yield frames with ``offset >= from_offset`` in append order.

        Segment names carry their first offset, so whole segments below
        the requested offset are skipped without parsing.  A corrupt or
        torn frame ends replay at that point (the tail past the last
        complete fsync'd frame is, by construction, not acknowledged).
        """
        if self._file is not None:
            # Same-process replay must see buffered (not yet fsync'd)
            # frames; flush to the OS so reads observe the full log.
            self._file.flush()
        paths = self.segments()
        firsts = [_segment_first_offset(os.path.basename(p)) for p in paths]
        for index, path in enumerate(paths):
            if index + 1 < len(paths) and firsts[index + 1] < from_offset:
                continue  # the next segment still starts at/below target
            for frame in self._read_segment(path):
                if frame.offset >= from_offset:
                    yield frame

    @staticmethod
    def _read_segment(path: str) -> Iterator[WalFrame]:
        with open(path, "rb") as handle:
            data = handle.read()
        cursor = 0
        size = len(data)
        while cursor + _HEADER.size <= size:
            offset, kind, table_len = _HEADER.unpack_from(data, cursor)
            body_end = cursor + _HEADER.size + table_len + _LEN.size
            if body_end > size:
                return  # torn header/table tail
            table = data[cursor + _HEADER.size:
                         cursor + _HEADER.size + table_len]
            (payload_len,) = _LEN.unpack_from(data, body_end - _LEN.size)
            frame_end = body_end + payload_len + _CRC.size
            if frame_end > size:
                return  # torn payload tail
            (stored_crc,) = _CRC.unpack_from(data,
                                             frame_end - _CRC.size)
            body = data[cursor:frame_end - _CRC.size]
            if zlib.crc32(body) != stored_crc:
                return  # corrupt frame: stop at the last good prefix
            payload = data[body_end:body_end + payload_len]
            yield WalFrame(offset=offset, kind=kind,
                           table=table.decode("utf-8"), payload=payload)
            cursor = frame_end
