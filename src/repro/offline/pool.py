"""Process-pool execution of (key, PART_ID) window tasks (Section 6).

Python threads share one GIL, so the thread pool in
:class:`~repro.offline.engine.OfflineEngine` pipelines window tasks but
cannot speed up CPU-bound folds.  This module runs the same tasks on
``multiprocessing`` workers — the reproduction's stand-in for the
paper's multi-server batch cluster — with two properties the paper's
engine also needs:

* **a compact wire format** — rows cross the process boundary encoded
  with the storage layer's :class:`~repro.storage.encoding.RowCodec`
  (the same bytes the binlog and snapshots persist), framed with an
  18-byte per-event header carrying ``(source, ts, anchor, emit)``;
* **a picklable task spec** — closures don't pickle, but the planner's
  frozen :class:`~repro.sql.planner.WindowPlan` and
  :class:`~repro.schema.Schema` do, so each worker *recompiles* the
  window (cached per spec key) and runs the identical
  :class:`~repro.offline.partial.WindowKernel` code path, which is what
  keeps process output byte-identical to the serial engine.

Workers report their task time via ``time.thread_time()`` (real CPU
seconds measured *in the worker process*, the measured-process-time
replacement for the parent's GIL-shared clock) plus a log-bucket
histogram state that the parent merges exactly into its registry
(``Histogram.merge_state`` — the fleet-wide histogram merge that
mergeable partials unlock).

Pool creation can fail in sandboxes that forbid ``fork``/``spawn``;
:class:`WindowProcessPool` probes at construction and raises
:class:`ProcessPoolUnavailable` so the engine can degrade to threads.
"""

from __future__ import annotations

import dataclasses
import struct
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..schema import Schema
from ..storage.encoding import RowCodec
from .partial import TaskEvent, WindowKernel

__all__ = ["WindowTaskSpec", "ProcessPoolUnavailable",
           "WindowProcessPool", "encode_events", "decode_events",
           "run_window_task", "compile_window_spec"]

# Per-event wire header: source table (0 = primary, 1+i = union i),
# timestamp, anchor index (-1 = context-only row), emit flag, row bytes.
_EVENT_HEADER = struct.Struct("<BqiBI")

_TASK_FOLD = "fold"
_TASK_SEGMENT = "segment"
_TASK_CARRY = "carry"


class ProcessPoolUnavailable(ExecutionError):
    """multiprocessing cannot start here; callers fall back to threads."""


@dataclasses.dataclass(frozen=True)
class WindowTaskSpec:
    """Everything a worker needs to recompile one window.

    All fields are plain data (frozen dataclasses, tuples, Schemas), so
    the spec pickles at well under a kilobyte — the compiled closures
    stay behind; workers rebuild them once per ``spec_key``.
    """

    plan: Any                      # sql.planner.WindowPlan
    schema: Schema                 # primary table schema
    table: str
    alias: str
    union_schemas: Tuple[Schema, ...] = ()


def compile_window_spec(spec: WindowTaskSpec) -> WindowKernel:
    """Recompile the window exactly as ``CompiledQuery`` does."""
    from ..sql.compiler import CompiledWindow
    from ..sql.expressions import Scope

    scope = Scope()
    scope.add_namespace(spec.alias, spec.schema.column_names)
    if spec.alias != spec.table:
        scope.add_alias(spec.table, spec.alias)
    return WindowKernel(CompiledWindow(spec.plan, spec.schema, scope))


def spec_codecs(spec: WindowTaskSpec) -> List[RowCodec]:
    """One codec per event source: primary first, then each union."""
    return [RowCodec(spec.schema)] + [RowCodec(schema)
                                      for schema in spec.union_schemas]


# ----------------------------------------------------------------------
# event wire format


def encode_events(events: Sequence[Tuple[int, int, Any, Optional[int]]],
                  emit_flags: Sequence[bool],
                  codecs: Sequence[RowCodec]) -> bytes:
    """Frame ``(source, ts, row, anchor)`` events into one task blob."""
    pieces: List[bytes] = []
    pack = _EVENT_HEADER.pack
    for (source, ts, row, anchor), emit in zip(events, emit_flags):
        row_bytes = codecs[source].encode(row)
        pieces.append(pack(source, ts,
                           -1 if anchor is None else anchor,
                           1 if emit else 0, len(row_bytes)))
        pieces.append(row_bytes)
    return b"".join(pieces)


def decode_events(blob: bytes, codecs: Sequence[RowCodec]
                  ) -> Tuple[List[TaskEvent], List[bool]]:
    """Inverse of :func:`encode_events`."""
    events: List[TaskEvent] = []
    emit_flags: List[bool] = []
    unpack = _EVENT_HEADER.unpack_from
    header_size = _EVENT_HEADER.size
    offset = 0
    end = len(blob)
    while offset < end:
        source, ts, anchor, emit, row_len = unpack(blob, offset)
        offset += header_size
        row = codecs[source].decode(blob[offset:offset + row_len])
        offset += row_len
        events.append((ts, row, None if anchor < 0 else anchor))
        emit_flags.append(bool(emit))
    return events, emit_flags


# ----------------------------------------------------------------------
# worker side

# Recompiled kernels keyed by the parent's spec key.  Bounded: an
# engine run uses one key per window, so a handful suffices.
_KERNEL_CACHE: Dict[str, Tuple[WindowKernel, List[RowCodec]]] = {}
_KERNEL_CACHE_CAP = 16


def _kernel_for(spec_key: str, spec: WindowTaskSpec
                ) -> Tuple[WindowKernel, List[RowCodec]]:
    cached = _KERNEL_CACHE.get(spec_key)
    if cached is None:
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_CAP:
            _KERNEL_CACHE.clear()
        cached = (compile_window_spec(spec), spec_codecs(spec))
        _KERNEL_CACHE[spec_key] = cached
    return cached


def _task_histogram_state(cpu_seconds: float) -> Dict[str, Any]:
    from ..obs.metrics import Histogram

    histogram = Histogram("offline.worker.task.ms")
    histogram.observe(cpu_seconds * 1_000)
    return histogram.state()


def run_window_task(payload: Tuple[str, str, WindowTaskSpec, bytes,
                                   Optional[List[Any]]]
                    ) -> Tuple[str, Any, float, Dict[str, Any]]:
    """Execute one (key, PART_ID) task inside a worker process.

    Returns ``(result_kind, result, cpu_seconds, histogram_state)``.
    ``cpu_seconds`` is this worker's own ``thread_time`` — real process
    compute time, which the parent records in place of its own clock.
    """
    kind, spec_key, spec, blob, seed = payload
    kernel, codecs = _kernel_for(spec_key, spec)
    started = time.thread_time()
    events, emit_flags = decode_events(blob, codecs)
    if kind == _TASK_FOLD:
        result_kind: str = "emits"
        result: Any = kernel.fold(events, emit_flags)
    elif kind == _TASK_SEGMENT:
        result_kind = "states"
        result = kernel.segment_states(events)
    elif kind == _TASK_CARRY:
        result_kind = "emits"
        result, _end_states = kernel.seeded_fold(events, emit_flags, seed)
    else:
        raise ExecutionError(f"unknown window task kind {kind!r}")
    cpu_seconds = time.thread_time() - started
    return (result_kind, result, cpu_seconds,
            _task_histogram_state(cpu_seconds))


def _pool_probe(value: int) -> int:
    return value + 1


# ----------------------------------------------------------------------
# parent side


class WindowProcessPool:
    """A probed ``ProcessPoolExecutor`` for window tasks.

    Construction forks/spawns the workers *and* round-trips a probe
    task, so an environment where multiprocessing cannot run fails
    here — with :class:`ProcessPoolUnavailable` — rather than midway
    through a batch run.  ``fork`` is preferred (no interpreter
    re-import per worker); the default context is the fallback.
    """

    def __init__(self, workers: int,
                 start_method: Optional[str] = None,
                 probe_timeout: float = 30.0) -> None:
        if workers <= 0:
            raise ExecutionError("pool workers must be positive")
        self.workers = workers
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            if start_method is None:
                methods = multiprocessing.get_all_start_methods()
                start_method = "fork" if "fork" in methods else None
            context = (multiprocessing.get_context(start_method)
                       if start_method is not None else None)
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=context)
            probe = self._executor.submit(_pool_probe, 41)
            if probe.result(timeout=probe_timeout) != 42:
                raise ExecutionError("pool probe returned garbage")
        except ProcessPoolUnavailable:
            raise
        except Exception as exc:
            self.close()
            raise ProcessPoolUnavailable(
                f"multiprocessing unavailable: {exc!r}") from exc

    def submit(self, payload: Any) -> Any:
        """Submit one task; returns the future."""
        return self._executor.submit(run_window_task, payload)

    def run_all(self, payloads: Sequence[Any]) -> List[Any]:
        """Run payloads concurrently, preserving order of results."""
        futures = [self.submit(payload) for payload in payloads]
        return [future.result() for future in futures]

    def close(self) -> None:
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WindowProcessPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
