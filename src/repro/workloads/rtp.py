"""RTP item-ranking workload (paper Section 9.1 / Figure 7).

Akulaku's RTP service ranks items per user in real time: a stream of
``(user, ts, item, score)`` events, queried as "the current top-N items
for this user".  Figure 7 compares OpenMLDB (sub-millisecond Top1, ~5 ms
Top8) against Flink (sub-100 ms) and GreenPlum (full recomputation).

:class:`OpenMLDBTopN` is the OpenMLDB-side service: it reuses the
two-level skiplist with the **score** as the ordering dimension, so the
stream stays pre-ranked per key and a Top-N read is a short prefix scan —
"pre-ranks stream data by keys ... thereby minimizing runtime sorting
overhead".
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Iterator, List, Optional, Tuple

from ..schema import TTLSpec
from ..storage.skiplist import TimeSeriesIndex

__all__ = ["RTPConfig", "generate_events", "generate_skewed_requests",
           "OpenMLDBTopN"]


@dataclasses.dataclass(frozen=True)
class RTPConfig:
    users: int = 200
    items: int = 500
    events: int = 20_000
    seed: int = 11
    start_ts: int = 1_650_000_000_000


def generate_events(config: RTPConfig = RTPConfig()
                    ) -> Iterator[Tuple[str, int, str, float]]:
    """Yield (user, ts, item, score) ranking events in time order."""
    rng = random.Random(config.seed)
    ts = config.start_ts
    for _ in range(config.events):
        yield (
            f"u{rng.randrange(config.users):05d}",
            ts,
            f"item{rng.randrange(config.items):05d}",
            round(rng.random(), 6),
        )
        ts += rng.randrange(1, 50)


def generate_skewed_requests(config: RTPConfig = RTPConfig(),
                             requests: int = 5_000,
                             hot_users: int = 8,
                             hot_fraction: float = 0.8,
                             seed: Optional[int] = None
                             ) -> Iterator[str]:
    """Yield request user keys with a hot-set/cold-tail skew.

    Real RTP traffic is Zipf-like: a handful of active users dominate
    the request stream while the long tail is touched rarely.  This is
    the shape the adaptive router exploits — incremental state for the
    hot set pays for itself, the tail stays on scans — so the ablation
    benchmark (``fig_adaptive``) drives exactly this distribution:
    ``hot_fraction`` of requests go to ``hot_users`` uniformly-chosen
    hot keys, the rest uniformly to everyone else.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    hot_users = max(1, min(hot_users, config.users))
    rng = random.Random(config.seed if seed is None else seed)
    hot = rng.sample(range(config.users), hot_users)
    cold = [u for u in range(config.users) if u not in set(hot)] or hot
    for _ in range(requests):
        pool = hot if rng.random() < hot_fraction else cold
        yield f"u{rng.choice(pool):05d}"


_SCORE_SCALE = 1_000_000  # scores in [0,1] → integer ordering dimension


class OpenMLDBTopN:
    """Score-pre-ranked TopN serving on the refined skiplist.

    Ingest keeps each user's items ordered by score descending (the
    skiplist's "timestamp" dimension is the scaled score); a Top-N query
    walks the first few entries, deduplicating items, so Top1 is O(1) and
    TopN is O(N + duplicates) — the near-linear scaling of Figure 7.
    """

    name = "openmldb"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._index = TimeSeriesIndex(ttl=TTLSpec(), seed=seed)

    def insert(self, key: Any, ts: int, item: Any, score: float) -> None:
        self._index.put(key, int(score * _SCORE_SCALE), (item, score, ts))

    def top_n(self, key: Any, n: int) -> List[Tuple[Any, float]]:
        best: List[Tuple[Any, float]] = []
        seen = set()
        for _rank, payload in self._index.scan(key):
            item, score, _ts = payload
            if item in seen:
                continue
            seen.add(item)
            best.append((item, score))
            if len(best) >= n:
                break
        return best
