"""Nameserver: shard placement, leadership, and failover coordination.

Stands in for OpenMLDB's nameserver + ZooKeeper pair (Section 3.1's
high-availability layer).  Responsibilities:

* **placement** — assign each table partition's replica group across
  tablets (round-robin, leader on the first replica);
* **routing** — hash a partition key to its partition and return the
  current leader (writes) or any live replica (reads);
* **failover** — on a tablet failure, promote a live follower of every
  shard the dead tablet led (the ZooKeeper-watch behaviour, collapsed to
  an explicit :meth:`handle_failure` call in the simulation).

Writes replicate synchronously to all live replicas with a shared,
monotonically increasing offset per partition, so a promoted follower is
always as complete as the acknowledged writes.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..schema import IndexDef, Row, Schema
from .tablet import TabletServer

__all__ = ["ClusterTable", "NameServer"]


@dataclasses.dataclass
class ClusterTable:
    """Placement metadata for one distributed table."""

    name: str
    schema: Schema
    indexes: Tuple[IndexDef, ...]
    partitions: int
    replicas: int
    # partition id → ordered tablet names (first = initial leader)
    assignment: Dict[int, List[str]]
    next_offset: Dict[int, int]


class NameServer:
    """Coordinates a set of tablet servers."""

    def __init__(self, tablets: Sequence[TabletServer]) -> None:
        if not tablets:
            raise StorageError("cluster needs at least one tablet")
        self.tablets: Dict[str, TabletServer] = {
            tablet.name: tablet for tablet in tablets}
        self.tables: Dict[str, ClusterTable] = {}
        self.failovers = 0

    # ------------------------------------------------------------------
    # DDL / placement

    def create_table(self, name: str, schema: Schema,
                     indexes: Sequence[IndexDef], partitions: int = 4,
                     replicas: int = 2) -> ClusterTable:
        if name in self.tables:
            raise StorageError(f"cluster table {name!r} already exists")
        if replicas > len(self.tablets):
            raise StorageError(
                f"replicas={replicas} exceeds tablet count "
                f"{len(self.tablets)}")
        tablet_names = list(self.tablets)
        assignment: Dict[int, List[str]] = {}
        for partition_id in range(partitions):
            chosen = [tablet_names[(partition_id + replica)
                                   % len(tablet_names)]
                      for replica in range(replicas)]
            assignment[partition_id] = chosen
            for position, tablet_name in enumerate(chosen):
                self.tablets[tablet_name].host_shard(
                    name, partition_id, schema, indexes,
                    is_leader=(position == 0))
        table = ClusterTable(name=name, schema=schema,
                             indexes=tuple(indexes), partitions=partitions,
                             replicas=replicas, assignment=assignment,
                             next_offset={p: 0 for p in range(partitions)})
        self.tables[name] = table
        return table

    # ------------------------------------------------------------------
    # routing

    def partition_for(self, table_name: str, key_value: Any) -> int:
        table = self._table(table_name)
        return hash(key_value) % table.partitions

    def leader_of(self, table_name: str,
                  partition_id: int) -> TabletServer:
        table = self._table(table_name)
        for tablet_name in table.assignment[partition_id]:
            tablet = self.tablets[tablet_name]
            if tablet.alive and tablet.shard(table_name,
                                             partition_id).is_leader:
                return tablet
        raise StorageError(
            f"no live leader for {table_name}[{partition_id}]; "
            "run handle_failure() to elect one")

    def live_replica(self, table_name: str,
                     partition_id: int) -> TabletServer:
        table = self._table(table_name)
        for tablet_name in table.assignment[partition_id]:
            tablet = self.tablets[tablet_name]
            if tablet.alive:
                return tablet
        raise StorageError(
            f"all replicas of {table_name}[{partition_id}] are down")

    def _table(self, name: str) -> ClusterTable:
        try:
            return self.tables[name]
        except KeyError:
            raise StorageError(f"unknown cluster table {name!r}") from None

    # ------------------------------------------------------------------
    # data path

    def put(self, table_name: str, row: Row,
            key_column: Optional[str] = None) -> int:
        """Write one row through the partition leader, replicating it.

        The partition key defaults to the first index's first key column.
        Returns the partition-local offset.
        """
        table = self._table(table_name)
        column = key_column or table.indexes[0].key_columns[0]
        key_value = row[table.schema.position(column)]
        partition_id = self.partition_for(table_name, key_value)
        offset = table.next_offset[partition_id]
        leader = self.leader_of(table_name, partition_id)
        leader.write(table_name, partition_id, row, offset)
        for tablet_name in table.assignment[partition_id]:
            tablet = self.tablets[tablet_name]
            if tablet is leader or not tablet.alive:
                continue
            tablet.write(table_name, partition_id, row, offset)
        table.next_offset[partition_id] = offset + 1
        return offset

    def get_latest(self, table_name: str, key_value: Any,
                   keys: Optional[Sequence[str]] = None
                   ) -> Optional[Tuple[int, Row]]:
        """Read the newest row for a key from any live replica."""
        table = self._table(table_name)
        key_columns = tuple(keys) if keys else table.indexes[0].key_columns
        partition_id = self.partition_for(table_name, key_value)
        replica = self.live_replica(table_name, partition_id)
        return replica.read_latest(table_name, partition_id, key_columns,
                                   key_value)

    # ------------------------------------------------------------------
    # failover

    def handle_failure(self, tablet_name: str) -> int:
        """Promote followers for every shard the failed tablet led.

        Returns the number of leadership transfers (the simulation's
        analogue of ZooKeeper watches firing).
        """
        failed = self.tablets[tablet_name]
        failed.fail()
        transfers = 0
        for table in self.tables.values():
            for partition_id, tablet_names in table.assignment.items():
                if tablet_name not in tablet_names:
                    continue
                shard = failed.shard(table.name, partition_id)
                if not shard.is_leader:
                    continue
                shard.is_leader = False
                # Promote the most caught-up live follower.
                candidates = [
                    self.tablets[other] for other in tablet_names
                    if other != tablet_name and self.tablets[other].alive
                ]
                if not candidates:
                    continue
                best = max(candidates,
                           key=lambda tablet: tablet.shard(
                               table.name, partition_id).applied_offset)
                best.promote(table.name, partition_id)
                transfers += 1
        self.failovers += transfers
        return transfers
