"""Tests for the two-level skiplist (paper Section 7.2)."""

import threading

from hypothesis import given, settings, strategies as st

from repro.schema import TTLKind, TTLSpec
from repro.storage.skiplist import AtomicReference, SkipList, TimeSeriesIndex


class TestAtomicReference:
    def test_cas_success_and_failure(self):
        ref = AtomicReference("a")
        assert ref.compare_and_set("a", "b")
        assert ref.get() == "b"
        assert not ref.compare_and_set("a", "c")
        assert ref.get() == "b"

    def test_cas_is_identity_based(self):
        marker = object()
        ref = AtomicReference(marker)
        assert ref.compare_and_set(marker, None)


class TestSkipList:
    def test_insert_and_get(self):
        skiplist = SkipList(seed=1)
        assert skiplist.insert("b", 2)
        assert skiplist.insert("a", 1)
        assert skiplist.get("a") == 1
        assert skiplist.get("b") == 2
        assert skiplist.get("c") is None
        assert skiplist.get("c", "fallback") == "fallback"

    def test_duplicate_insert_rejected(self):
        skiplist = SkipList(seed=1)
        assert skiplist.insert("a", 1)
        assert not skiplist.insert("a", 2)
        assert skiplist.get("a") == 1

    def test_items_in_key_order(self):
        skiplist = SkipList(seed=3)
        for key in (5, 1, 4, 2, 3):
            skiplist.insert(key, key * 10)
        assert [key for key, _ in skiplist.items()] == [1, 2, 3, 4, 5]

    def test_len_tracks_inserts_and_removes(self):
        skiplist = SkipList(seed=0)
        for index in range(50):
            skiplist.insert(index, index)
        assert len(skiplist) == 50
        assert skiplist.remove(25)
        assert not skiplist.remove(25)
        assert len(skiplist) == 49
        assert 25 not in skiplist

    def test_first_at_or_after(self):
        skiplist = SkipList(seed=0)
        for key in (10, 20, 30):
            skiplist.insert(key, str(key))
        assert skiplist.first_at_or_after(15) == (20, "20")
        assert skiplist.first_at_or_after(20) == (20, "20")
        assert skiplist.first_at_or_after(31) is None

    def test_get_or_insert(self):
        skiplist = SkipList(seed=0)
        first = skiplist.get_or_insert("k", list)
        second = skiplist.get_or_insert("k", list)
        assert first is second

    def test_concurrent_inserts_distinct_keys(self):
        skiplist = SkipList(seed=0)
        errors = []

        def worker(base):
            try:
                for index in range(200):
                    skiplist.insert(base * 1000 + index, index)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(skiplist) == 800
        keys = list(skiplist.keys())
        assert keys == sorted(keys)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), unique=True, max_size=80))
    def test_ordering_property(self, keys):
        skiplist = SkipList(seed=7)
        for key in keys:
            skiplist.insert(key, None)
        assert list(skiplist.keys()) == sorted(keys)


class TestTimeSeriesIndex:
    def test_put_and_latest(self):
        index = TimeSeriesIndex(seed=0)
        index.put("u1", 100, "row-a")
        index.put("u1", 300, "row-c")
        index.put("u1", 200, "row-b")
        assert index.latest("u1") == (300, "row-c")
        assert index.latest("missing") is None

    def test_scan_newest_first(self):
        index = TimeSeriesIndex(seed=0)
        for ts in (10, 30, 20, 40):
            index.put("k", ts, ts)
        assert [ts for ts, _ in index.scan("k")] == [40, 30, 20, 10]

    def test_scan_bounds_inclusive(self):
        index = TimeSeriesIndex(seed=0)
        for ts in range(10, 60, 10):
            index.put("k", ts, ts)
        result = [ts for ts, _ in index.scan("k", start_ts=40, end_ts=20)]
        assert result == [40, 30, 20]

    def test_scan_limit(self):
        index = TimeSeriesIndex(seed=0)
        for ts in range(100):
            index.put("k", ts, ts)
        assert len(list(index.scan("k", limit=7))) == 7

    def test_duplicate_timestamps_kept(self):
        index = TimeSeriesIndex(seed=0)
        index.put("k", 5, "first")
        index.put("k", 5, "second")
        rows = [row for _ts, row in index.scan("k")]
        assert sorted(rows) == ["first", "second"]
        assert len(index) == 2

    def test_out_of_order_insert_keeps_order(self):
        index = TimeSeriesIndex(seed=0)
        for ts in (50, 10, 40, 20, 30):
            index.put("k", ts, ts)
        assert [ts for ts, _ in index.scan("k")] == [50, 40, 30, 20, 10]

    def test_scan_all_covers_every_key(self):
        index = TimeSeriesIndex(seed=0)
        index.put("a", 1, "x")
        index.put("b", 2, "y")
        assert sorted(key for key, _ts, _row in index.scan_all()) \
            == ["a", "b"]

    def test_key_count(self):
        index = TimeSeriesIndex(seed=0)
        for key in ("a", "b", "a"):
            index.put(key, 1, None)
        assert index.key_count == 2


class TestTTLEviction:
    def _filled(self, spec):
        index = TimeSeriesIndex(ttl=spec, seed=0)
        for ts in range(10):
            index.put("k", ts * 100, ts)
        return index

    def test_absolute_eviction(self):
        index = self._filled(TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=300))
        removed = index.evict(now_ts=1000)
        # horizon = 700: tuples at ts < 700 go (ts 0..600 → 7 tuples).
        assert removed == 7
        assert [ts for ts, _ in index.scan("k")] == [900, 800, 700]

    def test_latest_eviction(self):
        index = self._filled(TTLSpec(kind=TTLKind.LATEST, lat_ttl=4))
        removed = index.evict(now_ts=1000)
        assert removed == 6
        assert [ts for ts, _ in index.scan("k")] == [900, 800, 700, 600]

    def test_abs_or_lat_takes_stricter(self):
        spec = TTLSpec(kind=TTLKind.ABS_OR_LAT, abs_ttl_ms=300, lat_ttl=8)
        index = self._filled(spec)
        index.evict(now_ts=1000)
        # absolute keeps 3, latest keeps 8 → OR evicts to the stricter 3.
        assert len(list(index.scan("k"))) == 3

    def test_abs_and_lat_takes_looser(self):
        spec = TTLSpec(kind=TTLKind.ABS_AND_LAT, abs_ttl_ms=300, lat_ttl=8)
        index = self._filled(spec)
        index.evict(now_ts=1000)
        # a tuple must violate BOTH bounds: keep max(3, 8) = 8.
        assert len(list(index.scan("k"))) == 8

    def test_unbounded_never_evicts(self):
        index = self._filled(TTLSpec())
        assert index.evict(now_ts=10 ** 12) == 0
        assert len(index) == 10

    def test_whole_list_expiry(self):
        index = self._filled(TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=1))
        removed = index.evict(now_ts=10 ** 9)
        assert removed == 10
        assert list(index.scan("k")) == []

    def test_eviction_only_touches_expired_keys(self):
        index = TimeSeriesIndex(
            ttl=TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=100), seed=0)
        index.put("old", 0, "o")
        index.put("new", 990, "n")
        assert index.evict(now_ts=1000) == 1
        assert index.latest("new") == (990, "n")
        assert index.latest("old") is None


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 10 ** 6)),
                min_size=1, max_size=120))
def test_scan_matches_sorted_reference(puts):
    """Property: a scan equals the sorted reference implementation."""
    index = TimeSeriesIndex(seed=0)
    reference = {}
    for key, ts in puts:
        index.put(key, ts, (key, ts))
        reference.setdefault(key, []).append(ts)
    for key, stamps in reference.items():
        got = [ts for ts, _row in index.scan(key)]
        assert got == sorted(stamps, reverse=True)
