"""Online real-time execution engine (paper Section 5)."""

from .binlog import BinlogEntry, Replicator
from .engine import EngineStats, OnlineEngine
from .incremental import SlidingWindowAggregator
from .preagg import (LongWindowOption, PreAggregator, PreAggQueryResult,
                     parse_long_windows)
from .segment_tree import SegmentTree
from .window_union import (DynamicScheduler, StaticScheduler, UnionStats,
                           WindowUnionProcessor)

__all__ = [
    "OnlineEngine", "EngineStats", "Replicator", "BinlogEntry",
    "SegmentTree", "SlidingWindowAggregator", "PreAggregator",
    "PreAggQueryResult", "LongWindowOption", "parse_long_windows",
    "WindowUnionProcessor", "StaticScheduler", "DynamicScheduler",
    "UnionStats",
]
