"""Offline batch execution engine (paper Section 6).

Executes a compiled feature script over the *full history* of the primary
table: every stored row becomes an anchor (the batch analogue of a
request tuple) and receives one output feature row.  The window semantics
replay the online engine exactly — a window anchored at row *r* contains
*r* plus the rows that were already present when *r* arrived — which is
what makes online/offline feature values consistent (Section 4's unified
plan, verified by :mod:`repro.core.consistency`).

Two paper optimisations live here:

* **Multi-window parallel optimisation** (Section 6.1) — windows without
  dependencies run as independent tasks; a hidden *index column* keyed to
  each anchor row lets the final ``ConcatJoin`` (a LAST JOIN on the index)
  realign per-window feature columns regardless of partition order.  The
  engine really executes windows concurrently on a thread pool, and also
  reports per-window measured times so benchmarks can derive the
  distributed makespan (see :mod:`repro.offline.scheduling`).
* **Time-aware skew resolving** (Section 6.2) — with a
  :class:`~repro.offline.skew.SkewConfig`, each window's per-key groups
  are split into ``(key, PART_ID)`` tasks along the timestamp quantiles,
  expanded rows providing cross-partition window context.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import (Any, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..errors import ExecutionError
from ..obs import NULL_OBS, Observability
from ..schema import Row
from ..sql.compiler import CompiledQuery, CompiledWindow
from ..storage.memtable import normalize_ts
from .scheduling import lpt_makespan
from .skew import SkewConfig, SkewResolver

__all__ = ["OfflineEngine", "OfflineStats"]


@dataclasses.dataclass
class OfflineStats:
    """Measured execution profile of one batch run.

    ``window_seconds`` maps window name → measured compute time.
    ``task_seconds`` lists individual (key, PART_ID) task times across all
    windows — the inputs to the makespan model.  ``serial_seconds`` is the
    sum of window times (a serial engine's cost); ``parallel_seconds`` the
    LPT makespan of the window tasks on ``workers`` workers.
    """

    rows: int = 0
    window_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    window_tasks: Dict[str, List[float]] = dataclasses.field(
        default_factory=dict)
    join_seconds: float = 0.0
    project_seconds: float = 0.0
    workers: int = 1
    used_parallel_windows: bool = False
    used_skew_resolver: bool = False
    tasks: int = 0

    @property
    def task_seconds(self) -> List[float]:
        return [seconds for tasks in self.window_tasks.values()
                for seconds in tasks]

    @property
    def serial_seconds(self) -> float:
        return sum(self.window_seconds.values())

    @property
    def parallel_seconds(self) -> float:
        """Distributed makespan under the run's window-execution mode.

        With the multi-window parallel optimisation every window's tasks
        pool into one schedule; without it, windows are stage barriers —
        each window's tasks schedule independently and the stages add up
        (within-window key parallelism exists either way, as in Spark).
        """
        if not self.window_tasks:
            return 0.0
        if self.used_parallel_windows:
            return lpt_makespan(self.task_seconds, self.workers)
        return sum(lpt_makespan(tasks, self.workers)
                   for tasks in self.window_tasks.values() if tasks)

    @property
    def total_serial_seconds(self) -> float:
        return (self.serial_seconds + self.join_seconds
                + self.project_seconds)

    @property
    def total_parallel_seconds(self) -> float:
        return (self.parallel_seconds + self.join_seconds
                + self.project_seconds)


# One window-source event: (ts, tie_breaker, row, anchor_index or None).
# anchor_index is the primary-row position for instance rows, None for
# rows contributed by WINDOW UNION tables (context only).
_Event = Tuple[int, Tuple[Any, ...], Row, Optional[int]]


class OfflineEngine:
    """Batch executor over the stored tables.

    Args:
        tables: table name → storage object.
        workers: simulated cluster width for the makespan model (thread
            pool size matches it for the real concurrent execution).
        obs: observability handle (default disabled).
    """

    def __init__(self, tables: Mapping[str, Any], workers: int = 8,
                 obs: Optional[Observability] = None) -> None:
        if workers <= 0:
            raise ExecutionError("workers must be positive")
        self._tables = tables
        self.workers = workers
        self._obs = obs or NULL_OBS
        registry = self._obs.registry
        self._m_runs = registry.counter("offline.runs")
        self._m_anchors = registry.counter("offline.anchor_rows")
        self._m_tasks = registry.counter("offline.tasks")
        self._m_skew_tasks = registry.counter("offline.skew.tasks")
        self._m_skew_expanded = registry.counter(
            "offline.skew.expanded_rows")

    # ------------------------------------------------------------------

    def execute(self, compiled: CompiledQuery,
                parallel_windows: bool = True,
                skew: Optional[SkewConfig] = None
                ) -> Tuple[List[Row], OfflineStats]:
        """Run the batch computation; returns (feature rows, stats)."""
        with self._obs.tracer.span("offline.execute",
                                   table=compiled.plan.table,
                                   workers=self.workers) as root:
            return self._execute(compiled, parallel_windows, skew, root)

    def _execute(self, compiled: CompiledQuery, parallel_windows: bool,
                 skew: Optional[SkewConfig], root: Any
                 ) -> Tuple[List[Row], OfflineStats]:
        tracer = self._obs.tracer
        plan = compiled.plan
        stats = OfflineStats(workers=self.workers,
                             used_parallel_windows=parallel_windows,
                             used_skew_resolver=skew is not None)
        primary = self._tables[plan.table]
        anchors: List[Row] = list(primary.rows())
        stats.rows = len(anchors)
        self._m_runs.inc()
        self._m_anchors.inc(len(anchors))

        # LAST JOINs: resolve each anchor's combined row.
        started = time.perf_counter()
        with tracer.span("offline.join", parent=root):
            combined_rows = self._resolve_joins(compiled, anchors)
        stats.join_seconds = time.perf_counter() - started

        # Window aggregates, one result vector per anchor.  The hidden
        # index column of Section 6.1 is the anchor position itself: each
        # window task emits (anchor_index, values) pairs and the concat
        # step joins on it.
        aggregate_columns: List[List[Any]] = [
            [None] * compiled.aggregate_count for _ in anchors]
        window_jobs = [(name, window)
                       for name, window in compiled.windows.items()
                       if window.aggregates]

        def run_window(job: Tuple[str, CompiledWindow]) -> Tuple[str, float,
                                                                 List[float]]:
            # thread_time, not perf_counter: when windows run concurrently
            # on the pool, wall-clock spans would absorb other threads'
            # GIL slices and double-count work in the makespan model.
            # The span parent is passed explicitly — pool threads have no
            # thread-local span stack of their own.
            name, window = job
            with tracer.span("offline.window", window=name,
                             parent=root) as span:
                window_started = time.thread_time()
                task_times = self._compute_window(
                    compiled, window, anchors, aggregate_columns, skew)
                span.set_tag(tasks=len(task_times))
            return (name, time.thread_time() - window_started, task_times)

        if parallel_windows and len(window_jobs) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(run_window, window_jobs))
        else:
            outcomes = [run_window(job) for job in window_jobs]
        registry = self._obs.registry
        for name, seconds, task_times in outcomes:
            stats.window_seconds[name] = seconds
            stats.window_tasks[name] = task_times
            stats.tasks += len(task_times)
            self._m_tasks.inc(len(task_times))
            if self._obs.enabled:
                # Per-partition task timings: the skew figures (12–13)
                # read straight off this distribution's p99/max.
                task_histogram = registry.histogram("offline.task.ms",
                                                    window=name)
                for task_seconds in task_times:
                    task_histogram.observe(task_seconds * 1_000)

        # ConcatJoin + final projection.
        started = time.perf_counter()
        output: List[Row] = []
        limit = plan.statement.limit
        with tracer.span("offline.project", parent=root):
            for index, combined in enumerate(combined_rows):
                if compiled.where_fn is not None \
                        and compiled.where_fn(combined) is not True:
                    continue
                extended = combined + tuple(aggregate_columns[index])
                output.append(compiled.project(extended))
                if limit is not None and len(output) >= limit:
                    break
        stats.project_seconds = time.perf_counter() - started
        return output, stats

    # ------------------------------------------------------------------
    # joins

    def _resolve_joins(self, compiled: CompiledQuery,
                       anchors: Sequence[Row]) -> List[Row]:
        if not compiled.joins:
            return [tuple(anchor) for anchor in anchors]
        combined_rows: List[Row] = []
        for anchor in anchors:
            combined: List[Any] = [None] * compiled.combined_width
            combined[:len(anchor)] = anchor
            for join in compiled.joins:
                key_value = join.key_fn(tuple(combined))
                table = self._tables[join.plan.right_table]
                matched: Optional[Row] = None
                if join.residual_fn is None:
                    hit = table.last_join_lookup(join.key_columns, key_value)
                    matched = hit[1] if hit is not None else None
                else:
                    # Residual scan through the chunked API: candidate
                    # rows arrive a block at a time, same as the online
                    # engine's window fetches.
                    index = table.find_index(join.key_columns)
                    for block in table.window_scan_blocks(
                            join.key_columns, index.ts_column, key_value):
                        for _ts, candidate in block:
                            probe = list(combined)
                            probe[join.start_slot:
                                  join.start_slot
                                  + join.right_width] = candidate
                            if join.residual_fn(tuple(probe)) is True:
                                matched = candidate
                                break
                        if matched is not None:
                            break
                if matched is not None:
                    combined[join.start_slot:
                             join.start_slot + join.right_width] = matched
            combined_rows.append(tuple(combined))
        return combined_rows

    # ------------------------------------------------------------------
    # windows

    def _window_events(self, compiled: CompiledQuery,
                       window: CompiledWindow,
                       anchors: Sequence[Row]) -> List[_Event]:
        """Assemble the window's source events in replay order.

        Replay order is (ts, table, sequence): the order in which an
        online system would have ingested the same data, which is what
        makes batch window contents equal the request-time contents.
        """
        plan = window.plan
        events: List[_Event] = []
        for position, anchor in enumerate(anchors):
            ts = normalize_ts(window.order_value(anchor))
            events.append((ts, (0, position), anchor, position))
        for union_position, union_table in enumerate(plan.union_tables):
            table = self._tables[union_table]
            for sequence, row in enumerate(table.rows()):
                ts = normalize_ts(window.order_value(row))
                events.append((ts, (1 + union_position, sequence), row, None))
        events.sort(key=lambda event: (event[0], event[1]))
        return events

    def _compute_window(self, compiled: CompiledQuery,
                        window: CompiledWindow,
                        anchors: Sequence[Row],
                        aggregate_columns: List[List[Any]],
                        skew: Optional[SkewConfig]) -> List[float]:
        """Compute one window's aggregates for every anchor.

        Returns the measured per-task times (one task per (key, PART_ID)
        group — or per key when skew resolving is off).
        """
        plan = window.plan
        events = self._window_events(compiled, window, anchors)
        key_fn = window.partition_key

        if skew is not None:
            resolver = SkewResolver(skew)
            tasks = resolver.build_tasks(
                [event for event in events],
                key_fn=lambda event: key_fn(event[2]),
                ts_fn=lambda event: event[0],
                range_ms=plan.range_preceding_ms,
                rows_preceding=plan.rows_preceding)
            self._m_skew_tasks.inc(len(tasks))
            expanded = sum(1 for task in tasks
                           for tagged in task.rows if tagged.expanded)
            if expanded:
                self._m_skew_expanded.inc(expanded)
            task_groups = [
                ([tagged.row for tagged in task.rows],
                 [not tagged.expanded for tagged in task.rows])
                for task in tasks
            ]
        else:
            grouped: Dict[Any, List[_Event]] = {}
            for event in events:
                grouped.setdefault(key_fn(event[2]), []).append(event)
            task_groups = [
                (group, [True] * len(group))
                for group in (grouped[key] for key in sorted(
                    grouped, key=str))
            ]

        task_times: List[float] = []
        for group_events, emit_flags in task_groups:
            started = time.thread_time()
            self._run_group(window, group_events, emit_flags,
                            aggregate_columns)
            task_times.append(time.thread_time() - started)
        return task_times

    def _run_group(self, window: CompiledWindow,
                   group_events: Sequence[_Event],
                   emit_flags: Sequence[bool],
                   aggregate_columns: List[List[Any]]) -> None:
        """Slide one (key[, PART_ID]) group through the window frame."""
        from ..online.incremental import SlidingWindowAggregator

        plan = window.plan
        functions = [(compiled_agg.binding.func_name,
                      compiled_agg.binding.constants)
                     for compiled_agg in window.aggregates]
        extractors = [compiled_agg.arg_fn
                      for compiled_agg in window.aggregates]
        slots = [compiled_agg.slot for compiled_agg in window.aggregates]
        include_current = not (plan.exclude_current_row
                               or plan.instance_not_in_window)
        max_rows = plan.rows_preceding
        if max_rows is not None and not include_current:
            max_rows = max(max_rows - 1, 0)
        if plan.maxsize is not None:
            max_rows = (plan.maxsize if max_rows is None
                        else min(max_rows, plan.maxsize))
        aggregator = SlidingWindowAggregator(
            functions, extractors,
            range_ms=plan.range_preceding_ms, max_rows=max_rows)

        for event, emit in zip(group_events, emit_flags):
            ts, _tie, row, anchor_index = event
            is_instance = anchor_index is not None
            if not is_instance:
                aggregator.insert(ts, row)
                continue
            if include_current:
                aggregator.insert(ts, row)
                if emit:
                    self._emit(aggregator.results(), slots, anchor_index,
                               aggregate_columns)
            elif plan.instance_not_in_window:
                # Instance rows never enter the window; the anchor itself
                # participates transiently unless also excluded.
                aggregator.evict_to(ts)
                if emit:
                    values = (aggregator.results()
                              if plan.exclude_current_row
                              else aggregator.results_with(row))
                    self._emit(values, slots, anchor_index,
                               aggregate_columns)
            else:
                # EXCLUDE CURRENT_ROW: evaluate the frame anchored at ts
                # before adding the row (it joins later windows).
                aggregator.evict_to(ts)
                if emit:
                    self._emit(aggregator.results(), slots, anchor_index,
                               aggregate_columns)
                aggregator.insert(ts, row)

    @staticmethod
    def _emit(values: Sequence[Any], slots: Sequence[int],
              anchor_index: int,
              aggregate_columns: List[List[Any]]) -> None:
        for slot, value in zip(slots, values):
            aggregate_columns[anchor_index][slot] = value
