"""Baseline systems re-implemented for the evaluation (Section 9).

Each class keeps the *specific inefficiency* the paper attributes to the
system it models — interpreted execution, per-request sorting, full
scans, RPC serialisation, serial stages, full recomputation — inside the
same runtime as OpenMLDB, so relative comparisons are meaningful.
"""

from .base import BaselineOnlineEngine, BaselineStats
from .duckdb import DuckDBEngine
from .flink import FlinkTopNEngine
from .greenplum import GreenplumTopNEngine
from .mysql import MySQLMemoryEngine
from .spark import SparkBatchEngine, SparkStats
from .trino_redis import TrinoRedisEngine

__all__ = [
    "BaselineOnlineEngine", "BaselineStats", "MySQLMemoryEngine",
    "DuckDBEngine", "TrinoRedisEngine", "FlinkTopNEngine",
    "GreenplumTopNEngine", "SparkBatchEngine", "SparkStats",
]
