"""Runtime memory management (paper Section 8.2).

Two mechanisms keep tablets from being OOM-killed:

* **Memory resource isolation** — a per-tablet ``max_memory_mb``; once
  usage crosses it, *writes fail but reads continue*, keeping the service
  online while operators scale or migrate shards.
* **Memory alerting** — callbacks fire when usage crosses a configurable
  fraction of the limit.

The adaptive execution router (:mod:`repro.adaptive`) layers two more
contracts on top:

* **Promotion budget** — :meth:`MemoryGovernor.try_reserve` accounts
  memory for *optional* state (auto-provisioned incremental windows)
  without raising: it declines reservations that would eat into the
  headroom kept for real writes, so self-tuning can never cause an
  insert to fail that would otherwise have succeeded.
* **Demotion pressure** — :meth:`MemoryGovernor.on_pressure` callbacks
  re-arm after every dip below the threshold (unlike ``on_alert``'s
  once-per-crossing semantics), giving the router a repeating "shed
  optional state now" signal.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Tuple

from ..errors import MemoryLimitExceededError

__all__ = ["MemoryGovernor"]

AlertCallback = Callable[[str, int, int], None]  # (tablet, used, limit)


class MemoryGovernor:
    """Tracks one tablet's memory and enforces its write limit.

    Args:
        tablet: tablet name (for alerts).
        max_memory_mb: hard write limit; ``None`` disables isolation.
        alert_fraction: usage fraction at which alerts fire.
    """

    def __init__(self, tablet: str, max_memory_mb: Optional[int] = None,
                 alert_fraction: float = 0.8) -> None:
        if max_memory_mb is not None and max_memory_mb <= 0:
            raise ValueError("max_memory_mb must be positive")
        if not 0.0 < alert_fraction <= 1.0:
            raise ValueError("alert_fraction must be in (0, 1]")
        self.tablet = tablet
        self.max_memory_bytes = (max_memory_mb * 1024 * 1024
                                 if max_memory_mb is not None else None)
        self.alert_fraction = alert_fraction
        self._used = 0
        self._lock = threading.Lock()
        self._alerts: List[AlertCallback] = []
        self._alerted = False
        self.rejected_writes = 0
        self._pressure: List[Tuple[float, AlertCallback]] = []
        self._pressure_armed: List[bool] = []
        self.rejected_reservations = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def headroom_bytes(self) -> Optional[int]:
        """Bytes left before the write limit; ``None`` when unlimited."""
        if self.max_memory_bytes is None:
            return None
        return max(self.max_memory_bytes - self._used, 0)

    def fraction_used(self) -> float:
        """Usage as a fraction of the limit (0.0 when unlimited)."""
        if self.max_memory_bytes is None:
            return 0.0
        return self._used / self.max_memory_bytes

    def on_alert(self, callback: AlertCallback) -> None:
        """Register an alert callback (fires once per threshold crossing)."""
        self._alerts.append(callback)

    def on_pressure(self, callback: AlertCallback,
                    fraction: float = 0.9) -> None:
        """Register a re-arming pressure callback.

        Fires (outside the lock) whenever a charge or reservation pushes
        usage across ``fraction`` of the limit, and re-arms as soon as a
        release drops usage back below it — so sustained pressure keeps
        firing, once per re-crossing.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self._pressure.append((fraction, callback))
        self._pressure_armed.append(True)

    def try_reserve(self, nbytes: int,
                    headroom_fraction: float = 0.25) -> bool:
        """Reserve ``nbytes`` for optional state if headroom allows.

        Unlike :meth:`charge`, this never raises and never counts a
        rejected write: it simply declines when the reservation would
        leave less than ``headroom_fraction`` of the limit free for real
        ingest.  Balance a successful reservation with :meth:`release`.

        Returns:
            True if the memory was reserved (and charged).
        """
        fired: List[AlertCallback] = []
        with self._lock:
            if self.max_memory_bytes is not None:
                floor = self.max_memory_bytes * (1.0 - headroom_fraction)
                if self._used + nbytes > floor:
                    self.rejected_reservations += 1
                    return False
            self._used += nbytes
            fired = self._pressure_crossings_locked()
        for callback in fired:
            callback(self.tablet, self._used, self.max_memory_bytes or 0)
        return True

    def _pressure_crossings_locked(self) -> List[AlertCallback]:
        """Collect armed pressure callbacks crossed at current usage."""
        if self.max_memory_bytes is None:
            return []
        fired: List[AlertCallback] = []
        for i, (fraction, callback) in enumerate(self._pressure):
            threshold = fraction * self.max_memory_bytes
            if self._pressure_armed[i] and self._used >= threshold:
                self._pressure_armed[i] = False
                fired.append(callback)
        return fired

    def charge(self, nbytes: int) -> None:
        """Account ``nbytes`` of incoming data for a write.

        Raises:
            MemoryLimitExceededError: when the write would cross the
                limit; the caller must leave the data unwritten (reads are
                unaffected — the isolation contract of Section 8.2).
        """
        with self._lock:
            if self.max_memory_bytes is not None \
                    and self._used + nbytes > self.max_memory_bytes:
                self.rejected_writes += 1
                raise MemoryLimitExceededError(
                    f"tablet {self.tablet!r}: write of {nbytes} B would "
                    f"exceed max_memory ({self._used} / "
                    f"{self.max_memory_bytes} B used); writes fail, reads "
                    "continue")
            self._used += nbytes
            crossed = (self.max_memory_bytes is not None
                       and self._used >= self.alert_fraction
                       * self.max_memory_bytes)
            pressure_fired = self._pressure_crossings_locked()
        if crossed and not self._alerted:
            self._alerted = True
            limit = self.max_memory_bytes or 0
            for callback in self._alerts:
                callback(self.tablet, self._used, limit)
        for callback in pressure_fired:
            callback(self.tablet, self._used, self.max_memory_bytes or 0)

    def release(self, nbytes: int) -> None:
        """Return memory after eviction/compaction."""
        with self._lock:
            self._used = max(self._used - nbytes, 0)
            if self.max_memory_bytes is not None and self._used \
                    < self.alert_fraction * self.max_memory_bytes:
                self._alerted = False
            if self.max_memory_bytes is not None:
                for i, (fraction, _) in enumerate(self._pressure):
                    if self._used < fraction * self.max_memory_bytes:
                        self._pressure_armed[i] = True
