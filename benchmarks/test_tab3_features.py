"""Table 3 — latency percentiles under growing feature counts.

Paper shape: scaling from 10 columns / 20 features to 1000 columns /
2100 features raises latency (TP50 0.6 → 11.7 ms) but keeps it within
tens of milliseconds even at the TP999 tail.
"""

from __future__ import annotations

import pytest

from _util import openmldb_for_config
from repro.bench import measure_latencies, print_table
from repro.workloads.microbench import MicroBenchConfig


@pytest.mark.benchmark(group="tab3")
def test_tab3_feature_count_sweep(benchmark):
    # columns → (value_columns, windows): features = windows × columns.
    cases = [(10, 2), (100, 2), (250, 4)]
    rows = []
    tp50s = []
    for value_columns, windows in cases:
        config = MicroBenchConfig(keys=20, rows_per_key=30,
                                  windows=windows, joins=0,
                                  union_tables=0,
                                  value_columns=value_columns, seed=31)
        db, data, _sql = openmldb_for_config(config, request_count=50)
        features = value_columns * windows
        stats = measure_latencies(
            lambda row, db=db: db.request_row("bench", row),
            data.requests[:40], warmup=5)
        tp50s.append(stats.tp50)
        rows.append([value_columns, features, stats.tp50, stats.tp90,
                     stats.tp95, stats.tp99, stats.tp999])
    print_table("Table 3: latency (ms) by feature count",
                ["#-Column", "#-Feature", "TP50", "TP90", "TP95",
                 "TP99", "TP999"], rows)

    # Shape: latency grows with feature count but stays within tens of
    # milliseconds at the tail.
    assert tp50s == sorted(tp50s)
    assert rows[-1][6] < 100.0  # TP999 bounded
    assert tp50s[-1] > tp50s[0]

    config = MicroBenchConfig(keys=20, rows_per_key=30, windows=2,
                              joins=0, union_tables=0, value_columns=100)
    db, data, _sql = openmldb_for_config(config, request_count=10)
    benchmark.pedantic(db.request_row, args=("bench", data.requests[0]),
                       rounds=20, iterations=1)
