"""Load-driven rebalancer: turn observed load into split/migrate plans.

Sidiq et al.'s OpenMLDB performance analysis (arXiv:2509.15529) shows
cluster throughput is governed by partition balance, so the rebalancer
closes the loop between observation and topology: it reads the gauges
the :mod:`repro.obs` registry already collects — per-replica
``cluster.replication.lag`` and per-deployment ``serving.queue.depth``
— plus per-tablet :class:`~repro.memory.governor.MemoryGovernor` byte
accounting, and emits a bounded plan of
:class:`SplitAction`/:class:`MigrateAction` steps:

* a partition holding more than ``split_threshold_bytes`` *and* more
  than ``imbalance_ratio`` times its table's mean partition size is
  **split** (the hot-key absorber);
* when the most-loaded tablet carries more than ``imbalance_ratio``
  times the bytes of the least-loaded live tablet, one leader shard is
  **migrated** from the former to the latter (the skew absorber);
* a tablet whose worst ``cluster.replication.lag`` gauge exceeds
  ``max_target_lag`` is never chosen as a migration target — moving
  load onto a struggling replica only amplifies the imbalance;
* while total ``serving.queue.depth`` exceeds ``queue_depth_limit``
  the plan is capped to a single action per round — rebalancing under
  overload must not add to the overload.

:meth:`Rebalancer.run_once` executes the plan through a
:class:`~repro.ctlplane.split.PartitionSplitter` and a
:class:`~repro.ctlplane.migrate.ShardMigrator`, both of which keep the
data plane serving throughout; every decision lands in the
``ctl.rebalance.*`` metric series with its reason string.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from ..obs import Observability
from .migrate import MigrationReport, ShardMigrator
from .split import PartitionSplitter, SplitReport

__all__ = ["SplitAction", "MigrateAction", "Rebalancer"]


@dataclasses.dataclass(frozen=True)
class SplitAction:
    """Plan step: split a hot partition into two children."""

    table: str
    partition_id: int
    reason: str


@dataclasses.dataclass(frozen=True)
class MigrateAction:
    """Plan step: move one shard replica between tablets."""

    table: str
    partition_id: int
    source: str
    target: str
    reason: str


Action = Union[SplitAction, MigrateAction]


class Rebalancer:
    """Observe load, emit a bounded plan, optionally execute it.

    Args:
        cluster: the :class:`~repro.cluster.NameServer` to balance.
        splitter: executor for :class:`SplitAction`; built on demand.
        migrator: executor for :class:`MigrateAction`; built on demand.
        split_threshold_bytes: minimum partition size before a split is
            worth its copy cost.
        imbalance_ratio: hot/mean (splits) and max/min tablet
            (migrations) ratio that counts as skew; must be > 1.
        max_target_lag: worst acceptable ``cluster.replication.lag``
            (entries) on a migration target.
        queue_depth_limit: total ``serving.queue.depth`` beyond which
            the plan is capped to one action.
        max_actions: plan-size cap per round.
    """

    def __init__(self, cluster, splitter: Optional[PartitionSplitter] = None,
                 migrator: Optional[ShardMigrator] = None,
                 split_threshold_bytes: int = 64 * 1024,
                 imbalance_ratio: float = 2.0,
                 max_target_lag: int = 256,
                 queue_depth_limit: int = 64,
                 max_actions: int = 4,
                 obs: Optional[Observability] = None) -> None:
        if imbalance_ratio <= 1.0:
            from ..errors import StorageError
            raise StorageError("imbalance_ratio must be > 1")
        self._cluster = cluster
        self._splitter = splitter or PartitionSplitter(cluster)
        self._migrator = migrator or ShardMigrator(cluster)
        self._split_threshold = split_threshold_bytes
        self._ratio = imbalance_ratio
        self._max_target_lag = max_target_lag
        self._queue_limit = queue_depth_limit
        self._max_actions = max_actions
        self._obs = obs if obs is not None else cluster.obs
        registry = self._obs.registry
        self._m_rounds = registry.counter("ctl.rebalance.rounds")
        self._m_planned = registry.counter("ctl.rebalance.planned")
        self._m_executed = registry.counter("ctl.rebalance.executed")
        self._m_skipped = registry.counter("ctl.rebalance.skipped")

    # ------------------------------------------------------------------
    # observation

    def tablet_bytes(self) -> Dict[str, int]:
        """Live tablets' governor byte usage (the balance signal)."""
        return {name: tablet.governor.used_bytes
                for name, tablet in self._cluster.tablets.items()
                if tablet.alive}

    def worst_lag(self, tablet_name: str) -> int:
        """Worst ``cluster.replication.lag`` gauge for one tablet."""
        worst = 0
        for instrument in self._obs.registry.series():
            if instrument.kind != "gauge" \
                    or instrument.name != "cluster.replication.lag":
                continue
            labels = dict(instrument.labels)
            if labels.get("tablet") == tablet_name:
                worst = max(worst, int(instrument.value))
        return worst

    def total_queue_depth(self) -> int:
        """Sum of ``serving.queue.depth`` gauges across deployments."""
        total = 0
        for instrument in self._obs.registry.series():
            if instrument.kind == "gauge" \
                    and instrument.name == "serving.queue.depth":
                total += int(instrument.value)
        return total

    def _partition_bytes(self, table) -> Dict[int, Tuple[int, str]]:
        """Per-partition (leader bytes, leader name) for one table."""
        sizes: Dict[int, Tuple[int, str]] = {}
        for partition_id in list(table.assignment):
            leader = self._cluster.leader_of(table.name, partition_id)
            if leader is None:
                continue
            shard = leader.shard(table.name, partition_id)
            sizes[partition_id] = (shard.store.memory_bytes, leader.name)
        return sizes

    # ------------------------------------------------------------------
    # planning

    def plan(self) -> List[Action]:
        """Emit a bounded list of actions for the current load shape."""
        actions: List[Action] = []
        budget = self._max_actions
        if self.total_queue_depth() > self._queue_limit:
            budget = 1  # overloaded: tread lightly
        for table in list(self._cluster.tables.values()):
            sizes = self._partition_bytes(table)
            if not sizes:
                continue
            mean = sum(b for b, _ in sizes.values()) / len(sizes)
            for partition_id, (nbytes, _leader) in sorted(
                    sizes.items(), key=lambda kv: -kv[1][0]):
                if len(actions) >= budget:
                    break
                if nbytes >= self._split_threshold \
                        and nbytes > self._ratio * max(mean, 1.0):
                    actions.append(SplitAction(
                        table.name, partition_id,
                        reason=f"hot: {nbytes}B > "
                               f"{self._ratio:g}x mean {mean:.0f}B"))
        if len(actions) < budget:
            migration = self._plan_migration()
            if migration is not None:
                actions.append(migration)
        self._m_planned.inc(len(actions))
        return actions

    def _plan_migration(self) -> Optional[MigrateAction]:
        loads = self.tablet_bytes()
        if len(loads) < 2:
            return None
        busiest = max(loads, key=lambda n: loads[n])
        targets = sorted(
            (name for name in loads
             if name != busiest
             and self.worst_lag(name) <= self._max_target_lag),
            key=lambda n: loads[n])
        if not targets or loads[busiest] <= \
                self._ratio * max(loads[targets[0]], 1):
            return None
        # Move the busiest tablet's largest leader shard to the first
        # (least-loaded, lag-healthy) target not already hosting it.
        candidates: List[Tuple[int, str, int]] = []
        for table in list(self._cluster.tables.values()):
            for partition_id, placement in list(table.assignment.items()):
                if busiest not in placement:
                    continue
                leader = self._cluster.leader_of(table.name, partition_id)
                if leader is None or leader.name != busiest:
                    continue
                nbytes = leader.shard(table.name,
                                      partition_id).store.memory_bytes
                candidates.append((nbytes, table.name, partition_id))
        for nbytes, table_name, partition_id in sorted(candidates,
                                                       reverse=True):
            placement = self._cluster.table_info(
                table_name).assignment[partition_id]
            for target in targets:
                if target not in placement:
                    return MigrateAction(
                        table_name, partition_id, busiest, target,
                        reason=f"skew: {busiest}={loads[busiest]}B > "
                               f"{self._ratio:g}x {target}="
                               f"{loads[target]}B")
        return None

    # ------------------------------------------------------------------
    # execution

    def run_once(self) -> List[Union[SplitReport, MigrationReport]]:
        """Plan and execute one round; returns the executed reports.

        Actions that fail (e.g. a target died between plan and
        execution) are counted as skipped, not raised — the next round
        re-plans from fresh observations.
        """
        from ..errors import StorageError

        self._m_rounds.inc()
        reports: List[Union[SplitReport, MigrationReport]] = []
        with self._obs.tracer.span("ctl.rebalance") as span:
            for action in self.plan():
                try:
                    if isinstance(action, SplitAction):
                        reports.append(self._splitter.split(
                            action.table, action.partition_id))
                    else:
                        reports.append(self._migrator.migrate(
                            action.table, action.partition_id,
                            action.source, action.target))
                    self._m_executed.inc()
                except StorageError:
                    self._m_skipped.inc()
            span.set_tag(executed=len(reports))
        return reports
