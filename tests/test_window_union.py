"""Tests for the self-adjusted window union (paper Section 5.2)."""

import random

import pytest

from repro.online.window_union import (DynamicScheduler, StaticScheduler,
                                       WindowUnionProcessor)


def skewed_stream(tuples=2000, keys=20, hot_fraction=0.7, seed=3):
    """Interleaved multi-table stream with one hot key."""
    rng = random.Random(seed)
    stream = []
    for index in range(tuples):
        if rng.random() < hot_fraction:
            key = "hot"
        else:
            key = f"k{rng.randrange(keys)}"
        table = ("left", "right")[index % 2]
        stream.append((table, key, index * 10, float(index % 100)))
    return stream


def processor(scheduler, incremental=True, range_ms=5_000,
              rebalance_every=200):
    return WindowUnionProcessor(
        functions=[("sum", ()), ("count", ())],
        arg_extractors=[lambda row: (row,)] * 2,
        scheduler=scheduler, range_ms=range_ms,
        incremental=incremental, rebalance_every=rebalance_every)


class TestSchedulers:
    def test_static_is_rigid(self):
        scheduler = StaticScheduler(workers=4)
        worker = scheduler.worker_for("a")
        scheduler.record("a", 100.0)
        scheduler.rebalance()
        assert scheduler.worker_for("a") == worker
        assert scheduler.rebalances == 0

    def test_static_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            StaticScheduler(workers=0)

    def test_dynamic_moves_keys_to_balance(self):
        scheduler = DynamicScheduler(workers=2, share_factor=1e9)
        # Two heavy keys initially hashed to the same worker.
        keys = ["a", "b"]
        placements = {key: scheduler.worker_for(key) for key in keys}
        scheduler.record("a", 10.0)
        scheduler.record("b", 10.0)
        scheduler.rebalance()
        new_placements = {key: scheduler.worker_for(key) for key in keys}
        assert set(new_placements.values()) == {0, 1}
        del placements

    def test_dynamic_shares_hot_key(self):
        scheduler = DynamicScheduler(workers=4, share_factor=2.0)
        scheduler.record("hot", 100.0)
        for index in range(12):
            scheduler.record(f"cold{index}", 1.0)
        scheduler.rebalance()
        # The hot key must now round-robin over several workers.
        workers = {scheduler.worker_for("hot") for _ in range(8)}
        assert len(workers) >= 2

    def test_dynamic_new_key_gets_hash_placement(self):
        scheduler = DynamicScheduler(workers=3)
        assert scheduler.worker_for("fresh") == hash("fresh") % 3


class TestCorrectness:
    def test_incremental_matches_static_results(self):
        """Both strategies must compute identical window aggregates."""
        stream = skewed_stream(tuples=400)
        fast = processor(DynamicScheduler(workers=4), incremental=True)
        slow = processor(StaticScheduler(workers=4), incremental=False)
        fast.run(iter(stream))
        slow.run(iter(stream))
        assert fast.last_results.keys() == slow.last_results.keys()
        for key in fast.last_results:
            fast_sum, fast_count = fast.last_results[key]
            slow_sum, slow_count = slow.last_results[key]
            assert fast_count == slow_count
            assert fast_sum == pytest.approx(slow_sum)

    def test_count_window_variant(self):
        stream = skewed_stream(tuples=300)
        fast = WindowUnionProcessor(
            [("max", ())], [lambda row: (row,)],
            DynamicScheduler(workers=2), max_rows=10)
        slow = WindowUnionProcessor(
            [("max", ())], [lambda row: (row,)],
            StaticScheduler(workers=2), max_rows=10, incremental=False)
        fast.run(iter(stream))
        slow.run(iter(stream))
        for key in fast.last_results:
            assert fast.last_results[key] == slow.last_results[key]


class TestStats:
    def test_stats_shape(self):
        stats = processor(DynamicScheduler(workers=4)).run(
            iter(skewed_stream(tuples=500)))
        assert stats.tuples == 500
        assert stats.makespan_seconds <= stats.compute_seconds + 1e-9
        assert len(stats.worker_loads) == 4
        assert stats.throughput > 0

    def test_dynamic_balances_better_than_static(self):
        stream = skewed_stream(tuples=5000, hot_fraction=0.75)
        static_stats = processor(
            StaticScheduler(workers=4), incremental=True,
            rebalance_every=250).run(iter(stream))
        dynamic_stats = processor(
            DynamicScheduler(workers=4, share_factor=1.2),
            incremental=True, rebalance_every=250).run(iter(stream))
        # With 75% of traffic on one key, static placement pins ~3/4 of
        # the load to one worker; sharing must visibly flatten it.
        assert dynamic_stats.imbalance < static_stats.imbalance * 0.9

    def test_incremental_beats_recompute_on_large_windows(self):
        stream = skewed_stream(tuples=1500, hot_fraction=0.9)
        incremental_stats = processor(
            DynamicScheduler(workers=4), incremental=True,
            range_ms=10 ** 9).run(iter(stream))
        recompute_stats = processor(
            StaticScheduler(workers=4), incremental=False,
            range_ms=10 ** 9).run(iter(stream))
        assert incremental_stats.compute_seconds \
            < recompute_stats.compute_seconds

    def test_rebalances_counted(self):
        stats = processor(DynamicScheduler(workers=4),
                          rebalance_every=100).run(
            iter(skewed_stream(tuples=500)))
        assert stats.rebalances == 5
