"""Built-in scalar and aggregate functions (paper Section 4.1, Table 1).

Aggregates are small state machines so the execution engines can use them
three ways:

* **one-shot** — fold a window's rows (offline batch path);
* **incremental** — ``add``/``remove`` for subtract-and-evict sliding
  windows (Section 5.2), available when ``invertible``;
* **merge** — combine partial states from pre-aggregation buckets
  (Section 5.1), available when ``mergeable``.  For order-sensitive but
  associative aggregates (``drawdown``) the state is segment-shaped and
  ``merge(older, newer)`` concatenates time segments.

The Table 1 extensions implemented here: ``topn_frequency``,
``avg_cate_where`` (and the ``*_cate``/``*_where`` family), ``drawdown``,
``ew_avg``, ``split_by_key``, plus ``distinct_count`` from the paper's
Figure 1 feature script.  NULL inputs are skipped, per SQL semantics.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import CompileError, ExecutionError

__all__ = [
    "AggregateFunction", "AGGREGATES", "SCALARS", "get_aggregate",
    "get_scalar", "is_aggregate",
]


class AggregateFunction:
    """Base class for aggregate implementations.

    Subclasses define ``create``, ``add``, ``result`` and — when supported —
    ``remove`` (invertible) and ``merge`` (mergeable).  ``extra_args`` is
    the number of constant arguments after the value expression(s), e.g.
    ``topn_frequency(col, 3)`` has one.
    """

    name: str = ""
    value_args: int = 1   # leading per-row expression arguments
    extra_args: int = 0   # trailing constant arguments
    invertible: bool = False
    mergeable: bool = False
    order_sensitive: bool = False
    #: ``merge`` replays the exact operation sequence of continuing a
    #: serial fold (not just an algebraic equivalent).  Aggregates whose
    #: merge is an approximation under some inputs must clear this so
    #: the offline carry path excludes them (pre-aggregation still uses
    #: the merge — its contract is the looser algebraic one).
    merge_exact: bool = True

    def __init__(self, *constants: Any) -> None:
        if len(constants) != self.extra_args:
            raise CompileError(
                f"{self.name} expects {self.extra_args} constant "
                f"argument(s), got {len(constants)}")
        self.constants = constants

    def create(self) -> Any:
        """Return a fresh accumulator state."""
        raise NotImplementedError

    def add(self, state: Any, *values: Any) -> None:
        """Fold one row's argument values into ``state``."""
        raise NotImplementedError

    def remove(self, state: Any, *values: Any) -> None:
        """Subtract one row (subtract-and-evict); invertible only."""
        raise ExecutionError(f"{self.name} is not invertible")

    def merge(self, older: Any, newer: Any) -> Any:
        """Combine two partial states (pre-aggregation); mergeable only."""
        raise ExecutionError(f"{self.name} is not mergeable")

    def result(self, state: Any) -> Any:
        """Extract the aggregate's value from ``state``."""
        raise NotImplementedError

    def compute(self, rows_newest_first: List[Tuple[Any, ...]]) -> Any:
        """One-shot evaluation over pre-extracted argument tuples."""
        state = self.create()
        # Order-sensitive aggregates consume oldest→newest.
        iterable = (reversed(rows_newest_first) if self.order_sensitive
                    else rows_newest_first)
        for values in iterable:
            self.add(state, *values)
        return self.result(state)


# ----------------------------------------------------------------------
# standard aggregates


class CountAgg(AggregateFunction):
    """``count(x)`` — non-NULL count; invertible and mergeable."""

    name = "count"
    invertible = True
    mergeable = True

    def create(self):
        return [0]

    def add(self, state, value):
        if value is not None:
            state[0] += 1

    def remove(self, state, value):
        if value is not None:
            state[0] -= 1

    def merge(self, older, newer):
        return [older[0] + newer[0]]

    def result(self, state):
        return state[0]


class SumAgg(AggregateFunction):
    """``sum(x)`` — NULL when the window holds no non-NULL value."""

    name = "sum"
    invertible = True
    mergeable = True

    def create(self):
        return [0, 0]  # total, non-null count

    def add(self, state, value):
        if value is not None:
            state[0] += value
            state[1] += 1

    def remove(self, state, value):
        if value is not None:
            state[0] -= value
            state[1] -= 1

    def merge(self, older, newer):
        return [older[0] + newer[0], older[1] + newer[1]]

    def result(self, state):
        return state[0] if state[1] else None


class AvgAgg(AggregateFunction):
    """``avg(x)`` — arithmetic mean over non-NULL values."""

    name = "avg"
    invertible = True
    mergeable = True

    def create(self):
        return [0.0, 0]

    def add(self, state, value):
        if value is not None:
            state[0] += value
            state[1] += 1

    def remove(self, state, value):
        if value is not None:
            state[0] -= value
            state[1] -= 1

    def merge(self, older, newer):
        return [older[0] + newer[0], older[1] + newer[1]]

    def result(self, state):
        return state[0] / state[1] if state[1] else None


class MinAgg(AggregateFunction):
    """MIN keeps a multiset so eviction under sliding windows stays exact.

    ``merge`` (the pre-aggregation path) collapses to the extreme value:
    merged bucket states never see eviction, so carrying the full
    multiset across segment-tree levels would only burn memory and time.
    """

    name = "min"
    invertible = True
    mergeable = True

    def create(self):
        return Counter()

    def add(self, state, value):
        if value is not None:
            state[value] += 1

    def remove(self, state, value):
        if value is not None:
            state[value] -= 1
            if state[value] <= 0:
                del state[value]

    def merge(self, older, newer):
        merged = Counter()
        candidates = [value for value in older] + [value for value in newer]
        if candidates:
            merged[self._extreme(candidates)] = 1
        return merged

    @staticmethod
    def _extreme(values):
        return min(values)

    def result(self, state):
        return min(state) if state else None


class MaxAgg(MinAgg):
    name = "max"

    @staticmethod
    def _extreme(values):
        return max(values)

    def result(self, state):
        return max(state) if state else None


class VarianceAgg(AggregateFunction):
    """Population variance via (count, sum, sum-of-squares) — fully
    invertible and mergeable, so it rides every optimisation path."""

    name = "variance"
    invertible = True
    mergeable = True

    def create(self):
        return [0, 0.0, 0.0]  # count, sum, sum of squares

    def add(self, state, value):
        if value is not None:
            state[0] += 1
            state[1] += value
            state[2] += value * value

    def remove(self, state, value):
        if value is not None:
            state[0] -= 1
            state[1] -= value
            state[2] -= value * value

    def merge(self, older, newer):
        return [older[0] + newer[0], older[1] + newer[1],
                older[2] + newer[2]]

    def result(self, state):
        count, total, squares = state
        if count == 0:
            return None
        mean = total / count
        return max(squares / count - mean * mean, 0.0)


class StddevAgg(VarianceAgg):
    """``stddev(x)`` — population standard deviation."""

    name = "stddev"

    def result(self, state):
        variance = super().result(state)
        return math.sqrt(variance) if variance is not None else None


class DistinctCountAgg(AggregateFunction):
    """``distinct_count(x)`` — number of distinct non-NULL values."""

    name = "distinct_count"
    invertible = True
    mergeable = True

    def create(self):
        return Counter()

    def add(self, state, value):
        if value is not None:
            state[value] += 1

    def remove(self, state, value):
        if value is not None:
            state[value] -= 1
            if state[value] <= 0:
                del state[value]

    def merge(self, older, newer):
        return older + newer

    def result(self, state):
        return len(state)


# ----------------------------------------------------------------------
# Table 1 extensions


class TopNFrequencyAgg(AggregateFunction):
    """``topn_frequency(col, n)`` — top-N keys by occurrence count.

    Returns a comma-joined string of keys, most frequent first, ties broken
    by key order for determinism (matching OpenMLDB's stable output).
    """

    name = "topn_frequency"
    extra_args = 1
    invertible = True
    mergeable = True

    def create(self):
        return Counter()

    def add(self, state, value):
        if value is not None:
            state[str(value)] += 1

    def remove(self, state, value):
        if value is not None:
            key = str(value)
            state[key] -= 1
            if state[key] <= 0:
                del state[key]

    def merge(self, older, newer):
        return older + newer

    def result(self, state):
        top_n = int(self.constants[0])
        ranked = sorted(state.items(), key=lambda item: (-item[1], item[0]))
        return ",".join(key for key, _count in ranked[:top_n])


class AvgCateWhereAgg(AggregateFunction):
    """``avg_cate_where(value, condition, category)`` (Table 1).

    Averages ``value`` over rows passing ``condition``, grouped by the
    ``category`` key; emits ``"cate1:avg,cate2:avg"`` sorted by category.
    """

    name = "avg_cate_where"
    value_args = 3
    invertible = True
    mergeable = True

    def create(self):
        return {}

    def add(self, state, value, condition, category):
        if value is None or category is None or not condition:
            return
        total, count = state.get(category, (0.0, 0))
        state[category] = (total + value, count + 1)

    def remove(self, state, value, condition, category):
        if value is None or category is None or not condition:
            return
        total, count = state.get(category, (0.0, 0))
        count -= 1
        if count <= 0:
            state.pop(category, None)
        else:
            state[category] = (total - value, count)

    def merge(self, older, newer):
        merged = dict(older)
        for category, (total, count) in newer.items():
            base_total, base_count = merged.get(category, (0.0, 0))
            merged[category] = (base_total + total, base_count + count)
        return merged

    def result(self, state):
        parts = [
            f"{category}:{total / count:g}"
            for category, (total, count) in sorted(state.items())
        ]
        return ",".join(parts)


class _CateAggBase(AggregateFunction):
    """Shared shell for ``<agg>_cate(value, category)`` aggregates.

    Groups values by category key and emits ``"cate1:value,cate2:value"``
    sorted by category — the unconditional siblings of ``avg_cate_where``.
    """

    value_args = 2
    invertible = True
    mergeable = True

    def create(self):
        return {}

    def add(self, state, value, category):
        if value is None or category is None:
            return
        total, count = state.get(category, (0.0, 0))
        state[category] = (total + value, count + 1)

    def remove(self, state, value, category):
        if value is None or category is None:
            return
        total, count = state.get(category, (0.0, 0))
        count -= 1
        if count <= 0:
            state.pop(category, None)
        else:
            state[category] = (total - value, count)

    def merge(self, older, newer):
        merged = dict(older)
        for category, (total, count) in newer.items():
            base_total, base_count = merged.get(category, (0.0, 0))
            merged[category] = (base_total + total, base_count + count)
        return merged

    def _value_of(self, total: float, count: int):
        raise NotImplementedError

    def result(self, state):
        return ",".join(
            f"{category}:{self._value_of(total, count):g}"
            for category, (total, count) in sorted(state.items()))


class SumCateAgg(_CateAggBase):
    """``sum_cate(v, cate)`` — per-category sums, ``"a:1,b:2"``."""

    name = "sum_cate"

    def _value_of(self, total, count):
        return total


class CountCateAgg(_CateAggBase):
    """``count_cate(v, cate)`` — per-category counts."""

    name = "count_cate"

    def _value_of(self, total, count):
        return count


class AvgCateAgg(_CateAggBase):
    """``avg_cate(v, cate)`` — per-category averages."""

    name = "avg_cate"

    def _value_of(self, total, count):
        return total / count


class _WhereAggBase(AggregateFunction):
    """Shared shell for ``<agg>_where(value, condition)`` aggregates."""

    value_args = 2
    inner_factory: Callable[[], AggregateFunction]

    def __init__(self, *constants):
        super().__init__(*constants)
        self._inner = self.inner_factory()

    def create(self):
        return self._inner.create()

    def add(self, state, value, condition):
        if condition:
            self._inner.add(state, value)

    def remove(self, state, value, condition):
        if condition:
            self._inner.remove(state, value)

    def merge(self, older, newer):
        return self._inner.merge(older, newer)

    def result(self, state):
        return self._inner.result(state)


class SumWhereAgg(_WhereAggBase):
    """``sum_where(v, cond)`` — sum over rows passing the condition."""

    name = "sum_where"
    invertible = True
    mergeable = True
    inner_factory = SumAgg


class CountWhereAgg(_WhereAggBase):
    """``count_where(v, cond)`` — count of rows passing the condition."""

    name = "count_where"
    invertible = True
    mergeable = True
    inner_factory = CountAgg


class AvgWhereAgg(_WhereAggBase):
    """``avg_where(v, cond)`` — average over rows passing the condition."""

    name = "avg_where"
    invertible = True
    mergeable = True
    inner_factory = AvgAgg


class MinWhereAgg(_WhereAggBase):
    """``min_where(v, cond)`` — minimum over rows passing the condition."""

    name = "min_where"
    invertible = True
    mergeable = True
    inner_factory = MinAgg


class MaxWhereAgg(_WhereAggBase):
    """``max_where(v, cond)`` — maximum over rows passing the condition."""

    name = "max_where"
    invertible = True
    mergeable = True
    inner_factory = MaxAgg


class DrawdownAgg(AggregateFunction):
    """``drawdown(col)`` — max decline fraction from a peak to a later trough.

    Order-sensitive but *associative over time segments*: the state
    ``(peak, trough, max_drawdown)`` of two consecutive segments merges as
    ``max(dd_a, dd_b, (peak_older − trough_newer) / peak_older)``, which is
    what makes it pre-aggregable (Section 5.1).
    """

    name = "drawdown"
    order_sensitive = True
    mergeable = True
    # The segment merge is exact only for positive series: a segment's
    # standalone drawdown uses its *internal* peak, which a larger
    # carried-in peak would supersede — with negative troughs the ratio
    # overestimates (e.g. [5, -10] alone gives 3.0, continued from peak
    # 20 gives 1.5).  Pre-aggregation accepts that domain assumption;
    # the carry path must not.
    merge_exact = False

    def create(self):
        # running peak, global max, global min, max drawdown
        return [None, None, None, 0.0]

    def add(self, state, value):
        if value is None:
            return
        peak, high, low, max_dd = state
        if peak is None or value > peak:
            peak = value
        elif peak > 0:
            max_dd = max(max_dd, (peak - value) / peak)
        high = value if high is None else max(high, value)
        low = value if low is None else min(low, value)
        state[0], state[1], state[2], state[3] = peak, high, low, max_dd

    def merge(self, older, newer):
        if older[1] is None:
            return list(newer)
        if newer[1] is None:
            return list(older)
        cross = 0.0
        if older[1] > 0 and newer[2] is not None:
            cross = max(0.0, (older[1] - newer[2]) / older[1])
        return [
            max(older[0], newer[0]),
            max(older[1], newer[1]),
            min(older[2], newer[2]),
            max(older[3], newer[3], cross),
        ]

    def result(self, state):
        return state[3] if state[1] is not None else None


class EwAvgAgg(AggregateFunction):
    """``ew_avg(col, alpha)`` — exponentially weighted average.

    The newest value gets weight 1, the next ``(1 − alpha)``, then
    ``(1 − alpha)²`` and so on.  Inherently order-sensitive: it relies on
    the storage layer's timestamp ordering (Section 7.2) rather than on
    pre-aggregation.
    """

    name = "ew_avg"
    extra_args = 1
    order_sensitive = True

    def __init__(self, *constants):
        super().__init__(*constants)
        alpha = float(constants[0])
        if not 0.0 < alpha <= 1.0:
            raise CompileError("ew_avg smoothing factor must be in (0, 1]")
        self._decay = 1.0 - alpha

    def create(self):
        # weighted sum, weight sum — rebuilt oldest→newest, so each add
        # decays the running totals then gives the new value weight 1.
        return [0.0, 0.0]

    def add(self, state, value):
        if value is None:
            return
        state[0] = state[0] * self._decay + value
        state[1] = state[1] * self._decay + 1.0

    def result(self, state):
        return state[0] / state[1] if state[1] else None


class LagAgg(AggregateFunction):
    """``lag(col, n)`` — value n rows before the newest (0 = newest)."""

    name = "lag"
    extra_args = 1
    order_sensitive = True

    def create(self):
        return []

    def add(self, state, value):
        state.append(value)

    def result(self, state):
        offset = int(self.constants[0])
        if offset < 0 or offset >= len(state):
            return None
        return state[len(state) - 1 - offset]


_AGGREGATE_CLASSES = {
    cls.name: cls for cls in (
        CountAgg, SumAgg, AvgAgg, MinAgg, MaxAgg, DistinctCountAgg,
        TopNFrequencyAgg, AvgCateWhereAgg, SumWhereAgg, CountWhereAgg,
        AvgWhereAgg, MinWhereAgg, MaxWhereAgg, DrawdownAgg, EwAvgAgg,
        LagAgg, VarianceAgg, StddevAgg, SumCateAgg, CountCateAgg,
        AvgCateAgg,
    )
}

AGGREGATES = frozenset(_AGGREGATE_CLASSES)


def is_aggregate(name: str) -> bool:
    """True if ``name`` is a registered aggregate function."""
    return name.lower() in _AGGREGATE_CLASSES


def aggregate_arity(name: str) -> Tuple[int, int]:
    """Return ``(value_args, extra_args)`` for aggregate ``name``."""
    try:
        cls = _AGGREGATE_CLASSES[name.lower()]
    except KeyError:
        raise CompileError(f"unknown aggregate function: {name!r}") from None
    return cls.value_args, cls.extra_args


def get_aggregate(name: str, *constants: Any) -> AggregateFunction:
    """Instantiate an aggregate by name with its constant arguments."""
    try:
        cls = _AGGREGATE_CLASSES[name.lower()]
    except KeyError:
        raise CompileError(f"unknown aggregate function: {name!r}") from None
    return cls(*constants)


# ----------------------------------------------------------------------
# scalar functions


def _split_by_key(text: Optional[str], delimiter: str,
                  kv_delimiter: str) -> Optional[str]:
    """Table 1's ``split_by_key``: extract keys from a serialised kv list.

    ``split_by_key("a:1,b:2", ",", ":")`` → ``"a,b"``.
    """
    if text is None:
        return None
    keys = []
    for segment in text.split(delimiter):
        if kv_delimiter in segment:
            keys.append(segment.split(kv_delimiter, 1)[0])
    return ",".join(keys)


def _split_by_value(text: Optional[str], delimiter: str,
                    kv_delimiter: str) -> Optional[str]:
    if text is None:
        return None
    values = []
    for segment in text.split(delimiter):
        if kv_delimiter in segment:
            values.append(segment.split(kv_delimiter, 1)[1])
    return ",".join(values)


def _null_guard(fn: Callable) -> Callable:
    """Wrap a scalar so any NULL argument yields NULL (SQL semantics)."""

    def wrapper(*args):
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


def _substr(text: str, start: int, length: Optional[int] = None) -> str:
    # SQL substr is 1-based.
    begin = max(start - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin:begin + max(length, 0)]


SCALARS: Dict[str, Callable] = {
    "abs": _null_guard(abs),
    "ceil": _null_guard(math.ceil),
    "floor": _null_guard(math.floor),
    "round": _null_guard(round),
    "sqrt": _null_guard(math.sqrt),
    "pow": _null_guard(math.pow),
    "log": _null_guard(math.log),
    "exp": _null_guard(math.exp),
    "upper": _null_guard(str.upper),
    "lower": _null_guard(str.lower),
    "length": _null_guard(len),
    "concat": _null_guard(lambda *parts: "".join(str(p) for p in parts)),
    "substr": _null_guard(_substr),
    "split_by_key": _null_guard(_split_by_key),
    "split_by_value": _null_guard(_split_by_value),
    "ifnull": lambda value, default: default if value is None else value,
    "coalesce": lambda *args: next(
        (arg for arg in args if arg is not None), None),
    "int": _null_guard(int),
    "double": _null_guard(float),
    "string": _null_guard(str),
    "log2": _null_guard(math.log2),
    "log10": _null_guard(math.log10),
    "truncate": _null_guard(math.trunc),
    "reverse": _null_guard(lambda text: text[::-1]),
    "char_length": _null_guard(len),
    "strcmp": _null_guard(
        lambda a, b: 0 if a == b else (-1 if a < b else 1)),
    "hour": _null_guard(lambda ts_ms: (ts_ms // 3_600_000) % 24),
    "minute": _null_guard(lambda ts_ms: (ts_ms // 60_000) % 60),
    "second": _null_guard(lambda ts_ms: (ts_ms // 1_000) % 60),
    "dayofweek": _null_guard(
        lambda ts_ms: int((ts_ms // 86_400_000 + 4) % 7) + 1),
}


def get_scalar(name: str) -> Callable:
    """Look up a scalar function by (case-insensitive) name."""
    try:
        return SCALARS[name.lower()]
    except KeyError:
        raise CompileError(f"unknown scalar function: {name!r}") from None
