"""Tests for the offline batch engine (paper Section 6)."""

import pytest

from tests.conftest import rows_equal
from repro.schema import IndexDef, Schema
from repro.sql.compiler import compile_plan
from repro.sql.parser import parse_select
from repro.sql.planner import build_plan
from repro.storage.memtable import MemTable
from repro.offline.engine import OfflineEngine
from repro.offline.skew import SkewConfig


def build(sql, tables, workers=4):
    catalog = {name: table.schema for name, table in tables.items()}
    compiled = compile_plan(build_plan(parse_select(sql), catalog), catalog)
    return OfflineEngine(tables, workers=workers), compiled


@pytest.fixture
def trades():
    schema = Schema.from_pairs([
        ("sym", "string"), ("ts", "timestamp"), ("px", "double"),
    ])
    table = MemTable("trades", schema, [IndexDef(("sym",), "ts")])
    for sym, ts, px in (("A", 100, 10.0), ("B", 150, 5.0),
                        ("A", 200, 20.0), ("A", 300, 30.0),
                        ("B", 350, 15.0)):
        table.insert((sym, ts, px))
    return table


ROLLING = ("SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w AS "
           "(PARTITION BY sym ORDER BY ts "
           "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")


class TestBatchSemantics:
    def test_one_output_per_anchor(self, trades):
        engine, compiled = build(ROLLING, {"trades": trades})
        rows, stats = engine.execute(compiled)
        assert len(rows) == 5
        assert stats.rows == 5

    def test_rolling_window_values(self, trades):
        engine, compiled = build(ROLLING, {"trades": trades})
        rows, _ = engine.execute(compiled)
        # Insertion order: A@100, B@150, A@200, A@300, B@350.
        assert rows == [("A", 10.0), ("B", 5.0), ("A", 30.0),
                        ("A", 50.0), ("B", 20.0)]

    def test_range_window(self, trades):
        sql = ("SELECT sym, count(px) OVER w AS n FROM trades WINDOW w AS "
               "(PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)")
        engine, compiled = build(sql, {"trades": trades})
        rows, _ = engine.execute(compiled)
        assert rows == [("A", 1), ("B", 1), ("A", 2), ("A", 2), ("B", 1)]

    def test_where_filters_output_not_window_content(self, trades):
        sql = ("SELECT sym, sum(px) OVER w AS total FROM trades "
               "WHERE px > 9.0 WINDOW w AS "
               "(PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
        engine, compiled = build(sql, {"trades": trades})
        rows, _ = engine.execute(compiled)
        # B@150 (px 5.0) is filtered from the *output*, but B@350's
        # window still contains it — matching online semantics where
        # stored rows are never WHERE-filtered.
        assert rows == [("A", 10.0), ("A", 30.0), ("A", 50.0),
                        ("B", 20.0)]

    def test_limit(self, trades):
        engine, compiled = build(ROLLING + " LIMIT 2", {"trades": trades})
        rows, _ = engine.execute(compiled)
        assert len(rows) == 2

    def test_last_join(self, trades):
        dim_schema = Schema.from_pairs([
            ("sym", "string"), ("dts", "timestamp"), ("sector", "string")])
        dim = MemTable("dim", dim_schema, [IndexDef(("sym",), "dts")])
        dim.insert(("A", 1, "tech"))
        sql = ("SELECT trades.sym AS s, dim.sector AS sec FROM trades "
               "LAST JOIN dim ON trades.sym = dim.sym")
        engine, compiled = build(sql, {"trades": trades, "dim": dim})
        rows, stats = engine.execute(compiled)
        assert rows[0] == ("A", "tech")
        assert rows[1] == ("B", None)
        assert stats.join_seconds >= 0

    def test_window_union_context_rows(self, trades):
        orders = MemTable("orders", trades.schema,
                          [IndexDef(("sym",), "ts")])
        orders.insert(("A", 250, 100.0))
        sql = ("SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w "
               "AS (UNION orders PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 100 PRECEDING AND CURRENT ROW)")
        engine, compiled = build(sql, {"trades": trades, "orders": orders})
        rows, _ = engine.execute(compiled)
        # A@300 sees A@200 (trades) + A@250 (orders) + itself.
        assert ("A", 150.0) in rows
        # The union row itself never emits an output.
        assert len(rows) == 5

    def test_exclude_current_row(self, trades):
        sql = ("SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w "
               "AS (PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW "
               "EXCLUDE CURRENT_ROW)")
        engine, compiled = build(sql, {"trades": trades})
        rows, _ = engine.execute(compiled)
        assert rows[0] == ("A", None)   # nothing precedes A@100
        assert rows[3] == ("A", 30.0)   # A@300 sees 10+20


class TestParallelWindows:
    MULTI = ("SELECT sym, sum(px) OVER w1 AS a, count(px) OVER w2 AS b "
             "FROM trades WINDOW "
             "w1 AS (PARTITION BY sym ORDER BY ts "
             "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW), "
             "w2 AS (PARTITION BY sym ORDER BY ts "
             "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)")

    def test_parallel_equals_serial(self, trades):
        engine, compiled = build(self.MULTI, {"trades": trades})
        parallel_rows, parallel_stats = engine.execute(
            compiled, parallel_windows=True)
        serial_rows, serial_stats = engine.execute(
            compiled, parallel_windows=False)
        assert rows_equal(parallel_rows, serial_rows)
        assert parallel_stats.used_parallel_windows
        assert not serial_stats.used_parallel_windows

    def test_parallel_makespan_not_worse(self):
        # Pooled scheduling must not lose to staged window barriers.
        # Both schedules are evaluated over the SAME measured task
        # times (one run), so timer noise between runs cannot flip the
        # comparison — this checks the makespan model, not the clock.
        from repro.offline.scheduling import lpt_makespan
        schema = Schema.from_pairs([
            ("sym", "string"), ("ts", "timestamp"), ("px", "double")])
        table = MemTable("trades", schema, [IndexDef(("sym",), "ts")])
        for key in range(3):
            for index in range(400):
                table.insert((f"s{key}", index * 10, float(index % 7)))
        engine, compiled = build(self.MULTI, {"trades": table})
        _, stats = engine.execute(compiled, parallel_windows=True)
        assert stats.used_parallel_windows
        pooled = stats.parallel_seconds
        staged = sum(lpt_makespan(tasks, stats.workers)
                     for tasks in stats.window_tasks.values() if tasks)
        assert pooled <= staged + 1e-9

    def test_task_accounting(self, trades):
        engine, compiled = build(self.MULTI, {"trades": trades})
        _, stats = engine.execute(compiled, parallel_windows=True)
        # Two windows × two keys = four tasks.
        assert stats.tasks == 4
        assert len(stats.window_seconds) == 2


class TestSkewResolving:
    def _skewed_table(self):
        schema = Schema.from_pairs([
            ("k", "string"), ("ts", "timestamp"), ("v", "double")])
        table = MemTable("t", schema, [IndexDef(("k",), "ts")])
        for index in range(600):
            table.insert(("hot", index * 10, float(index % 7)))
        for index in range(20):
            table.insert((f"cold{index}", index * 10, 1.0))
        return table

    SQL = ("SELECT k, sum(v) OVER w AS s, count(v) OVER w AS c FROM t "
           "WINDOW w AS (PARTITION BY k ORDER BY ts "
           "ROWS_RANGE BETWEEN 500 PRECEDING AND CURRENT ROW)")

    def test_skew_results_exact(self):
        table = self._skewed_table()
        engine, compiled = build(self.SQL, {"t": table})
        plain_rows, _ = engine.execute(compiled)
        skew_rows, stats = engine.execute(
            compiled, skew=SkewConfig(quantile=4, min_partition_rows=50))
        assert rows_equal(plain_rows, skew_rows)
        assert stats.used_skew_resolver

    def test_skew_increases_task_count(self):
        table = self._skewed_table()
        engine, compiled = build(self.SQL, {"t": table})
        _, plain_stats = engine.execute(compiled)
        _, skew_stats = engine.execute(
            compiled, skew=SkewConfig(quantile=4, min_partition_rows=50))
        assert skew_stats.tasks > plain_stats.tasks

    def test_skew_reduces_straggler(self):
        table = self._skewed_table()
        engine, compiled = build(self.SQL, {"t": table}, workers=8)
        _, plain_stats = engine.execute(compiled)
        _, skew_stats = engine.execute(
            compiled, skew=SkewConfig(quantile=4, min_partition_rows=50))
        assert max(skew_stats.task_seconds) < max(plain_stats.task_seconds)

    def test_rows_frame_with_skew(self):
        table = self._skewed_table()
        sql = ("SELECT k, sum(v) OVER w AS s FROM t WINDOW w AS "
               "(PARTITION BY k ORDER BY ts "
               "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW)")
        engine, compiled = build(sql, {"t": table})
        plain_rows, _ = engine.execute(compiled)
        skew_rows, _ = engine.execute(
            compiled, skew=SkewConfig(quantile=3, min_partition_rows=50))
        assert rows_equal(plain_rows, skew_rows)


class TestExecutionModes:
    def test_single_window_never_reports_parallel_windows(self, trades):
        # Regression: the flag used to echo the *request*; it must
        # reflect the path actually taken — one window never pools.
        engine, compiled = build(ROLLING, {"trades": trades})
        _, stats = engine.execute(compiled, parallel_windows=True)
        assert not stats.used_parallel_windows

    def test_serial_mode_never_reports_parallel_windows(self, trades):
        engine, compiled = build(TestParallelWindows.MULTI,
                                 {"trades": trades})
        _, stats = engine.execute(compiled, parallel_windows=True,
                                  mode="serial")
        assert not stats.used_parallel_windows
        assert stats.mode == stats.requested_mode == "serial"

    def test_invalid_mode_rejected(self, trades):
        engine, compiled = build(ROLLING, {"trades": trades})
        with pytest.raises(Exception):
            engine.execute(compiled, mode="gpu")
        with pytest.raises(Exception):
            OfflineEngine({"trades": trades}, mode="gpu")

    def test_process_mode_matches_thread_mode(self, trades):
        engine, compiled = build(ROLLING, {"trades": trades})
        try:
            thread_rows, _ = engine.execute(compiled, mode="thread")
            process_rows, stats = engine.execute(compiled, mode="process")
            assert rows_equal(process_rows, thread_rows)
            assert stats.requested_mode == "process"
            # Hermetic: equality holds whether the pool came up or the
            # engine degraded to threads — but never silently.
            assert stats.mode == ("thread" if stats.pool_fallback
                                  else "process")
            assert stats.used_process_pool == (not stats.pool_fallback)
        finally:
            engine.close()

    def test_pool_unavailable_falls_back_to_threads(self, trades):
        engine, compiled = build(ROLLING, {"trades": trades})
        engine._pool_failed = True  # simulate a dead multiprocessing
        rows, stats = engine.execute(compiled, mode="process")
        baseline, _ = engine.execute(compiled, mode="thread")
        assert rows_equal(rows, baseline)
        assert stats.pool_fallback
        assert stats.mode == "thread"
        assert not stats.used_process_pool

    def test_spill_stats_surface(self, trades):
        from repro.offline import SpillConfig
        engine, compiled = build(ROLLING, {"trades": trades})
        plain, _ = engine.execute(compiled)
        rows, stats = engine.execute(
            compiled, spill=SpillConfig(memory_budget_bytes=128))
        assert rows_equal(rows, plain)
        assert stats.shuffle["rows"] == 5
        assert stats.shuffle["runs"] >= 1
        assert stats.shuffle["spilled_rows"] > 0

    def test_carry_tasks_counted_for_eligible_frames(self):
        from repro.offline import SkewConfig
        schema = Schema.from_pairs([
            ("k", "string"), ("ts", "timestamp"), ("v", "int")])
        table = MemTable("t", schema, [IndexDef(("k",), "ts")])
        for index in range(200):
            table.insert(("hot", index * 10, index % 9))
        sql = ("SELECT k, sum(v) OVER w AS s FROM t WINDOW w AS "
               "(PARTITION BY k ORDER BY ts ROWS_RANGE BETWEEN "
               "UNBOUNDED PRECEDING AND CURRENT ROW)")
        engine, compiled = build(sql, {"t": table})
        plain, _ = engine.execute(compiled)
        skew = SkewConfig(quantile=4, min_partition_rows=20,
                          merge_partials=True)
        rows, stats = engine.execute(compiled, skew=skew)
        assert rows_equal(rows, plain)
        assert stats.carry_tasks == 4
        # Bounded frames are not carry-eligible: expansion instead.
        bounded_sql = sql.replace("UNBOUNDED", "50")
        engine2, compiled2 = build(bounded_sql, {"t": table})
        _, bounded_stats = engine2.execute(compiled2, skew=skew)
        assert bounded_stats.carry_tasks == 0


class TestStats:
    def test_workers_validated(self, trades):
        with pytest.raises(Exception):
            OfflineEngine({"trades": trades}, workers=0)

    def test_stat_totals(self, trades):
        engine, compiled = build(ROLLING, {"trades": trades})
        _, stats = engine.execute(compiled)
        assert stats.total_serial_seconds >= stats.serial_seconds
        assert stats.total_parallel_seconds >= stats.parallel_seconds
