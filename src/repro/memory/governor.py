"""Runtime memory management (paper Section 8.2).

Two mechanisms keep tablets from being OOM-killed:

* **Memory resource isolation** — a per-tablet ``max_memory_mb``; once
  usage crosses it, *writes fail but reads continue*, keeping the service
  online while operators scale or migrate shards.
* **Memory alerting** — callbacks fire when usage crosses a configurable
  fraction of the limit.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from ..errors import MemoryLimitExceededError

__all__ = ["MemoryGovernor"]

AlertCallback = Callable[[str, int, int], None]  # (tablet, used, limit)


class MemoryGovernor:
    """Tracks one tablet's memory and enforces its write limit.

    Args:
        tablet: tablet name (for alerts).
        max_memory_mb: hard write limit; ``None`` disables isolation.
        alert_fraction: usage fraction at which alerts fire.
    """

    def __init__(self, tablet: str, max_memory_mb: Optional[int] = None,
                 alert_fraction: float = 0.8) -> None:
        if max_memory_mb is not None and max_memory_mb <= 0:
            raise ValueError("max_memory_mb must be positive")
        if not 0.0 < alert_fraction <= 1.0:
            raise ValueError("alert_fraction must be in (0, 1]")
        self.tablet = tablet
        self.max_memory_bytes = (max_memory_mb * 1024 * 1024
                                 if max_memory_mb is not None else None)
        self.alert_fraction = alert_fraction
        self._used = 0
        self._lock = threading.Lock()
        self._alerts: List[AlertCallback] = []
        self._alerted = False
        self.rejected_writes = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def on_alert(self, callback: AlertCallback) -> None:
        """Register an alert callback (fires once per threshold crossing)."""
        self._alerts.append(callback)

    def charge(self, nbytes: int) -> None:
        """Account ``nbytes`` of incoming data for a write.

        Raises:
            MemoryLimitExceededError: when the write would cross the
                limit; the caller must leave the data unwritten (reads are
                unaffected — the isolation contract of Section 8.2).
        """
        with self._lock:
            if self.max_memory_bytes is not None \
                    and self._used + nbytes > self.max_memory_bytes:
                self.rejected_writes += 1
                raise MemoryLimitExceededError(
                    f"tablet {self.tablet!r}: write of {nbytes} B would "
                    f"exceed max_memory ({self._used} / "
                    f"{self.max_memory_bytes} B used); writes fail, reads "
                    "continue")
            self._used += nbytes
            crossed = (self.max_memory_bytes is not None
                       and self._used >= self.alert_fraction
                       * self.max_memory_bytes)
        if crossed and not self._alerted:
            self._alerted = True
            limit = self.max_memory_bytes or 0
            for callback in self._alerts:
                callback(self.tablet, self._used, limit)

    def release(self, nbytes: int) -> None:
        """Return memory after eviction/compaction."""
        with self._lock:
            self._used = max(self._used - nbytes, 0)
            if self.max_memory_bytes is not None and self._used \
                    < self.alert_fraction * self.max_memory_bytes:
                self._alerted = False
