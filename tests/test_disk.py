"""Tests for the LSM on-disk engine (paper Section 7.3)."""

import pytest

from repro.schema import IndexDef, Schema, TTLKind, TTLSpec
from repro.storage.disk import ColumnFamily, DiskTable, SSTable
from repro.storage.memtable import MemTable


@pytest.fixture
def disk_table(events_schema, events_index):
    return DiskTable("events", events_schema, [events_index],
                     flush_threshold=10)


class TestSSTable:
    def test_scan_key_newest_first(self):
        entries = [("a", -10, 0, ("a", 10)), ("a", -30, 1, ("a", 30)),
                   ("b", -5, 2, ("b", 5))]
        sstable = SSTable(entries)
        assert [ts for ts, _ in sstable.scan_key("a")] == [30, 10]
        assert [ts for ts, _ in sstable.scan_key("b")] == [5]
        assert list(sstable.scan_key("zzz")) == []


class TestColumnFamily:
    def _family(self, ttl=TTLSpec()):
        index = IndexDef(("key",), "ts", ttl=ttl)
        return ColumnFamily(index)

    def test_merge_across_runs(self):
        family = self._family()
        family.add_sstable(SSTable([("a", -10, 0, "r10")]))
        family.add_sstable(SSTable([("a", -20, 1, "r20")]))
        assert [ts for ts, _ in family.scan_key("a")] == [20, 10]

    def test_compaction_merges_to_one_run(self):
        family = self._family()
        family.add_sstable(SSTable([("a", -10, 0, "x")]))
        family.add_sstable(SSTable([("a", -20, 1, "y")]))
        evicted = family.compact(now_ts=100)
        assert evicted == 0
        assert len(family.sstables) == 1
        assert family.compactions == 1

    def test_compaction_applies_absolute_ttl(self):
        family = self._family(TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=50))
        family.add_sstable(SSTable([
            ("a", -10, 0, "old"), ("a", -90, 1, "new")]))
        evicted = family.compact(now_ts=100)
        assert evicted == 1
        assert [ts for ts, _ in family.scan_key("a")] == [90]

    def test_compaction_applies_latest_ttl(self):
        family = self._family(TTLSpec(kind=TTLKind.LATEST, lat_ttl=2))
        family.add_sstable(SSTable([
            ("a", -ts, ts, f"r{ts}") for ts in (10, 20, 30, 40)]))
        evicted = family.compact(now_ts=1000)
        assert evicted == 2
        assert [ts for ts, _ in family.scan_key("a")] == [40, 30]


class TestDiskTable:
    def test_reads_merge_memtable_and_ssts(self, disk_table):
        for ts in range(25):  # crosses two flush thresholds
            disk_table.insert(("a", ts, float(ts), "x"))
        assert disk_table.sstable_count() >= 2 or disk_table.flushes >= 2
        scanned = [ts for ts, _ in disk_table.window_scan(
            ("key",), "ts", "a")]
        assert scanned == list(range(24, -1, -1))

    def test_last_join_lookup(self, disk_table):
        disk_table.insert(("a", 5, 1.0, "x"))
        disk_table.flush()
        disk_table.insert(("a", 9, 2.0, "y"))
        hit = disk_table.last_join_lookup(("key",), "a")
        assert hit[0] == 9

    def test_window_scan_bounds_and_limit(self, disk_table):
        for ts in range(0, 100, 10):
            disk_table.insert(("a", ts, 0.0, "x"))
        disk_table.flush()
        bounded = [ts for ts, _ in disk_table.window_scan(
            ("key",), "ts", "a", start_ts=70, end_ts=40)]
        assert bounded == [70, 60, 50, 40]
        limited = list(disk_table.window_scan(("key",), "ts", "a",
                                              limit=2))
        assert len(limited) == 2

    def test_compact_evicts_by_ttl(self, events_schema):
        ttl = TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=100)
        table = DiskTable("t", events_schema,
                          [IndexDef(("key",), "ts", ttl=ttl)],
                          flush_threshold=4)
        for ts in (0, 10, 20, 30, 990):
            table.insert(("a", ts, 0.0, "x"))
        table.flush()
        evicted = table.compact(now_ts=1000)
        assert evicted == 4
        assert [ts for ts, _ in table.window_scan(("key",), "ts", "a")] \
            == [990]

    def test_rows_log_preserved(self, disk_table):
        for ts in range(15):
            disk_table.insert(("a", ts, 0.0, "x"))
        assert disk_table.row_count == 15
        assert len(list(disk_table.rows())) == 15

    def test_disk_read_amplification_tracked(self, disk_table):
        for ts in range(25):
            disk_table.insert(("a", ts, 0.0, "x"))
        before = disk_table.disk_reads
        list(disk_table.window_scan(("key",), "ts", "a"))
        assert disk_table.disk_reads > before

    def test_compact_handles_duplicate_keys_with_none_columns(
            self, events_schema):
        """Regression: compaction must never compare row payloads.

        Duplicate ``(key, ts)`` rows across flushes used to fall through
        to tuple comparison of the row itself; rows carrying ``None``
        next to strings then raised ``TypeError`` mid-compaction.
        """
        table = DiskTable("t", events_schema,
                          [IndexDef(("key",), "ts")], flush_threshold=100)
        table.insert(("a", 10, None, None))
        table.insert(("a", 10, 1.5, "x"))
        table.flush()
        table.insert(("a", 10, None, "y"))
        table.insert(("a", 10, 2.5, None))
        table.flush()
        table.compact(now_ts=1_000)  # must not raise
        scanned = list(table.window_scan(("key",), "ts", "a"))
        assert len(scanned) == 4
        assert all(ts == 10 for ts, _ in scanned)

    def test_latest_ttl_ranks_newest_first_across_flushes(self):
        """Regression: LATEST-TTL compaction evicted the *newest* dups.

        Entries used to share one per-flush sequence stamp, so rows of
        one flush tied and an older flush's duplicates could outrank a
        newer flush's.  Rank order must match the memtable's eviction
        order: newest insert first, per key.
        """
        schema = Schema.from_pairs([
            ("key", "string"), ("ts", "timestamp"), ("v", "string")])
        ttl = TTLSpec(kind=TTLKind.LATEST, lat_ttl=2)
        indexes = [IndexDef(("key",), "ts", ttl=ttl)]
        rows = [("a", 10, "first"), ("a", 10, "second"),
                ("a", 20, "mid"), ("a", 10, "third")]

        mem = MemTable("m", schema, indexes)
        for row in rows:
            mem.insert(row)
        mem.evict_expired(now_ts=100)
        expected = list(mem.window_scan(("key",), "ts", "a"))
        assert [row[2] for _, row in expected] == ["mid", "third"]

        disk = DiskTable("d", schema, indexes, flush_threshold=100)
        for row in rows[:2]:
            disk.insert(row)
        disk.flush()
        for row in rows[2:]:
            disk.insert(row)
        disk.flush()
        disk.compact(now_ts=100)
        assert list(disk.window_scan(("key",), "ts", "a")) == expected

    def test_latest_ttl_within_one_flush_keeps_insertion_rank(self):
        schema = Schema.from_pairs([
            ("key", "string"), ("ts", "timestamp"), ("v", "string")])
        ttl = TTLSpec(kind=TTLKind.LATEST, lat_ttl=1)
        table = DiskTable("d", schema, [IndexDef(("key",), "ts", ttl=ttl)],
                          flush_threshold=100)
        table.insert(("a", 10, "old"))
        table.insert(("a", 10, "new"))
        table.flush()
        table.compact(now_ts=100)
        survivors = [row for _, row in table.window_scan(
            ("key",), "ts", "a")]
        assert survivors == [("a", 10, "new")]

    def test_shared_memtable_across_column_families(self, events_schema):
        table = DiskTable("t", events_schema, [
            IndexDef(("key",), "ts"),
            IndexDef(("label",), "ts"),
        ], flush_threshold=100)
        table.insert(("a", 1, 0.0, "red"))
        by_key = list(table.window_scan(("key",), "ts", "a"))
        by_label = list(table.window_scan(("label",), "ts", "red"))
        assert len(by_key) == 1 and len(by_label) == 1
