"""The per-deployment execution router (the adaptive layer's core).

The router sits on the online request path.  Per window, per request,
:meth:`ExecutionRouter.decide` compares calibrated cost estimates:

* **incremental** — the measured EWMA of successful
  ``IncrementalWindowState.compute`` lookups (O(aggregates) on a hit);
* **preagg** — the measured EWMA of the bucket-merge + raw-edge path;
* **scan** — estimated scan blocks for the key × the measured per-block
  scan-and-fold cost (the paper's pre-aggregation motivation, Section
  5.1, turned into an online cost model).

An unmeasured tier costs 0.0, which makes the greedy argmin try each
available tier at least once before settling — self-calibration without
a separate exploration phase.  The naive per-row tier is never chosen:
the fused kernel computes the identical answer from the identical rows
strictly faster, so it exists only as an ablation baseline.

Between requests (every ``tick_interval`` requests), :meth:`tick`
adapts state:

* **promotion** — keys whose decayed request rate clears
  ``promote_min_rate`` and whose estimated saving justifies the ingest
  cost get incremental state provisioned at runtime
  (:meth:`IncrementalWindowState.provision_key`), charged against the
  memory governor's promotion budget (``try_reserve``) and rolled back
  if the reservation is declined;
* **demotion** — keys whose rate decays below ``demote_min_rate``
  (or the coldest keys, under a governor pressure callback) are retired
  and their reservation released;
* **bucket re-sizing** — when the live p50 of requested window spans
  says the DDL bucket width is off by more than ``rebucket_factor``
  (too coarse: every request raw-scans the edges; too fine: every
  request merges hundreds of buckets), the host deployment swaps in a
  freshly backfilled pre-aggregator sized to
  ``span_p50 / target_bucket_merges``.

All thresholds live in :class:`RouterConfig`.  The router's calibrated
state is a plain dict (:meth:`state_snapshot` / :meth:`restore_state`)
so deployments survive failover and shard migration warm.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import Ewma, NULL_OBS, Observability, RateWindow

__all__ = ["ExecutionRouter", "RouterConfig", "Tier"]


class Tier:
    """Execution tier names (string constants, also span/metric tags)."""

    INCREMENTAL = "incremental"
    PREAGG = "preagg"
    SCAN = "scan"


@dataclasses.dataclass(frozen=True)
class RouterConfig:
    """Thresholds and half-lives for one router instance.

    Attributes:
        tick_interval: requests between maintenance ticks (promotion /
            demotion / re-bucketing run amortised on the request path).
        cost_alpha: EWMA weight for cost calibration samples.
        key_rate_halflife_s: decay half-life for per-key request rates.
        promote_min_rate: requests/second on a key before promotion is
            considered at all.
        promote_min_saved_ms_per_s: promotion also requires
            ``rate × (scan_est − incr_est)`` to clear this — the saving
            must pay for the ingest-time maintenance.
        assumed_incremental_ms: incremental cost used before the first
            measured hit (keeps the benefit estimate finite).
        demote_min_rate: requests/second under which a tracked key is
            retired on the next tick.
        max_tracked_keys: per-window cap on promoted keys.
        max_candidate_keys: per-window cap on the key-rate map (the
            coldest half is dropped when it overflows).
        bytes_per_buffered_row: governor accounting per buffered tuple
            (row payload + aggregator slots, approximate by design —
            the governor budgets, it does not meter).
        promotion_headroom: fraction of the memory limit ``try_reserve``
            must leave free for real writes.
        pressure_fraction: governor usage fraction that triggers the
            demotion pressure callback.
        pressure_demote_fraction: fraction of tracked keys (coldest
            first) demoted when pressure fires.
        target_bucket_merges: desired bucket merges per preagg request;
            the bucket width chases ``span_p50 / target_bucket_merges``.
        rebucket_factor: hysteresis — only re-bucket when the current
            width is off the desired one by more than this factor.
        min_span_samples: observed spans required before re-bucketing.
        min_bucket_ms: floor for chosen bucket widths.
    """

    tick_interval: int = 256
    cost_alpha: float = 0.2
    key_rate_halflife_s: float = 30.0
    promote_min_rate: float = 0.5
    promote_min_saved_ms_per_s: float = 0.05
    assumed_incremental_ms: float = 0.05
    demote_min_rate: float = 0.02
    max_tracked_keys: int = 512
    max_candidate_keys: int = 2048
    bytes_per_buffered_row: int = 96
    promotion_headroom: float = 0.25
    pressure_fraction: float = 0.9
    pressure_demote_fraction: float = 0.25
    target_bucket_merges: int = 16
    rebucket_factor: float = 4.0
    min_span_samples: int = 32
    min_bucket_ms: int = 1_000


class _KeyStat:
    """Per-(window, key) observations: request rate + scan-block size."""

    __slots__ = ("rate", "blocks")

    def __init__(self, halflife_s: float, alpha: float) -> None:
        self.rate = RateWindow(halflife_s=halflife_s)
        self.blocks = Ewma(alpha=alpha)


class _WindowProfile:
    """Calibrated measurements for one deployed window."""

    __slots__ = ("per_block_ms", "scan_blocks", "incr_ms", "preagg_ms",
                 "request_rate", "keys", "pending", "tier_cache",
                 "spans", "span_samples", "preagg_queries")

    def __init__(self, config: RouterConfig) -> None:
        alpha = config.cost_alpha
        self.per_block_ms = Ewma(alpha=alpha)
        self.scan_blocks = Ewma(alpha=alpha)
        self.incr_ms = Ewma(alpha=alpha)
        self.preagg_ms = Ewma(alpha=alpha)
        self.request_rate = RateWindow(
            halflife_s=config.key_rate_halflife_s)
        self.keys: Dict[Any, _KeyStat] = {}
        #: key → request count since the last tick (folded into the
        #: decayed rate windows by ``_flush_pending``).
        self.pending: Dict[Any, int] = {}
        #: (key, has_incremental, has_preagg) → memoised tier choice,
        #: cleared every tick.  Tier choice is answer-invariant, so a
        #: memoised (slightly stale) decision can never change results
        #: — only skip re-evaluating the cost model per request.
        self.tier_cache: Dict[Any, str] = {}
        self.spans: List[int] = []
        self.span_samples = 0
        self.preagg_queries = 0

    def key_stat(self, key: Any, config: RouterConfig) -> _KeyStat:
        stat = self.keys.get(key)
        if stat is None:
            stat = _KeyStat(config.key_rate_halflife_s, config.cost_alpha)
            self.keys[key] = stat
        return stat


class ExecutionRouter:
    """Cost-based tier selection + state adaptation for one deployment.

    Args:
        config: thresholds; ``None`` takes the defaults.
        obs: observability handle for the ``online.router.*`` series.
        clock: monotonic-seconds source (injectable for deterministic
            tests; production uses ``time.monotonic``).

    The router is wired by the deployment layer
    (:meth:`repro.core.deployment.Deployment.initialize_adaptive`):
    ``bind_host`` hands it the deployment's incremental states and the
    re-bucketing hook, ``bind_governor`` the tablet's memory governor.
    The engine calls ``decide`` / ``observe_*`` / ``note_request`` /
    ``after_request`` from the request path.
    """

    def __init__(self, config: Optional[RouterConfig] = None,
                 obs: Optional[Observability] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or RouterConfig()
        self._clock = clock
        self._obs = obs or NULL_OBS
        self._profiles: Dict[str, _WindowProfile] = {}
        self._lock = threading.Lock()
        self._host: Optional[Any] = None
        self._governor: Optional[Any] = None
        self._since_tick = 0
        self._pressure_pending = False
        #: (window, key) → bytes reserved with the governor.
        self._charged: Dict[Tuple[str, Any], int] = {}
        #: window → keys to re-promote on the first tick (failover
        #: warm start, loaded by :meth:`restore_state`).
        self._warm_keys: Dict[str, List[Any]] = {}
        self.ticks = 0
        self.promotions = 0
        self.demotions = 0
        self.rebuckets = 0
        self.decisions: Dict[str, int] = {
            Tier.INCREMENTAL: 0, Tier.PREAGG: 0, Tier.SCAN: 0}
        registry = self._obs.registry
        self._m_decide = {
            tier: registry.labels(tier=tier).counter(
                "online.router.decisions")
            for tier in (Tier.INCREMENTAL, Tier.PREAGG, Tier.SCAN)}
        self._m_ticks = registry.counter("online.router.ticks")
        self._m_promotions = registry.counter("online.router.promotions")
        self._m_demotions = registry.counter("online.router.demotions")
        self._m_rebuckets = registry.counter("online.router.rebuckets")
        self._g_tracked = registry.gauge("online.router.tracked_keys")
        self._g_reserved = registry.gauge("online.router.reserved_bytes")

    # ------------------------------------------------------------------
    # wiring

    def bind_host(self, host: Any) -> None:
        """Attach the deployment: must expose ``incrementals`` (window →
        :class:`~repro.online.incremental.IncrementalWindowState`),
        ``preaggs`` (window → slot → aggregator) and
        ``rebucket_preagg(window, bucket_ms) -> bool``."""
        self._host = host

    def bind_governor(self, governor: Any) -> None:
        """Attach the memory governor funding promotions.

        Registers the demotion pressure callback: crossing
        ``pressure_fraction`` of the limit schedules a cold-key sweep
        on the next tick (callbacks run outside the governor lock, so
        only a flag is set here).
        """
        self._governor = governor
        if governor is not None and hasattr(governor, "on_pressure"):
            governor.on_pressure(self._on_pressure,
                                 fraction=self.config.pressure_fraction)

    def _on_pressure(self, _tablet: str, _used: int, _limit: int) -> None:
        self._pressure_pending = True

    # ------------------------------------------------------------------
    # request path

    def decide(self, window: str, key: Any, has_incremental: bool,
               has_preagg: bool) -> str:
        """Pick the cheapest available tier for one window evaluation.

        Cost model: scan ≈ estimated blocks for this key × measured
        per-block cost; incremental and preagg are measured directly.
        An unmeasured tier estimates 0.0 — optimistic, so each
        available tier gets tried and calibrated.  Ties break toward
        INCREMENTAL, then PREAGG (cheaper maintenance wins when the
        model cannot distinguish).

        Decisions are memoised per (key, availability) until the next
        tick: within a tick interval the cost estimates barely move,
        and every tier computes the identical answer, so re-running
        the argmin per request buys nothing but latency.
        """
        profile = self._profiles.get(window)
        if profile is None:
            with self._lock:
                profile = self._profiles.setdefault(
                    window, _WindowProfile(self.config))
        memo = (key, has_incremental, has_preagg)
        best_tier = profile.tier_cache.get(memo)
        if best_tier is None:
            stat = profile.keys.get(key)
            blocks = stat.blocks.get(profile.scan_blocks.get(1.0)) \
                if stat is not None else profile.scan_blocks.get(1.0)
            scan_cost = blocks * profile.per_block_ms.get(0.0)
            best_tier = Tier.SCAN
            best_cost = scan_cost
            if has_preagg:
                cost = profile.preagg_ms.get(0.0)
                if cost <= best_cost:
                    best_tier, best_cost = Tier.PREAGG, cost
            if has_incremental:
                cost = profile.incr_ms.get(0.0)
                if cost <= best_cost:
                    best_tier, best_cost = Tier.INCREMENTAL, cost
            profile.tier_cache[memo] = best_tier
        self.decisions[best_tier] += 1
        self._m_decide[best_tier].inc()
        return best_tier

    def note_request(self, window: str, key: Any) -> None:
        """Count one request for (window, key).

        Hot-path cost is a single dict increment; the exponential-decay
        rate bookkeeping runs once per tick (:meth:`_flush_pending`),
        not once per request.  A racing increment can drop a count —
        acceptable for metering, and cheaper than a lock per request.
        """
        profile = self._profiles.get(window)
        if profile is None:
            with self._lock:
                profile = self._profiles.setdefault(
                    window, _WindowProfile(self.config))
        pending = profile.pending
        pending[key] = pending.get(key, 0) + 1

    def observe_scan(self, window: str, key: Any, ms: float,
                     blocks: int) -> None:
        """Calibrate the scan tier from one measured scan-and-fold."""
        profile = self._profiles.get(window)
        if profile is None:
            return
        profile.scan_blocks.observe(blocks)
        profile.per_block_ms.observe(ms / max(blocks, 1))
        # Scans are the expensive path, so creating the per-key stat
        # here (instead of on every request) keeps the hit path lean.
        profile.key_stat(key, self.config).blocks.observe(blocks)

    def observe_incremental(self, window: str, ms: float,
                            hit: bool) -> None:
        """Calibrate the incremental tier (hits only — a declined
        lookup costs almost nothing and says nothing about hit cost)."""
        if not hit:
            return
        profile = self._profiles.get(window)
        if profile is not None:
            profile.incr_ms.observe(ms)

    def observe_preagg(self, window: str, ms: float) -> None:
        """Calibrate the preagg tier from one measured bucket-merge."""
        profile = self._profiles.get(window)
        if profile is None:
            return
        profile.preagg_ms.observe(ms)
        profile.preagg_queries += 1

    def observe_span(self, window: str, span_ms: int) -> None:
        """Feed one requested window span into the live distribution.

        Called for every request touching a preagg-backed window,
        whatever tier served it — the span a request *asks for* informs
        bucket sizing even when the answer came from a scan.
        """
        profile = self._profiles.get(window)
        if profile is None:
            with self._lock:
                profile = self._profiles.setdefault(
                    window, _WindowProfile(self.config))
        spans = profile.spans
        if len(spans) < 512:
            spans.append(span_ms)
        else:
            spans[profile.span_samples % 512] = span_ms
        profile.span_samples += 1

    def after_request(self) -> None:
        """Per-request epilogue: run a maintenance tick when due."""
        self._since_tick += 1
        if self._since_tick >= self.config.tick_interval \
                or self._pressure_pending:
            self.tick()

    # ------------------------------------------------------------------
    # maintenance

    def tick(self) -> None:
        """One maintenance pass: promote, demote, re-bucket.

        Runs inline on whichever request thread crossed the interval —
        amortised, and serialised by the router lock so concurrent
        requests never double-adapt.
        """
        if self._host is None:
            self._since_tick = 0
            return
        with self._lock:
            self._since_tick = 0
            pressure = self._pressure_pending
            self._pressure_pending = False
            now = self._clock()
            self.ticks += 1
            self._m_ticks.inc()
            self._flush_pending(now)
            self._trim_candidates(now)
            for window, state in list(self._host.incrementals.items()):
                if not getattr(state, "selective", False):
                    continue
                self._demote_cold(window, state, now, pressure)
                self._promote_hot(window, state, now)
            for window in list(self._host.preaggs):
                self._maybe_rebucket(window)
            tracked = sum(
                state.key_count
                for state in self._host.incrementals.values()
                if getattr(state, "selective", False))
            self._g_tracked.set(tracked)
            self._g_reserved.set(sum(self._charged.values()))

    def _flush_pending(self, now: float) -> None:
        """Fold batched request counts into the decayed rate windows.

        ``note_request`` only increments a plain per-window dict; the
        exponential-decay updates all happen here, once per tick, so
        their cost is amortised over ``tick_interval`` requests.
        """
        for profile in self._profiles.values():
            profile.tier_cache.clear()  # re-run the argmin next request
            pending = profile.pending
            if not pending:
                continue
            profile.pending = {}
            total = 0
            for key, count in pending.items():
                profile.key_stat(key, self.config).rate.record(
                    count=count, now=now)
                total += count
            profile.request_rate.record(count=total, now=now)

    def _trim_candidates(self, now: float) -> None:
        """Bound each window's key-rate map (drop the coldest half)."""
        cap = self.config.max_candidate_keys
        for profile in self._profiles.values():
            if len(profile.keys) <= cap:
                continue
            ranked = sorted(profile.keys.items(),
                            key=lambda item: item[1].rate.rate(now))
            for key, _stat in ranked[:len(ranked) - cap // 2]:
                del profile.keys[key]

    # -- incremental promotion / demotion ------------------------------

    def _promote_hot(self, window: str, state: Any, now: float) -> None:
        profile = self._profiles.get(window)
        if profile is None:
            return
        config = self.config
        budget = config.max_tracked_keys - state.key_count
        if budget <= 0:
            return
        incr_est = profile.incr_ms.get(config.assumed_incremental_ms)
        warm = self._warm_keys.pop(window, [])
        candidates: List[Tuple[float, Any]] = [
            (float("inf"), key) for key in warm]
        for key, stat in profile.keys.items():
            rate = stat.rate.rate(now)
            if rate < config.promote_min_rate:
                continue
            blocks = stat.blocks.get(profile.scan_blocks.get(1.0))
            scan_est = blocks * profile.per_block_ms.get(0.0)
            saved = rate * (scan_est - incr_est)
            if saved < config.promote_min_saved_ms_per_s:
                continue
            candidates.append((saved, key))
        candidates.sort(key=lambda item: -item[0])
        for _saved, key in candidates[:budget]:
            if (window, key) in self._charged:
                continue
            rows = state.provision_key(key)
            if rows is None:
                continue  # not caught up / raced an insert: next tick
            nbytes = (rows + 1) * config.bytes_per_buffered_row
            if self._governor is not None and not self._governor.try_reserve(
                    nbytes, headroom_fraction=config.promotion_headroom):
                state.retire_key(key)
                continue
            self._charged[(window, key)] = nbytes
            self.promotions += 1
            self._m_promotions.inc()

    def _demote_cold(self, window: str, state: Any, now: float,
                     pressure: bool) -> None:
        profile = self._profiles.get(window)
        config = self.config
        tracked = state.tracked_keys()
        if not tracked:
            return

        def rate_of(key: Any) -> float:
            if profile is None:
                return 0.0
            stat = profile.keys.get(key)
            return stat.rate.rate(now) if stat is not None else 0.0

        victims = [key for key in tracked
                   if rate_of(key) < config.demote_min_rate]
        if pressure:
            want = max(int(len(tracked) * config.pressure_demote_fraction),
                       1)
            if len(victims) < want:
                coldest = sorted(tracked, key=rate_of)
                for key in coldest:
                    if key not in victims:
                        victims.append(key)
                    if len(victims) >= want:
                        break
        for key in victims:
            state.retire_key(key)
            nbytes = self._charged.pop((window, key), 0)
            if nbytes and self._governor is not None:
                self._governor.release(nbytes)
            self.demotions += 1
            self._m_demotions.inc()

    # -- preagg bucket re-sizing ---------------------------------------

    def desired_bucket_ms(self, window: str) -> Optional[int]:
        """Bucket width the observed span distribution calls for.

        ``p50(span) / target_bucket_merges``, floored at
        ``min_bucket_ms``; ``None`` until ``min_span_samples`` preagg
        requests have been observed.
        """
        profile = self._profiles.get(window)
        if profile is None \
                or profile.span_samples < self.config.min_span_samples:
            return None
        spans = sorted(profile.spans)
        p50 = spans[len(spans) // 2]
        return max(p50 // self.config.target_bucket_merges,
                   self.config.min_bucket_ms)

    def _maybe_rebucket(self, window: str) -> None:
        desired = self.desired_bucket_ms(window)
        if desired is None:
            return
        slots = self._host.preaggs.get(window)
        if not slots:
            return
        current = next(iter(slots.values())).bucket_ms
        factor = self.config.rebucket_factor
        if current / desired < factor and desired / current < factor:
            return  # hysteresis: close enough, leave it alone
        if self._host.rebucket_preagg(window, desired):
            self.rebuckets += 1
            self._m_rebuckets.inc()

    # ------------------------------------------------------------------
    # failover / migration survival

    def state_snapshot(self) -> Dict[str, Any]:
        """Plain-data snapshot of the calibrated state.

        Carries the cost model, per-window bucket intent, and the hot
        key set (so a restarted or migrated deployment re-provisions
        them on its first tick instead of re-learning from cold).
        """
        with self._lock:
            windows: Dict[str, Any] = {}
            for name, profile in self._profiles.items():
                windows[name] = {
                    "per_block_ms": profile.per_block_ms.state(),
                    "scan_blocks": profile.scan_blocks.state(),
                    "incr_ms": profile.incr_ms.state(),
                    "preagg_ms": profile.preagg_ms.state(),
                    "spans": list(profile.spans),
                    "span_samples": profile.span_samples,
                }
            hot = {}
            for (window, key) in self._charged:
                hot.setdefault(window, []).append(key)
            if self._host is not None:
                for window, state in self._host.incrementals.items():
                    if getattr(state, "selective", False):
                        hot.setdefault(window, [])
                        for key in state.tracked_keys():
                            if key not in hot[window]:
                                hot[window].append(key)
            return {"windows": windows, "hot_keys": hot}

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Load a :meth:`state_snapshot` into this (fresh) router.

        Costs apply immediately; hot keys are queued for promotion on
        the first tick (promotion needs the host's tables caught up, so
        it cannot happen synchronously here).
        """
        with self._lock:
            for name, data in snapshot.get("windows", {}).items():
                profile = _WindowProfile(self.config)
                profile.per_block_ms = Ewma.from_state(
                    data["per_block_ms"])
                profile.scan_blocks = Ewma.from_state(data["scan_blocks"])
                profile.incr_ms = Ewma.from_state(data["incr_ms"])
                profile.preagg_ms = Ewma.from_state(data["preagg_ms"])
                profile.spans = list(data.get("spans", []))
                profile.span_samples = int(data.get("span_samples", 0))
                self._profiles[name] = profile
            for window, keys in snapshot.get("hot_keys", {}).items():
                self._warm_keys.setdefault(window, []).extend(keys)

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operator-facing summary (also the bench harness's source)."""
        return {
            "ticks": self.ticks,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "rebuckets": self.rebuckets,
            "decisions": dict(self.decisions),
            "reserved_bytes": sum(self._charged.values()),
        }
