"""Figure 12 — multi-window parallel optimisation.

Paper shape: on queries with several independent windows, parallelising
the window operators (ConcatJoin/SimpleProject rewrite, Section 6.1)
yields ~4.6–5.3× over Spark across small/medium/large windows, because
the user-perceived time collapses to the longest single window.
"""

from __future__ import annotations

import pytest

from _util import record_bench
from repro.baselines import SparkBatchEngine
from repro.bench import print_table, speedup
from repro.offline.engine import OfflineEngine
from repro.schema import IndexDef, Schema
from repro.sql.compiler import compile_plan
from repro.sql.parser import parse_select
from repro.sql.planner import build_plan
from repro.storage.memtable import MemTable

WORKERS = 8


def dataset(keys=4, rows_per_key=300):
    schema = Schema.from_pairs([
        ("k", "string"), ("ts", "timestamp"), ("v", "double")])
    rows = []
    for key_index in range(keys):
        rows.extend((f"k{key_index}", index * 10, float(index % 9))
                    for index in range(rows_per_key))
    return schema, rows


def multi_window_sql(window_rows):
    windows = []
    selects = ["k"]
    for index in range(4):
        frame = window_rows + index * (window_rows // 4)
        windows.append(
            f"w{index} AS (PARTITION BY k ORDER BY ts "
            f"ROWS BETWEEN {frame - 1} PRECEDING AND CURRENT ROW)")
        selects.append(f"sum(v) OVER w{index} AS s{index}")
        selects.append(f"avg(v) OVER w{index} AS a{index}")
    return (f"SELECT {', '.join(selects)} FROM t "
            f"WINDOW {', '.join(windows)}")


def run_case(window_rows):
    schema, rows = dataset()
    sql = multi_window_sql(window_rows)
    catalog = {"t": schema}

    table = MemTable("t", schema, [IndexDef(("k",), "ts")])
    table.insert_many(rows)
    compiled = compile_plan(build_plan(parse_select(sql), catalog), catalog)
    engine = OfflineEngine({"t": table}, workers=WORKERS)
    _r, parallel_stats = engine.execute(compiled, parallel_windows=True)
    _r, serial_stats = engine.execute(compiled, parallel_windows=False)

    spark = SparkBatchEngine(sql, catalog, workers=WORKERS)
    spark.load("t", rows)
    _r, spark_stats = spark.run()
    return (spark_stats.parallel_seconds,
            serial_stats.total_parallel_seconds,
            parallel_stats.total_parallel_seconds)


def check_process_mode_identical(window_rows):
    """The process pool must produce the same feature rows as threads
    (or fall back to threads visibly — never silently diverge).  Kept
    out of :func:`run_case` so pool forking can't perturb the timed
    measurements."""
    schema, rows = dataset()
    sql = multi_window_sql(window_rows)
    catalog = {"t": schema}
    table = MemTable("t", schema, [IndexDef(("k",), "ts")])
    table.insert_many(rows)
    compiled = compile_plan(build_plan(parse_select(sql), catalog), catalog)
    engine = OfflineEngine({"t": table}, workers=WORKERS, pool_workers=2)
    try:
        thread_rows, _ = engine.execute(compiled, mode="thread")
        process_rows, process_stats = engine.execute(compiled,
                                                     mode="process")
    finally:
        engine.close()
    assert process_rows == thread_rows
    assert process_stats.used_process_pool or process_stats.pool_fallback


@pytest.mark.benchmark(group="fig12")
def test_fig12_parallel_windows(benchmark):
    cases = {"small": 40, "medium": 120, "large": 240}
    rows = []
    speedups = {}
    for label, window_rows in cases.items():
        spark_s, serial_s, parallel_s = run_case(window_rows)
        speedups[label] = speedup(spark_s, parallel_s)
        rows.append([label, spark_s, serial_s, parallel_s,
                     speedups[label],
                     speedup(serial_s, parallel_s)])
    print_table(
        "Figure 12: multi-window parallel optimisation (seconds)",
        ["windows", "spark", "openmldb serial", "openmldb parallel",
         "speedup vs spark", "speedup vs serial"], rows)

    for label in cases:
        assert speedups[label] > 2, label
    # Parallel windows beat serial window execution where the windows
    # carry real work; at the smallest size per-task times approach the
    # thread-pool measurement floor, so only direction is asserted there.
    for row in rows:
        if row[0] == "small":
            continue
        assert row[5] > 1.2, row[0]

    check_process_mode_identical(cases["small"])
    record_bench("fig12_parallel_window",
                 **{f"{label}_speedup_vs_spark": value
                    for label, value in speedups.items()})
    benchmark.extra_info["speedups"] = {
        label: round(value, 2) for label, value in speedups.items()}
    benchmark.pedantic(run_case, args=(40,), rounds=2, iterations=1)
