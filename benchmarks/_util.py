"""Helpers shared by the benchmark files (importable via the sys.path
insertion in benchmarks/conftest.py)."""

from __future__ import annotations

import json
import pathlib

from repro import OpenMLDB
from repro.workloads.microbench import (MicroBenchConfig, build_feature_sql,
                                        generate)

__all__ = ["build_openmldb", "openmldb_for_config", "record_bench"]

BENCH_RESULTS_PATH = \
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_online.json"

#: Installed by ``benchmarks/conftest.py``: called with the figure name
#: before anything is written, and expected to raise if any harness
#: result produced by the current test was unfit to record (e.g. a
#: ``ClosedLoopResult`` that timed out — its qps describes a partial
#: run and must never become a headline number).
_result_guard = None


def record_bench(figure, **medians):
    """Persist one figure's median measurements to ``BENCH_online.json``.

    The file at the repo root maps figure name → {metric: median}; each
    benchmark run overwrites its own figure's entry and leaves the rest,
    so successive runs (including ``make bench-smoke``) accumulate one
    comparable record per figure for regression tracking.
    """
    if _result_guard is not None:
        _result_guard(figure)
    try:
        results = json.loads(BENCH_RESULTS_PATH.read_text())
        if not isinstance(results, dict):
            results = {}
    except (FileNotFoundError, ValueError):
        results = {}
    entry = results.setdefault(figure, {})
    for metric, value in medians.items():
        entry[metric] = round(value, 6) if isinstance(value, float) \
            else value
    BENCH_RESULTS_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n")


def build_openmldb(data, sql, deployment="bench", observability=False):
    """Stand up an OpenMLDB instance loaded with a MicroBench dataset."""
    db = OpenMLDB(observability=observability)
    for name, schema in data.schemas.items():
        db.create_table(name, schema, indexes=data.indexes[name])
    for name, rows in data.rows.items():
        db.insert_many(name, rows)
    db.deploy(deployment, sql)
    return db


def openmldb_for_config(config: MicroBenchConfig, request_count=80):
    """Generate + load + deploy one MicroBench configuration."""
    data = generate(config, request_count=request_count)
    sql = build_feature_sql(config)
    db = build_openmldb(data, sql)
    return db, data, sql
