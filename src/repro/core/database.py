"""The OpenMLDB session facade: tables, SQL, deployments, execution modes.

:class:`OpenMLDB` ties every subsystem together the way the paper's
architecture diagram (Figure 2) does:

* DDL/DML — ``CREATE TABLE`` (with stream indexes + TTL), ``INSERT``;
* the **unified plan generator** — one parser/planner/compiler (with the
  compilation cache) feeding both engines;
* **online request mode** — ``deploy()`` then ``request()``, with optional
  long-window pre-aggregation maintained through the binlog replicator;
* **offline mode** — ``offline_query()`` batch execution with
  multi-window parallelism and skew resolving;
* **online preview mode** — ``preview()`` with complexity constraints and
  a result cache;
* memory governance — an optional per-database
  :class:`~repro.memory.governor.MemoryGovernor` making writes fail (but
  not reads) past ``max_memory_mb``.
"""

from __future__ import annotations

import threading
import time
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from ..errors import (DeploymentError, DeploymentNotFoundError, ParseError,
                      PlanError, SchemaError, TableExistsError,
                      TableNotFoundError)
from ..schema import Column, IndexDef, Row, Schema, TTLKind, TTLSpec
from ..sql import ast
from ..sql.compiler import CompilationCache
from ..sql.parser import parse
from ..sql.planner import build_plan
from ..storage.disk import DiskTable
from ..storage.memtable import MemTable
from ..online.binlog import Replicator
from ..online.engine import OnlineEngine
from ..offline.engine import OfflineEngine, OfflineStats
from ..offline.skew import SkewConfig
from ..memory.governor import MemoryGovernor
from ..obs import NULL_OBS, Observability
from ..types import ColumnType
from .deployment import Deployment
from .modes import PreviewConstraints

__all__ = ["OpenMLDB"]

_INTERVAL_UNITS_MS = {"s": 1_000, "m": 60_000, "h": 3_600_000,
                      "d": 86_400_000}


class OpenMLDB:
    """An embedded OpenMLDB instance.

    Args:
        offline_workers: simulated cluster width for batch execution.
        max_memory_mb: optional write limit (Section 8.2 isolation).
        seed: storage-structure RNG seed, for reproducible layouts.
        observability: collect metrics and per-request trace spans
            (see :mod:`repro.obs`).  Off by default — the disabled
            path adds nothing measurable to the request path.
    """

    def __init__(self, offline_workers: int = 8,
                 max_memory_mb: Optional[int] = None,
                 seed: int = 0, observability: bool = False) -> None:
        self.obs = Observability(enabled=True) if observability \
            else NULL_OBS
        self.tables: Dict[str, Union[MemTable, DiskTable]] = {}
        self.replicator = Replicator()
        self.compile_cache = CompilationCache(obs=self.obs)
        self.deployments: Dict[str, Deployment] = {}
        self.online_engine = OnlineEngine(self.tables, obs=self.obs)
        self.offline_engine = OfflineEngine(self.tables,
                                            workers=offline_workers,
                                            obs=self.obs)
        self.governor = MemoryGovernor("db", max_memory_mb=max_memory_mb)
        self._updaters: Dict[str, List[Callable]] = {}
        self._preview_cache: Dict[Tuple[str, int], List[Row]] = {}
        self._seed = seed
        self._lock = threading.Lock()
        if observability:
            self._h_request = self.obs.registry.histogram(
                "online.request.ms")

    # ------------------------------------------------------------------
    # catalog / DDL

    def create_table(self, name: str, schema: Schema,
                     indexes: Optional[Sequence[IndexDef]] = None,
                     storage: str = "memory", replicas: int = 1,
                     flush_threshold: int = 4096
                     ) -> Union[MemTable, DiskTable]:
        """Create a table with stream indexes.

        With no explicit index, a default one is derived: the first
        string/int column as key, the first timestamp column as ts —
        mirroring OpenMLDB's automatic index creation.
        """
        if name in self.tables:
            raise TableExistsError(name)
        if indexes is None:
            indexes = [self._default_index(schema)]
        if storage == "memory":
            table: Union[MemTable, DiskTable] = MemTable(
                name, schema, indexes, replicas=replicas, seed=self._seed,
                obs=self.obs)
        elif storage == "disk":
            table = DiskTable(name, schema, indexes, replicas=replicas,
                              flush_threshold=flush_threshold,
                              seed=self._seed, obs=self.obs)
        else:
            raise SchemaError(f"unknown storage engine {storage!r}")
        self.tables[name] = table
        return table

    @staticmethod
    def _default_index(schema: Schema) -> IndexDef:
        key_column: Optional[str] = None
        ts_column: Optional[str] = None
        for column in schema:
            if key_column is None and column.type in (
                    ColumnType.STRING, ColumnType.INT, ColumnType.BIGINT):
                key_column = column.name
            if ts_column is None and column.type is ColumnType.TIMESTAMP:
                ts_column = column.name
        if key_column is None or ts_column is None:
            raise SchemaError(
                "cannot derive a default index: need a key-typed column "
                "and a timestamp column, or pass indexes= explicitly")
        return IndexDef(key_columns=(key_column,), ts_column=ts_column)

    def table(self, name: str) -> Union[MemTable, DiskTable]:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def catalog(self) -> Dict[str, Schema]:
        return {name: table.schema for name, table in self.tables.items()}

    # ------------------------------------------------------------------
    # DML

    def insert(self, table_name: str, row: Sequence[Any]) -> int:
        """Insert one row: storage, memory accounting, binlog, updaters."""
        table = self.table(table_name)
        validated = table.schema.validate_row(row)
        self.governor.charge(table.codec.encoded_size(validated)
                             if isinstance(table, MemTable)
                             else _approx_row_bytes(validated))
        offset = table.insert(validated)
        updaters = self._updaters.get(table_name)
        closure = None
        if updaters:
            def closure(entry, fns=tuple(updaters)):
                for fn in fns:
                    fn(entry)
        self.replicator.append_entry(table_name, validated, closure=closure)
        return offset

    def insert_many(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        for row in rows:
            self.insert(table_name, row)
        return len(rows)

    def _register_updater(self, table_name: str,
                          update_closure: Callable) -> None:
        self._updaters.setdefault(table_name, []).append(update_closure)

    # ------------------------------------------------------------------
    # unified SQL entry point

    def execute(self, sql: str) -> Any:
        """Execute one SQL statement (offline-mode semantics for SELECT).

        Returns:
            ``CREATE TABLE`` → the table; ``INSERT`` → rows inserted;
            ``SELECT`` → list of feature rows; ``DEPLOY`` → the Deployment.
        """
        statement = parse(sql)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create(statement)
        if isinstance(statement, ast.InsertStatement):
            return self.insert_many(statement.table, statement.rows)
        if isinstance(statement, ast.SelectStatement):
            rows, _stats = self.offline_query_statement(statement)
            return rows
        if isinstance(statement, ast.DeployStatement):
            return self._execute_deploy(statement, sql)
        raise ParseError(f"unsupported statement: {type(statement).__name__}")

    def _execute_create(self, statement: ast.CreateTableStatement):
        columns = [Column(c.name, ColumnType.from_sql_name(c.type_name),
                          nullable=c.nullable)
                   for c in statement.columns]
        schema = Schema(columns)
        indexes = [self._index_from_clause(clause)
                   for clause in statement.indexes] or None
        return self.create_table(statement.name, schema, indexes=indexes)

    @staticmethod
    def _index_from_clause(clause: ast.IndexClause) -> IndexDef:
        ttl = TTLSpec()
        if clause.ttl_value is not None:
            kind = TTLKind(clause.ttl_type.lower()) if clause.ttl_type \
                else TTLKind.ABSOLUTE
            text = clause.ttl_value.strip()
            abs_ms = 0
            lat = 0
            if text and text[-1].lower() in _INTERVAL_UNITS_MS:
                try:
                    count = int(text[:-1])
                except ValueError:
                    raise SchemaError(
                        f"malformed TTL value {text!r}; expected "
                        "'<n><s|m|h|d>' or a bare number") from None
                if count < 0:
                    raise SchemaError(
                        f"TTL value {text!r} must not be negative")
                abs_ms = count * _INTERVAL_UNITS_MS[text[-1].lower()]
            elif text.isdigit():
                value = int(text)
                if kind in (TTLKind.LATEST,):
                    lat = value
                else:
                    abs_ms = value * 60_000  # bare numbers are minutes
            else:
                raise SchemaError(
                    f"malformed TTL value {text!r}; expected "
                    "'<n><s|m|h|d>' or a bare number")
            ttl = TTLSpec(kind=kind, abs_ttl_ms=abs_ms, lat_ttl=lat)
        return IndexDef(key_columns=clause.key_columns,
                        ts_column=clause.ts_column, ttl=ttl)

    # ------------------------------------------------------------------
    # deployments / online request mode

    def deploy(self, name: str, sql: str,
               long_windows: Optional[str] = None,
               preagg_levels: int = 2) -> Deployment:
        """Compile and deploy a feature script for online serving.

        ``long_windows`` takes the same string as the SQL OPTIONS form,
        e.g. ``"w1:1d"`` (Figure 11).
        """
        statement = parse(sql)
        if isinstance(statement, ast.DeployStatement):
            deploy_statement = statement
            if long_windows is not None:
                options = tuple(statement.options) + (
                    ("long_windows", long_windows),)
                deploy_statement = ast.DeployStatement(
                    name=statement.name, select=statement.select,
                    options=options)
        elif isinstance(statement, ast.SelectStatement):
            options = (("long_windows", long_windows),) if long_windows \
                else ()
            deploy_statement = ast.DeployStatement(
                name=name, select=statement, options=options)
        else:
            raise DeploymentError("deploy() expects a SELECT or DEPLOY")
        return self._execute_deploy(deploy_statement, sql)

    def _execute_deploy(self, statement: ast.DeployStatement,
                        sql: str) -> Deployment:
        if statement.name in self.deployments:
            raise DeploymentError(
                f"deployment {statement.name!r} already exists")
        compiled = self.compile_cache.get_or_compile(
            statement.select, self.catalog())
        # Section 4.2's index optimisation: reject at deploy time any
        # window/join the declared indexes cannot serve.
        from ..sql.optimizer import index_access_paths
        index_access_paths(compiled.plan, {
            name: list(table.indexes)
            for name, table in self.tables.items()})
        deployment = Deployment.from_statement(statement, sql, compiled)
        deployment.initialize_preagg(self.tables, self._register_updater,
                                     obs=self.obs)
        deployment.initialize_incremental(self.tables,
                                          self._register_updater)
        self.deployments[statement.name] = deployment
        return deployment

    def undeploy(self, name: str) -> None:
        if name not in self.deployments:
            raise DeploymentNotFoundError(name)
        del self.deployments[name]

    def request(self, deployment_name: str,
                row: Sequence[Any]) -> Dict[str, Any]:
        """Online request mode: one tuple in, one feature dict out."""
        return dict(zip(self._deployment(deployment_name)
                        .compiled.output_names,
                        self.request_row(deployment_name, row)))

    def request_row(self, deployment_name: str,
                    row: Sequence[Any]) -> Row:
        """Like :meth:`request`, returning the raw feature tuple."""
        deployment = self._deployment(deployment_name)
        preagg = deployment.preaggs if deployment.uses_preagg else None
        incremental = (deployment.incrementals
                       if deployment.uses_incremental else None)
        if not self.obs.enabled:
            return self.online_engine.execute_request(
                deployment.compiled, row, preagg=preagg,
                incremental=incremental)
        start = time.perf_counter()
        with self.obs.tracer.span("deployment.execute",
                                  deployment=deployment_name):
            features = self.online_engine.execute_request(
                deployment.compiled, row, preagg=preagg,
                incremental=incremental)
        self._h_request.observe((time.perf_counter() - start) * 1_000)
        return features

    def _deployment(self, name: str) -> Deployment:
        try:
            return self.deployments[name]
        except KeyError:
            raise DeploymentNotFoundError(name) from None

    def flush_preagg(self, timeout: float = 10.0) -> None:
        """Drain asynchronous aggregator updates (determinism for tests)."""
        self.replicator.wait_idle(timeout=timeout)
        self.replicator.check()

    def explain(self, sql: str, optimized: bool = True) -> str:
        """EXPLAIN: render the operator tree for a SELECT.

        With ``optimized=True`` the multi-window parallel rewrite
        (Section 6.1) is applied, showing the ConcatJoin/SimpleProject
        segment the offline engine exploits.
        """
        from ..sql.optimizer import explain_optimized
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ParseError("explain expects a SELECT")
        plan = build_plan(statement, self.catalog())
        return explain_optimized(plan) if optimized else plan.explain()

    # ------------------------------------------------------------------
    # offline mode

    def offline_query(self, sql: str, parallel_windows: bool = True,
                      skew: Optional[SkewConfig] = None
                      ) -> Tuple[List[Row], OfflineStats]:
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ParseError("offline_query expects a SELECT")
        return self.offline_query_statement(
            statement, parallel_windows=parallel_windows, skew=skew)

    def offline_query_statement(self, statement: ast.SelectStatement,
                                parallel_windows: bool = True,
                                skew: Optional[SkewConfig] = None
                                ) -> Tuple[List[Row], OfflineStats]:
        compiled = self.compile_cache.get_or_compile(
            statement, self.catalog())
        return self.offline_engine.execute(
            compiled, parallel_windows=parallel_windows, skew=skew)

    # ------------------------------------------------------------------
    # online preview mode

    def preview(self, sql: str, limit: int = 10) -> List[Row]:
        """Online preview: limited batch run with complexity constraints.

        Results are served from a cache keyed on (sql, limit) — the
        paper's "retrieves results from a data cache".
        """
        if limit > PreviewConstraints.MAX_ROWS:
            raise PlanError(
                f"preview limit {limit} exceeds "
                f"{PreviewConstraints.MAX_ROWS}")
        cache_key = (sql, limit)
        cached = self._preview_cache.get(cache_key)
        if cached is not None:
            return cached
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ParseError("preview expects a SELECT")
        if len(statement.windows) > PreviewConstraints.MAX_WINDOWS:
            raise PlanError("preview: too many windows")
        if len(statement.joins) > PreviewConstraints.MAX_JOINS:
            raise PlanError("preview: too many joins")
        for window in statement.windows:
            if len(window.partition_by) \
                    > PreviewConstraints.MAX_PARTITION_COLUMNS:
                raise PlanError("preview: too many partition key columns")
        rows, _stats = self.offline_query_statement(statement)
        result = rows[:limit]
        self._preview_cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    # maintenance / recovery

    def recover_table(self, name: str) -> int:
        """Rebuild a table's online structures by replaying the binlog.

        Simulates a tablet restart (Section 5.1's failure-recovery
        design): the in-memory indexes are discarded and reconstructed
        from the replicator's log, including re-running any registered
        aggregator updaters, so pre-aggregation state recovers with the
        data.  Returns the number of replayed rows.
        """
        old = self.table(name)
        if isinstance(old, MemTable):
            fresh: Union[MemTable, DiskTable] = MemTable(
                name, old.schema, old.indexes, replicas=old.replicas,
                seed=self._seed, obs=self.obs)
        else:
            fresh = DiskTable(name, old.schema, old.indexes,
                              replicas=old.replicas,
                              flush_threshold=old.flush_threshold,
                              seed=self._seed, obs=self.obs)
        replayed = 0
        for entry in self.replicator.entries_from(0):
            if entry.table != name:
                continue
            fresh.insert(entry.row)
            replayed += 1
        if isinstance(old, MemTable) and isinstance(fresh, MemTable):
            # Incremental window state mirrors TTL sweeps through table
            # eviction subscriptions; carry them to the rebuilt table.
            for callback in old.eviction_subscribers:
                fresh.subscribe_eviction(callback)
        self.tables[name] = fresh
        # Deployed pre-aggregators and incremental window state keep
        # their own buffers — they consumed the same binlog
        # asynchronously, so nothing is lost with the table's in-memory
        # structures.
        return replayed

    def evict_expired(self, now_ts: int) -> int:
        """Run TTL eviction across all memory tables."""
        if self._updaters:
            # Drain pending binlog closures first so ingest-maintained
            # state (pre-aggregation, incremental windows) mirrors the
            # same row set the sweep sees.
            self.replicator.wait_idle(timeout=5.0)
        removed = 0
        for table in self.tables.values():
            if isinstance(table, MemTable):
                removed += table.evict_expired(now_ts)
        return removed

    def close(self) -> None:
        self.replicator.close()


def _approx_row_bytes(row: Sequence[Any]) -> int:
    total = 16
    for value in row:
        total += 8 if not isinstance(value, str) else 8 + len(value)
    return total
