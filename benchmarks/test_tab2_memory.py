"""Table 2 — memory saved by OpenMLDB vs (Trino+)Redis.

Paper shape: the TalkingData-shaped table (ip-keyed clicks) costs
74.77 % less memory at 10 K tuples, declining toward ~45 % as tuple
counts grow (Redis's per-key overheads amortise while its per-member
serialisation overhead does not).  Byte accounting on both sides is the
exact layout arithmetic — see Section 7.1's codecs and the Redis model in
``repro.storage.encoding``.
"""

from __future__ import annotations


import pytest

from repro.bench import print_table
from repro.memory.estimator import measure_memtable_bytes
from repro.storage.encoding import redis_table_bytes
from repro.storage.memtable import MemTable
from repro.workloads.talkingdata import (INDEX, SCHEMA, TalkingDataConfig,
                                         generate_clicks)


@pytest.mark.benchmark(group="tab2")
def test_tab2_memory_vs_redis(benchmark):
    sizes = [10_000, 50_000, 200_000]
    results = []
    reductions = []
    for rows in sizes:
        config = TalkingDataConfig(rows=rows, distinct_ips=5_000)
        clicks = list(generate_clicks(config))
        table = MemTable("clicks", SCHEMA, [INDEX])
        table.insert_many(clicks)
        ours = measure_memtable_bytes(table)
        redis = redis_table_bytes(SCHEMA, clicks,
                                  distinct_keys=table.key_cardinality())
        reduction = 1 - ours / redis
        reductions.append(reduction)
        results.append([rows, redis, ours, f"{reduction:.2%}"])
    print_table("Table 2: memory vs Redis (bytes)",
                ["#-Tuples", "Redis", "OpenMLDB", "Reduction"], results)

    # Shape: always a large saving, declining as keys amortise.
    assert all(reduction > 0.30 for reduction in reductions)
    assert reductions[0] > 0.55
    assert reductions == sorted(reductions, reverse=True)

    def measure_once():
        config = TalkingDataConfig(rows=2_000, distinct_ips=500)
        clicks = list(generate_clicks(config))
        table = MemTable("clicks", SCHEMA, [INDEX])
        table.insert_many(clicks)
        return measure_memtable_bytes(table)

    benchmark.extra_info["reductions"] = [f"{r:.4f}" for r in reductions]
    benchmark.pedantic(measure_once, rounds=3, iterations=1)
