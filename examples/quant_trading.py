"""Quantitative-trading features: drawdown, ew_avg, and the disk engine.

Exercises the time-series aggregations of Table 1 that motivate the
paper's quant-trading users:

* ``drawdown`` — maximum decline fraction from a historical peak
  (risk / max-loss measurement),
* ``ew_avg`` — exponentially weighted price average (momentum
  indicators, requiring the storage layer's time ordering),
* ``lag`` — previous tick comparison,
* the **disk-based storage engine** (Section 7.3) for the cold, large
  history table, chosen via the memory estimator of Section 8.1.

Run:  python examples/quant_trading.py
"""

from __future__ import annotations

import math
import random

from repro import OpenMLDB, Schema, IndexDef
from repro.memory.estimator import (IndexProfile, TableProfile,
                                    recommend_engine)

MINUTE_MS = 60_000

FEATURE_SQL = (
    "SELECT sym, "
    "  drawdown(px) OVER w_day AS max_drawdown_1d, "
    "  ew_avg(px, 0.2) OVER w_hour AS ewma_1h, "
    "  lag(px, 1) OVER w_hour AS prev_px, "
    "  min(px) OVER w_day AS low_1d, "
    "  max(px) OVER w_day AS high_1d "
    "FROM ticks WINDOW "
    "  w_hour AS (PARTITION BY sym ORDER BY ts "
    "    ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW), "
    "  w_day AS (PARTITION BY sym ORDER BY ts "
    "    ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)")


def main() -> None:
    # Size the table first: the estimator recommends a storage engine.
    profile = TableProfile(
        rows=5_000_000, avg_row_bytes=40,
        indexes=[IndexProfile(unique_keys=2_000, avg_key_bytes=6)],
        replicas=2)
    choice = recommend_engine(profile, available_memory_bytes=256e6,
                              latency_budget_ms=25)
    print(f"estimator recommends the {choice.engine!r} engine: "
          f"{choice.reason}")

    db = OpenMLDB()
    schema = Schema.from_pairs([
        ("sym", "string"), ("ts", "timestamp"), ("px", "double")])
    db.create_table("ticks", schema,
                    indexes=[IndexDef(("sym",), "ts")],
                    storage=choice.engine, flush_threshold=2_000)

    # A random-walk price series per symbol.
    rng = random.Random(99)
    for sym in ("BTC", "ETH"):
        price = 100.0
        for minute in range(3_000):
            price = max(price * math.exp(rng.gauss(0, 0.004)), 1.0)
            db.insert("ticks", (sym, minute * MINUTE_MS, round(price, 4)))

    db.deploy("quant", FEATURE_SQL)

    incoming = ("BTC", 3_000 * MINUTE_MS, 100.0)
    features = db.request("quant", incoming)
    print("\nrisk/momentum features on the incoming tick:")
    for name, value in features.items():
        print(f"  {name:16s} = {value}")
    assert 0.0 <= features["max_drawdown_1d"] <= 1.0

    # The same script also backfills training data in offline mode.
    rows, stats = db.offline_query(FEATURE_SQL + " LIMIT 5")
    print(f"\nfirst offline rows (of a {stats.rows}-anchor backfill):")
    for row in rows:
        print("  ", row)
    db.close()


if __name__ == "__main__":
    main()
