"""Helpers shared by the benchmark files (importable via the sys.path
insertion in benchmarks/conftest.py)."""

from __future__ import annotations

from repro import OpenMLDB
from repro.workloads.microbench import (MicroBenchConfig, build_feature_sql,
                                        generate)

__all__ = ["build_openmldb", "openmldb_for_config"]


def build_openmldb(data, sql, deployment="bench", observability=False):
    """Stand up an OpenMLDB instance loaded with a MicroBench dataset."""
    db = OpenMLDB(observability=observability)
    for name, schema in data.schemas.items():
        db.create_table(name, schema, indexes=data.indexes[name])
    for name, rows in data.rows.items():
        db.insert_many(name, rows)
    db.deploy(deployment, sql)
    return db


def openmldb_for_config(config: MicroBenchConfig, request_count=80):
    """Generate + load + deploy one MicroBench configuration."""
    data = generate(config, request_count=request_count)
    sql = build_feature_sql(config)
    db = build_openmldb(data, sql)
    return db, data, sql
