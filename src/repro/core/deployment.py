"""Deployments: compiled feature scripts bound to online serving.

A deployment is the unit the paper's Figure 3 pushes from development to
production: a SELECT compiled once, plus serving options — most notably
``OPTIONS(long_windows="w1:1d")``, which turns on long-window
pre-aggregation (Section 5.1, Figure 11) for the named windows.

Deploying with long windows:

1. verifies the windows exist and use time-range frames;
2. creates one :class:`~repro.online.preagg.PreAggregator` per *mergeable*
   aggregate bound to those windows (non-mergeable aggregates keep the
   raw-scan path — correctness never depends on pre-aggregation);
3. **backfills** the aggregators from existing table data (the paper's
   "slightly higher data loading overhead");
4. registers an ``update_aggr`` binlog closure so subsequent inserts
   maintain the aggregators asynchronously.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import DeploymentError
from ..schema import Row
from ..sql import ast
from ..sql.compiler import CompiledQuery
from ..storage.memtable import normalize_ts
from ..online.incremental import IncrementalWindowState
from ..online.preagg import (LongWindowOption, PreAggregator,
                             parse_long_windows)

__all__ = ["Deployment"]


@dataclasses.dataclass
class Deployment:
    """One deployed feature script.

    Attributes:
        name: deployment name (``DEPLOY name ...``).
        sql: original SQL text (for introspection/EXPLAIN).
        compiled: the compiled plan executed per request.
        long_windows: parsed long-window options, empty when disabled.
        preaggs: window name → {aggregate slot → PreAggregator}; the
            online engine answers these slots from pre-aggregation.
        incrementals: canonical window name → ingest-time running window
            state (Section 5.2); the online engine answers whole windows
            from these on warm keys, falling back to scans otherwise.
        backfill_seconds: measured aggregator backfill cost at deploy time.
    """

    name: str
    sql: str
    compiled: CompiledQuery
    long_windows: Tuple[LongWindowOption, ...] = ()
    preaggs: Dict[str, Dict[int, PreAggregator]] = dataclasses.field(
        default_factory=dict)
    incrementals: Dict[str, IncrementalWindowState] = dataclasses.field(
        default_factory=dict)
    backfill_seconds: float = 0.0
    #: Set by :meth:`initialize_adaptive`: the execution router picking
    #: tiers and managing incremental/preagg state at runtime.
    router: Optional[Any] = dataclasses.field(default=None, repr=False)
    _tables: Optional[Mapping[str, Any]] = dataclasses.field(
        default=None, repr=False, compare=False)
    _register_updater: Optional[Callable[[str, Callable], None]] = \
        dataclasses.field(default=None, repr=False, compare=False)
    _preagg_levels: int = dataclasses.field(
        default=2, repr=False, compare=False)
    _obs: Optional[Any] = dataclasses.field(
        default=None, repr=False, compare=False)

    @classmethod
    def from_statement(cls, statement: ast.DeployStatement, sql: str,
                       compiled: CompiledQuery) -> "Deployment":
        option = statement.option("long_windows")
        long_windows = parse_long_windows(option) if option else ()
        return cls(name=statement.name, sql=sql, compiled=compiled,
                   long_windows=long_windows)

    # ------------------------------------------------------------------

    def initialize_preagg(
            self, tables: Mapping[str, Any],
            register_updater: Callable[[str, Callable], None],
            levels: int = 2, obs: Optional[Any] = None) -> None:
        """Create, backfill, and wire the deployment's pre-aggregators.

        Args:
            tables: table name → storage object.
            register_updater: callback ``(table_name, update_closure)``
                hooking aggregator maintenance into the binlog pipeline.
            levels: aggregator hierarchy depth (Section 5.1).
            obs: optional observability handle; aggregators record
                absorbed-row / query / bucket-merge counters when set.
        """
        started = time.perf_counter()
        for option in self.long_windows:
            window = self.compiled.windows.get(option.window)
            if window is None:
                raise DeploymentError(
                    f"long_windows references unknown window "
                    f"{option.window!r}")
            plan = window.plan
            if not plan.is_range_frame:
                raise DeploymentError(
                    f"long_windows window {option.window!r} must use a "
                    "ROWS_RANGE frame")
            if plan.union_tables:
                raise DeploymentError(
                    "long-window pre-aggregation over WINDOW UNION is not "
                    "supported; drop the union or the long_windows option")
            if plan.instance_not_in_window:
                raise DeploymentError(
                    "long-window pre-aggregation aggregates instance-table "
                    "rows, which INSTANCE_NOT_IN_WINDOW excludes")
            slot_map: Dict[int, PreAggregator] = {}
            for compiled_agg in window.aggregates:
                aggregator = self._build_aggregator(
                    window, compiled_agg, option, levels)
                if aggregator is None:
                    continue  # non-mergeable: stays on the raw path
                if obs is not None and obs.enabled:
                    aggregator.bind_obs(obs)
                table = tables[self.compiled.plan.table]
                aggregator.backfill(list(table.rows()))
                register_updater(self.compiled.plan.table,
                                 aggregator.make_update_closure())
                slot_map[compiled_agg.slot] = aggregator
            if slot_map:
                self.preaggs[option.window] = slot_map
        self.backfill_seconds = time.perf_counter() - started

    @staticmethod
    def _build_aggregator(window, compiled_agg, option: LongWindowOption,
                          levels: int) -> Optional[PreAggregator]:
        from ..sql.functions import get_aggregate

        binding = compiled_agg.binding
        probe = get_aggregate(binding.func_name, *binding.constants)
        if not probe.mergeable:
            return None
        order_position = window.order_position

        def ts_fn(row: Row, position: int = order_position) -> int:
            return normalize_ts(row[position])

        return PreAggregator(
            func_name=binding.func_name, constants=binding.constants,
            arg_fn=compiled_agg.arg_fn, key_fn=window.partition_key,
            ts_fn=ts_fn, bucket_ms=option.bucket_ms, levels=levels)

    # ------------------------------------------------------------------

    def initialize_incremental(
            self, tables: Mapping[str, Any],
            register_updater: Callable[[str, Callable], None],
            selective: bool = False) -> None:
        """Create, backfill, and wire ingest-time window state.

        Every *eligible* window gets a per-key running aggregate state
        maintained from the binlog (Section 5.2 applied at ingest time):
        no WINDOW UNION, no INSTANCE_NOT_IN_WINDOW, all aggregates
        invertible and order-insensitive, and a primary table whose TTL
        eviction can be mirrored (memory tables).  Windows already
        served by long-window pre-aggregation keep that path.  Anything
        ineligible silently stays on the scan-fold path — incremental
        state is an accelerator, never a semantics change.

        With ``selective=True`` (adaptive deployments) the states start
        *empty* — no deploy-time backfill, no per-key aggregators — and
        the execution router provisions individual keys at runtime when
        their request rate justifies the ingest cost.
        """
        table_name = self.compiled.plan.table
        table = tables.get(table_name)
        if table is None or not hasattr(table, "subscribe_eviction"):
            return
        for name, window in self.compiled.windows.items():
            if not window.aggregates or name in self.preaggs:
                continue
            state = IncrementalWindowState.for_window(
                window, tables, table_name, selective=selective)
            if state is None:
                continue
            if not selective:
                state.backfill(table.rows())
            register_updater(table_name, state.make_update_closure())
            if selective:
                # Seed rows_seen after registration: a racing insert is
                # then covered by the updater or the count, never lost.
                state.mark_caught_up()
            table.subscribe_eviction(state.on_ttl_evict)
            self.incrementals[name] = state

    def initialize_adaptive(
            self, tables: Mapping[str, Any],
            register_updater: Callable[[str, Callable], None],
            governor: Optional[Any] = None, obs: Optional[Any] = None,
            config: Optional[Any] = None,
            preagg_levels: int = 2) -> Any:
        """Wire adaptive execution: selective state + a cost router.

        Call *instead of* :meth:`initialize_incremental`, after
        :meth:`initialize_preagg`.  Builds selective (router-managed)
        incremental states, constructs the
        :class:`~repro.adaptive.ExecutionRouter`, and hands it this
        deployment as its host plus the memory governor as its
        promotion budget.  Returns the router.
        """
        from ..adaptive import ExecutionRouter

        self._tables = tables
        self._register_updater = register_updater
        self._preagg_levels = preagg_levels
        self._obs = obs
        self.initialize_incremental(tables, register_updater,
                                    selective=True)
        router = ExecutionRouter(config=config, obs=obs)
        router.bind_host(self)
        router.bind_governor(governor)
        self.router = router
        return router

    # -- adaptive host hooks (called from ExecutionRouter.tick) --------

    def rebucket_preagg(self, window_name: str, bucket_ms: int) -> bool:
        """Swap a window's pre-aggregators for ones with a new width.

        The swap is answer-invariant or refused.  Protocol (the same
        caught-up + double-read discipline as
        :meth:`IncrementalWindowState.provision_key`):

        1. read ``n0 = row_count``; require every current aggregator to
           have absorbed ``>= n0`` rows — which proves every counted
           row's insert (and its closure registration snapshot)
           completed *before* this point, so no pending closure can
           later feed the new aggregators a row the backfill already
           replayed;
        2. backfill fresh aggregators from a single log snapshot of
           exactly ``n0`` rows;
        3. register the new closures, then re-read ``row_count`` — a row
           landing before registration would have bumped it, so on
           mismatch the new closures are retired and the swap aborts
           (the old aggregators never stopped, nothing was lost);
        4. retire the old closures and publish the new slot map.

        Returns True when the swap happened; False means "retry a later
        tick" and leaves the old aggregators serving.
        """
        if self._tables is None or self._register_updater is None:
            return False
        option = next((opt for opt in self.long_windows
                       if opt.window == window_name), None)
        old_slots = self.preaggs.get(window_name)
        window = self.compiled.windows.get(window_name)
        if option is None or not old_slots or window is None:
            return False
        if bucket_ms <= 0 \
                or next(iter(old_slots.values())).bucket_ms == bucket_ms:
            return False
        table = self._tables[self.compiled.plan.table]
        before = table.row_count
        if any(agg.rows_absorbed < before for agg in old_slots.values()):
            return False  # maintenance lag: the log snapshot could race
        rows = list(table.rows())
        if len(rows) != before:
            return False
        sized = LongWindowOption(window=window_name, bucket_ms=bucket_ms)
        new_slots: Dict[int, PreAggregator] = {}
        for compiled_agg in window.aggregates:
            if compiled_agg.slot not in old_slots:
                continue
            aggregator = self._build_aggregator(
                window, compiled_agg, sized, self._preagg_levels)
            if aggregator is None:
                return False
            if self._obs is not None and self._obs.enabled:
                aggregator.bind_obs(self._obs)
            aggregator.backfill(rows)
            new_slots[compiled_agg.slot] = aggregator
        if set(new_slots) != set(old_slots):
            return False
        for aggregator in new_slots.values():
            self._register_updater(self.compiled.plan.table,
                                   aggregator.make_update_closure())
        if table.row_count != before:
            # An insert raced the registration: its closure snapshot may
            # predate the new consumers.  Retire them and retry later —
            # the old aggregators never stopped absorbing.
            for aggregator in new_slots.values():
                aggregator.retire()
            return False
        for aggregator in old_slots.values():
            aggregator.retire()
        self.preaggs[window_name] = new_slots
        return True

    def router_snapshot(self) -> Optional[Dict[str, Any]]:
        """The router's calibrated state, for failover/migration."""
        return self.router.state_snapshot() \
            if self.router is not None else None

    def restore_router(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Warm-start this deployment's router from a snapshot."""
        if self.router is not None and snapshot:
            self.router.restore_state(snapshot)

    @property
    def adaptive(self) -> bool:
        return self.router is not None

    def adaptive_stats(self) -> Dict[str, Any]:
        """Router + state summary for operators and the benches."""
        stats: Dict[str, Any] = {}
        if self.router is not None:
            stats.update(self.router.stats())
        stats["tracked_keys"] = {
            name: state.key_count
            for name, state in self.incrementals.items()}
        stats["bucket_ms"] = {
            name: next(iter(slots.values())).bucket_ms
            for name, slots in self.preaggs.items() if slots}
        return stats

    @property
    def uses_incremental(self) -> bool:
        return bool(self.incrementals)

    def incremental_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-window ingest-state footprint (keys and buffered rows)."""
        return {
            name: {"keys": state.key_count,
                   "buffered_rows": state.buffered_rows(),
                   "rows_seen": state.rows_seen}
            for name, state in self.incrementals.items()
        }

    @property
    def uses_preagg(self) -> bool:
        return bool(self.preaggs)

    def preagg_stats(self) -> Dict[str, Dict[int, int]]:
        """rows absorbed per (window, slot) — observability for Fig. 11."""
        return {
            window: {slot: aggregator.rows_absorbed
                     for slot, aggregator in slots.items()}
            for window, slots in self.preaggs.items()
        }
