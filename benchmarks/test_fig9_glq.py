"""Figure 9 — Offline GLQ geospatial queries: OpenMLDB vs Spark.

Paper shape: OpenMLDB's response time stays nearly flat (~30 ms band in
the paper) while Spark's slowdown grows from ~5× to >22× as the
hyper-parameter N rises 7→10 — here N sets the route length (2^(N−6)
waypoints), and each waypoint forces the index-less engine into another
full scan.  Spark also OOMs on full-table materialisation, which the
grid engine completes.
"""

from __future__ import annotations

import pytest

from repro.bench import measure_latencies, print_series
from repro.errors import ExecutionError
from repro.workloads.glq import (GLQConfig, GridGLQEngine, SparkGLQEngine,
                                 generate_points, route_for_n)

RADIUS = 0.08


@pytest.fixture(scope="module")
def glq_engines():
    points = list(generate_points(GLQConfig(points=60_000, centres=6,
                                            spread=0.8)))
    grid = GridGLQEngine(cell=0.05)
    spark = SparkGLQEngine()
    for point in points:
        grid.insert(point)
        spark.insert(point)
    return grid, spark, points


@pytest.mark.benchmark(group="fig9")
def test_fig9_glq(benchmark, glq_engines):
    grid, spark, points = glq_engines
    ns = [7, 8, 9, 10]
    routes = {n: [points[i * 37] for i in range(route_for_n(n))]
              for n in ns}

    # Correctness first: both engines answer the route identically.
    left = grid.route_query(routes[8], RADIUS)
    right = spark.route_query(routes[8], RADIUS)
    assert left.densest_cell_count == right.densest_cell_count
    assert [w.count for w in left.waypoints] \
        == [w.count for w in right.waypoints]

    grid_ms = []
    spark_ms = []
    for n in ns:
        route = routes[n]
        grid_ms.append(measure_latencies(
            lambda _i, route=route: grid.route_query(route, RADIUS),
            range(6), warmup=1).mean)
        spark_ms.append(measure_latencies(
            lambda _i, route=route: spark.route_query(route, RADIUS),
            range(4), warmup=1).mean)
    speedups = [s / g for g, s in zip(grid_ms, spark_ms)]
    print_series("Figure 9: GLQ route query latency (ms)", "N", ns, {
        "openmldb": grid_ms, "spark": spark_ms, "speedup": speedups})

    # Shape: widening gap, substantial at N=10, OpenMLDB nearly flat.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 5
    assert grid_ms[-1] < grid_ms[0] * 4  # flat-ish vs 8× more waypoints

    # Spark cannot materialise a full-table query; the grid engine can.
    constrained = SparkGLQEngine(memory_limit_rows=10_000)
    for point in points:
        constrained.insert(point)
    with pytest.raises(ExecutionError, match="OOM"):
        constrained.query(points[0], radius=1e9)
    assert grid.query(points[0], radius=1e9).count == len(points)

    benchmark.extra_info["speedups"] = [round(s, 2) for s in speedups]
    benchmark.pedantic(grid.route_query, args=(routes[10], RADIUS),
                       rounds=5, iterations=1)
