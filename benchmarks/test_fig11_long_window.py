"""Figure 11 — long-window deployment option end to end.

Paper shape: on an 860 K-tuple stream (scaled down here), adding
``OPTIONS(long_windows="w1:1d")`` to the deployment cuts request latency
~45× (300 ms → 6 ms) at the cost of slightly higher data-loading
(backfill) overhead.  We deploy the same script twice — with and without
the option — on the same data and compare request latency.
"""

from __future__ import annotations

import pytest

from repro import OpenMLDB
from repro.bench import measure_latencies, print_table

HOUR = 3_600_000
ROWS = 86_000  # paper: 860,000; scaled 10× down for the Python substrate

SQL = ("SELECT sym, sum(px) OVER w1 AS total, count(px) OVER w1 AS n, "
       "max(px) OVER w1 AS high FROM trades WINDOW w1 AS "
       "(PARTITION BY sym ORDER BY ts "
       "ROWS_RANGE BETWEEN 2000d PRECEDING AND CURRENT ROW)")


@pytest.fixture(scope="module")
def loaded_db():
    db = OpenMLDB()
    db.execute("CREATE TABLE trades (sym string, ts timestamp, px double, "
               "INDEX(KEY=sym, TS=ts))")
    # ~10 years of hourly ticks on one hot symbol.
    for index in range(ROWS):
        db.insert("trades", ("AAPL", index * HOUR,
                             float(100 + index % 50)))
    return db


@pytest.mark.benchmark(group="fig11")
def test_fig11_long_window_option(benchmark, loaded_db):
    db = loaded_db
    db.deploy("no_lw", SQL)
    deployment = db.deploy("with_lw", SQL, long_windows="w1:1d")
    db.flush_preagg()

    requests = [("AAPL", (ROWS + i) * HOUR, 123.0) for i in range(25)]

    raw = measure_latencies(lambda row: db.request_row("no_lw", row),
                            requests, warmup=2)
    fast = measure_latencies(lambda row: db.request_row("with_lw", row),
                             requests, warmup=2)

    # Identical features from both deployments.
    raw_row = db.request_row("no_lw", requests[0])
    fast_row = db.request_row("with_lw", requests[0])
    assert raw_row[0] == fast_row[0]
    for left, right in zip(raw_row[1:], fast_row[1:]):
        assert left == pytest.approx(right)

    reduction = raw.mean / fast.mean
    print_table("Figure 11: long-window deployment option",
                ["deployment", "mean ms", "TP99 ms"],
                [["without long_windows", raw.mean, raw.tp99],
                 ["with long_windows=w1:1d", fast.mean, fast.tp99],
                 ["reduction", f"{reduction:.1f}x", ""]])
    print(f"  backfill overhead: {deployment.backfill_seconds:.3f}s "
          f"for {ROWS} rows")

    # Paper: 45×; we assert a large reduction and a bounded backfill.
    assert reduction > 10
    assert deployment.backfill_seconds < 60

    benchmark.pedantic(db.request_row, args=("with_lw", requests[0]),
                       rounds=20, iterations=2)
