"""Tests for the FEBench-inspired workload."""

import pytest

from repro import OpenMLDB, verify_consistency
from repro.workloads.febench import (FEBenchConfig, TRIP_INDEX,
                                     TRIP_SCHEMA, feature_sql,
                                     generate_trips)


@pytest.fixture(scope="module")
def loaded_db():
    db = OpenMLDB()
    db.create_table("trips", TRIP_SCHEMA, indexes=[TRIP_INDEX])
    db.insert_many("trips", list(generate_trips(
        FEBenchConfig(drivers=10, trips=600))))
    db.deploy("d", feature_sql())
    return db


class TestGenerator:
    def test_deterministic(self):
        config = FEBenchConfig(trips=50)
        assert list(generate_trips(config)) \
            == list(generate_trips(config))

    def test_time_ordered_and_positive(self):
        rows = list(generate_trips(FEBenchConfig(trips=200)))
        stamps = [row[1] for row in rows]
        assert stamps == sorted(stamps)
        assert all(row[2] > 0 and row[3] > 0 for row in rows)

    def test_schema_matches(self):
        row = next(generate_trips(FEBenchConfig(trips=1)))
        TRIP_SCHEMA.validate_row(row)


class TestFeatureScript:
    def test_four_windows(self, loaded_db):
        deployment = loaded_db.deployments["d"]
        assert len(deployment.compiled.windows) == 4

    def test_request_shape(self, loaded_db):
        features = loaded_db.request(
            "d", ("d0003", 1_690_000_000_000, 12.0, 3.0, "campus", 1.0))
        assert features["trips_1h"] >= 1
        assert features["best_fare_7d"] >= 12.0
        assert isinstance(features["top_zones_30d"], str)

    def test_online_offline_consistent(self, loaded_db):
        report = verify_consistency(loaded_db, "d")
        assert report.consistent, report.mismatches[:3]

    def test_offline_uses_parallel_windows(self, loaded_db):
        _rows, stats = loaded_db.offline_query(feature_sql())
        assert stats.used_parallel_windows
        assert len(stats.window_seconds) == 4
