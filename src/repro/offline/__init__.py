"""Offline batch execution engine (paper Section 6)."""

from .engine import OfflineEngine, OfflineStats
from .hyperloglog import HyperLogLog
from .partial import (PartialAggregate, WindowKernel, WindowPartialState,
                      has_partial, make_partial)
from .pool import ProcessPoolUnavailable, WindowProcessPool, WindowTaskSpec
from .scheduling import lpt_makespan, worker_loads
from .shuffle import ExternalSorter, SpillConfig
from .skew import PartitionTask, SkewConfig, SkewResolver, TaggedRow

__all__ = [
    "OfflineEngine", "OfflineStats", "HyperLogLog", "SkewConfig",
    "SkewResolver", "PartitionTask", "TaggedRow", "lpt_makespan",
    "worker_loads", "PartialAggregate", "WindowKernel",
    "WindowPartialState", "has_partial", "make_partial",
    "ProcessPoolUnavailable", "WindowProcessPool", "WindowTaskSpec",
    "ExternalSorter", "SpillConfig",
]
