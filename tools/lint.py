#!/usr/bin/env python
"""Stdlib fallback linter for `make lint` when ruff is unavailable.

The repo is dependency-free at runtime and the dev image may not ship
ruff; this keeps the lint gate meaningful everywhere.  It covers the
subset of the configured ruff rules that an ``ast`` walk can check
reliably:

* **F401** — imported name never used (skipped in ``__init__.py``,
  where re-exports are the point; ``__all__`` members and
  ``import x as x`` re-export forms count as used).
* **E722** — bare ``except:``.
* **E711/E712** — comparison to ``None`` / ``True`` / ``False`` with
  ``==`` or ``!=``.
* **B006** — mutable default argument (a literal ``[]`` / ``{}`` /
  ``set()`` / comprehension, or a ``list()``/``dict()``/``set()`` call,
  as a parameter default — shared across calls, a classic footgun).
* **PERF001** — ``lambda`` allocated inside a loop of a hot-path
  function (name contains ``fold``/``compute``/``kernel``).  The fused
  fold kernels exist to keep per-row work allocation-free; a lambda in
  the loop body re-creates a closure object per iteration.  Compile-time
  lambdas (built once, outside any loop — e.g. in ``_compile_binding``)
  are fine and not flagged.
* **THR001** — a class under ``src/`` constructs a
  ``threading.Thread(daemon=True)`` but has no paired lifecycle: a
  ``close``/``stop``/``shutdown``/``drain`` method that ``join()``\\ s
  the worker.  Daemon threads die silently at interpreter exit; without
  an explicit drain, work queued to them (e.g. binlog closures) is
  abandoned.  Tests and benchmarks may spawn throwaway threads, so the
  rule is scoped to library code.
* **AGG001** — an aggregate registered in
  ``src/repro/sql/functions.py`` (listed in ``_AGGREGATE_CLASSES``)
  that neither defines/inherits a real ``merge`` method nor has a
  wrapper partial registered under its ``name`` in
  ``_PARTIAL_WRAPPERS`` (``src/repro/offline/partial.py``).  Every
  aggregate needs *some* merge route or the offline engine's
  map-reduce split silently loses it to expanded-row replay forever;
  the rule makes adding an aggregate without deciding its merge story
  a lint failure.  Like DOC001 it is repo-level and runs in both
  ``make lint`` branches.
* **DOC001** — a dotted ``repro.*`` reference in the prose docs
  (``README.md``, ``docs/*.md``) that no longer resolves to a module
  or attribute.  ``make verify-docs`` executes the fenced code, but
  prose mentions (``the catalog lives in `repro.obs.metrics```) rot
  silently when a module is renamed; this rule imports each reference
  and getattr-walks the remainder.  Runs in *both* ``make lint``
  branches (with ruff, via ``tools/lint.py --docs``).

Usage: ``python tools/lint.py PATH [PATH ...]`` — paths are files or
directories (searched recursively for ``*.py``); markdown files and
the DOC001 sweep are included automatically when a given directory
contains them.  ``python tools/lint.py --docs`` runs only the
repo-level sweeps (DOC001 over the prose docs, AGG001 over the
aggregate registry).  Exits non-zero when findings exist,
printing ``path:line:col CODE message`` per finding.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Optional, Set, Tuple

Finding = Tuple[str, int, int, str, str]


def iter_python_files(paths: List[str]) -> Iterator[pathlib.Path]:
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


class _NameCollector(ast.NodeVisitor):
    """Collects every identifier *referenced* (not bound by an import)."""

    def __init__(self) -> None:
        self.used: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        pass  # binding, not a use

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pass

    def visit_Name(self, node: ast.Name) -> None:
        self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # `os.path.join` uses the root name `os`.
        self.generic_visit(node)


def _exported_names(tree: ast.Module) -> Set[str]:
    """Names listed in a module-level ``__all__`` literal."""
    exported: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) \
                            and isinstance(element.value, str):
                        exported.add(element.value)
    return exported


def _is_type_checking_guard(node: ast.stmt) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` blocks hold
    imports used only in annotations — not runtime-unused."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) \
        and test.attr == "TYPE_CHECKING"


def check_unused_imports(path: pathlib.Path,
                         tree: ast.Module) -> Iterator[Finding]:
    if path.name == "__init__.py":
        return  # re-export modules: unused-looking imports are the API
    collector = _NameCollector()
    collector.visit(tree)
    exported = _exported_names(tree)
    guarded: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if _is_type_checking_guard(node):
            for child in ast.walk(node):
                guarded.add(child)
    for node in ast.walk(tree):
        if node in guarded:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound not in collector.used and bound not in exported:
                    yield (str(path), node.lineno, node.col_offset + 1,
                           "F401", f"{alias.name!r} imported but unused")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue  # explicit re-export form
                bound = alias.asname or alias.name
                if bound not in collector.used and bound not in exported:
                    yield (str(path), node.lineno, node.col_offset + 1,
                           "F401", f"{alias.name!r} imported but unused")


def check_bare_except(path: pathlib.Path,
                      tree: ast.Module) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield (str(path), node.lineno, node.col_offset + 1,
                   "E722", "do not use bare 'except'")


_SINGLETONS = {None: "None", True: "True", False: "False"}


def check_singleton_compare(path: pathlib.Path,
                            tree: ast.Module) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        for op, comparand in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (node.left, comparand):
                if isinstance(side, ast.Constant) \
                        and side.value is None:
                    yield (str(path), node.lineno, node.col_offset + 1,
                           "E711", "comparison to None should be "
                           "'is None' / 'is not None'")
                    break
                if isinstance(side, ast.Constant) \
                        and side.value in (True, False) \
                        and isinstance(side.value, bool):
                    yield (str(path), node.lineno, node.col_offset + 1,
                           "E712", f"comparison to {side.value} should "
                           "use 'is' or a truth test")
                    break


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def check_mutable_defaults(path: pathlib.Path,
                           tree: ast.Module) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                yield (str(path), default.lineno,
                       default.col_offset + 1, "B006",
                       "do not use mutable data structures for "
                       "argument defaults")


_HOT_NAME_TAGS = ("fold", "compute", "kernel")


def check_loop_lambda_alloc(path: pathlib.Path,
                            tree: ast.Module) -> Iterator[Finding]:
    """PERF001 — per-iteration closure allocation in a fold kernel.

    Only loop *bodies* inside functions whose name marks them as
    hot-path (fold/compute/kernel) are scanned, so the compiler's
    build-once lambdas (allocated at deploy time, not per row) never
    trip the rule.
    """
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        name = func.name.lower()
        if not any(tag in name for tag in _HOT_NAME_TAGS):
            continue
        for loop in ast.walk(func):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if isinstance(node, ast.Lambda):
                    yield (str(path), node.lineno, node.col_offset + 1,
                           "PERF001",
                           f"lambda allocated inside a loop of hot-path "
                           f"function {func.name!r}; hoist the closure "
                           "out of the per-row loop")


_CLOSER_NAMES = {"close", "stop", "shutdown", "drain"}


def _is_daemon_thread_call(node: ast.Call) -> bool:
    func = node.func
    is_thread = (isinstance(func, ast.Attribute) and func.attr == "Thread") \
        or (isinstance(func, ast.Name) and func.id == "Thread")
    if not is_thread:
        return False
    return any(keyword.arg == "daemon"
               and isinstance(keyword.value, ast.Constant)
               and keyword.value.value is True
               for keyword in node.keywords)


def check_daemon_thread_lifecycle(path: pathlib.Path,
                                  tree: ast.Module) -> Iterator[Finding]:
    """THR001 — daemon thread with no close()/join() pairing (src only).

    A class that spawns a ``threading.Thread(daemon=True)`` must also
    define a ``close``/``stop``/``shutdown``/``drain`` method and
    ``join()`` the worker somewhere, or queued work silently dies with
    the interpreter.
    """
    if "src" not in path.parts:
        return
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        spawn: Optional[ast.Call] = None
        has_join = False
        for node in ast.walk(klass):
            if not isinstance(node, ast.Call):
                continue
            if spawn is None and _is_daemon_thread_call(node):
                spawn = node
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join":
                has_join = True
        has_closer = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _CLOSER_NAMES
            for stmt in klass.body)
        if spawn is not None and not (has_join and has_closer):
            yield (str(path), spawn.lineno, spawn.col_offset + 1,
                   "THR001",
                   f"class {klass.name!r} spawns a daemon thread but has "
                   "no close()/stop() method that join()s it")


import importlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# A dotted repro.* path in prose or code: `repro.netserve.NetClient`,
# `repro.sql`, ...  Stops before `(` / `-` / whitespace by construction.
_DOC_REFERENCE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def _resolve_reference(reference: str) -> Optional[str]:
    """Return an error string if ``reference`` does not resolve.

    Tries the longest importable module prefix, then getattr-walks the
    remaining parts (classes, functions, constants).
    """
    parts = reference.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        except Exception as exc:  # import-time crash is also a finding
            return f"importing {module_name!r} raised {exc!r}"
        for attr in parts[cut:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                return (f"{module_name!r} has no attribute "
                        f"{'.'.join(parts[cut:])!r}")
        return None
    return f"no importable prefix of {reference!r}"


def doc_files(root: pathlib.Path = REPO_ROOT) -> List[pathlib.Path]:
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_doc_references(
        root: pathlib.Path = REPO_ROOT) -> Iterator[Finding]:
    """DOC001 — every ``repro.*`` mention in the prose docs resolves."""
    src = root / "src"
    if src.exists() and str(src) not in sys.path:
        sys.path.insert(0, str(src))
    checked: dict = {}
    for doc in doc_files(root):
        for lineno, line in enumerate(
                doc.read_text(encoding="utf-8").splitlines(), start=1):
            for match in _DOC_REFERENCE.finditer(line):
                reference = match.group(0)
                if reference not in checked:
                    checked[reference] = _resolve_reference(reference)
                error = checked[reference]
                if error is not None:
                    yield (str(doc.relative_to(root)), lineno,
                           match.start() + 1, "DOC001",
                           f"doc reference {reference!r} does not "
                           f"resolve: {error}")


_FUNCTIONS_PY = pathlib.Path("src/repro/sql/functions.py")
_PARTIAL_PY = pathlib.Path("src/repro/offline/partial.py")


def _registered_aggregate_classes(tree: ast.Module) -> Set[str]:
    """Class names inside the ``_AGGREGATE_CLASSES`` registry literal."""
    registered: Set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name)
                        and t.id == "_AGGREGATE_CLASSES"
                        for t in node.targets)):
            continue
        # ``{cls.name: cls for cls in (A, B, ...)}`` — read the tuple.
        for name_node in ast.walk(node.value):
            if isinstance(name_node, ast.Name) \
                    and name_node.id.endswith("Agg"):
                registered.add(name_node.id)
    return registered


def _wrapper_partial_names(root: pathlib.Path) -> Set[str]:
    """String keys of ``_PARTIAL_WRAPPERS`` in the partials module."""
    path = root / _PARTIAL_PY
    if not path.exists():
        return set()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):  # `X: Dict[...] = {...}`
            targets = [node.target]
        else:
            continue
        if any(isinstance(t, ast.Name) and t.id == "_PARTIAL_WRAPPERS"
               for t in targets) \
                and isinstance(node.value, ast.Dict):
            return {key.value for key in node.value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)}
    return set()


def check_aggregate_merge_coverage(
        root: pathlib.Path = REPO_ROOT) -> Iterator[Finding]:
    """AGG001 — every registered aggregate has a merge route.

    Either the class (or an in-file ancestor other than the abstract
    ``AggregateFunction`` base, whose ``merge`` raises) defines
    ``merge``, or a wrapper partial is registered under the aggregate's
    ``name`` in ``_PARTIAL_WRAPPERS``.
    """
    path = root / _FUNCTIONS_PY
    if not path.exists():
        return
    tree = ast.parse(path.read_text(encoding="utf-8"),
                     filename=str(path))
    classes = {node.name: node for node in ast.walk(tree)
               if isinstance(node, ast.ClassDef)}

    def own_merge(klass: ast.ClassDef) -> bool:
        return any(isinstance(stmt, ast.FunctionDef)
                   and stmt.name == "merge" for stmt in klass.body)

    def class_attr(klass: ast.ClassDef, attr: str) -> Optional[str]:
        for stmt in klass.body:
            if isinstance(stmt, ast.Assign) \
                    and any(isinstance(t, ast.Name) and t.id == attr
                            for t in stmt.targets) \
                    and isinstance(stmt.value, ast.Constant):
                value = stmt.value.value
                return value if isinstance(value, str) else None
        return None

    def resolve(klass: ast.ClassDef, getter) -> Optional[str]:
        """Walk in-file bases (excluding the abstract root) for a hit."""
        queue, seen = [klass], set()
        while queue:
            node = queue.pop(0)
            if node.name in seen:
                continue
            seen.add(node.name)
            hit = getter(node)
            if hit:
                return hit
            for base in node.bases:
                if isinstance(base, ast.Name) \
                        and base.id in classes \
                        and base.id != "AggregateFunction":
                    queue.append(classes[base.id])
        return None

    wrappers = _wrapper_partial_names(root)
    for class_name in sorted(_registered_aggregate_classes(tree)):
        klass = classes.get(class_name)
        if klass is None:
            continue
        if resolve(klass, lambda k: "x" if own_merge(k) else None):
            continue
        agg_name = resolve(klass, lambda k: class_attr(k, "name"))
        if agg_name in wrappers:
            continue
        yield (str(path.relative_to(root)), klass.lineno,
               klass.col_offset + 1, "AGG001",
               f"aggregate {agg_name or class_name!r} is registered "
               "without a merge route: define merge() or add a wrapper "
               "partial to _PARTIAL_WRAPPERS "
               "(src/repro/offline/partial.py)")


def lint(paths: List[str]) -> List[Finding]:
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError as exc:
            findings.append((str(path), exc.lineno or 0, exc.offset or 0,
                             "E999", f"syntax error: {exc.msg}"))
            continue
        for checker in (check_unused_imports, check_bare_except,
                        check_singleton_compare, check_mutable_defaults,
                        check_loop_lambda_alloc,
                        check_daemon_thread_lifecycle):
            findings.extend(checker(path, tree))
    return findings


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: lint.py [--docs] PATH [PATH ...]", file=sys.stderr)
        return 2
    docs_only = "--docs" in argv
    paths = [arg for arg in argv if arg != "--docs"]
    findings: List[Finding] = [] if docs_only else sorted(lint(paths))
    findings.extend(sorted(check_doc_references()))
    findings.extend(sorted(check_aggregate_merge_coverage()))
    for path, line, col, code, message in findings:
        print(f"{path}:{line}:{col} {code} {message}")
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
