"""The OpenMLDB session facade: tables, SQL, deployments, execution modes.

:class:`OpenMLDB` ties every subsystem together the way the paper's
architecture diagram (Figure 2) does:

* DDL/DML — ``CREATE TABLE`` (with stream indexes + TTL), ``INSERT``;
* the **unified plan generator** — one parser/planner/compiler (with the
  compilation cache) feeding both engines;
* **online request mode** — ``deploy()`` then ``request()``, with optional
  long-window pre-aggregation maintained through the binlog replicator;
* **offline mode** — ``offline_query()`` batch execution with
  multi-window parallelism and skew resolving;
* **online preview mode** — ``preview()`` with complexity constraints and
  a result cache;
* memory governance — an optional per-database
  :class:`~repro.memory.governor.MemoryGovernor` making writes fail (but
  not reads) past ``max_memory_mb``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from ..errors import (DeploymentError, DeploymentNotFoundError, ParseError,
                      PlanError, SchemaError, StorageError,
                      TableExistsError, TableNotFoundError)
from ..schema import Column, IndexDef, Row, Schema, TTLKind, TTLSpec
from ..sql import ast
from ..sql.compiler import CompilationCache
from ..sql.parser import parse
from ..sql.planner import build_plan
from ..storage.disk import DiskTable
from ..storage.encoding import RowCodec
from ..storage.memtable import MemTable
from ..storage.persist import FileBinlog, RecoveryReport, SnapshotStore
from ..online.binlog import BinlogEntry, Replicator
from ..online.engine import OnlineEngine
from ..offline.engine import OfflineEngine, OfflineStats
from ..offline.shuffle import SpillConfig
from ..offline.skew import SkewConfig
from ..memory.governor import MemoryGovernor
from ..obs import NULL_OBS, Observability
from ..types import ColumnType
from .deployment import Deployment
from .modes import PreviewConstraints

__all__ = ["OpenMLDB"]

_INTERVAL_UNITS_MS = {"s": 1_000, "m": 60_000, "h": 3_600_000,
                      "d": 86_400_000}


class OpenMLDB:
    """An embedded OpenMLDB instance.

    Args:
        offline_workers: simulated cluster width for batch execution.
        max_memory_mb: optional write limit (Section 8.2 isolation).
        seed: storage-structure RNG seed, for reproducible layouts.
        observability: collect metrics and per-request trace spans
            (see :mod:`repro.obs`).  Off by default — the disabled
            path adds nothing measurable to the request path.
        data_dir: root directory for durability.  When set, inserts
            write through a file-backed binlog, :meth:`snapshot` pins
            table images, and a fresh instance over the same directory
            rebuilds everything — tables, pre-aggregation buckets,
            incremental window state — via :meth:`recover`.
        snapshot_retain: snapshot images kept per table before pruning.
    """

    def __init__(self, offline_workers: int = 8,
                 max_memory_mb: Optional[int] = None,
                 seed: int = 0, observability: bool = False,
                 data_dir: Optional[str] = None,
                 snapshot_retain: int = 2) -> None:
        self.obs = Observability(enabled=True) if observability \
            else NULL_OBS
        self.tables: Dict[str, Union[MemTable, DiskTable]] = {}
        self.replicator = Replicator()
        self.data_dir = data_dir
        self._snapshots: Optional[SnapshotStore] = None
        self._recovering = False
        if data_dir is not None:
            # Durability (Section 5 / 7.3): every insert's binlog entry
            # is written through to a segmented file WAL; snapshot()
            # pins table images; recover() rebuilds a fresh instance
            # from snapshot + binlog tail.
            self.replicator.attach_wal(FileBinlog(
                os.path.join(data_dir, "binlog"), obs=self.obs))
            self._snapshots = SnapshotStore(
                os.path.join(data_dir, "snapshots"),
                retain=snapshot_retain, obs=self.obs)
        self.compile_cache = CompilationCache(obs=self.obs)
        self.deployments: Dict[str, Deployment] = {}
        self.online_engine = OnlineEngine(self.tables, obs=self.obs)
        self.offline_engine = OfflineEngine(self.tables,
                                            workers=offline_workers,
                                            obs=self.obs)
        self.governor = MemoryGovernor("db", max_memory_mb=max_memory_mb)
        self._updaters: Dict[str, List[Callable]] = {}
        self._preview_cache: Dict[Tuple[str, int], List[Row]] = {}
        self._seed = seed
        self._lock = threading.Lock()
        if observability:
            self._h_request = self.obs.registry.histogram(
                "online.request.ms")

    # ------------------------------------------------------------------
    # catalog / DDL

    def create_table(self, name: str, schema: Schema,
                     indexes: Optional[Sequence[IndexDef]] = None,
                     storage: str = "memory", replicas: int = 1,
                     flush_threshold: int = 4096
                     ) -> Union[MemTable, DiskTable]:
        """Create a table with stream indexes.

        With no explicit index, a default one is derived: the first
        string/int column as key, the first timestamp column as ts —
        mirroring OpenMLDB's automatic index creation.
        """
        if name in self.tables:
            raise TableExistsError(name)
        if indexes is None:
            indexes = [self._default_index(schema)]
        if storage == "memory":
            table: Union[MemTable, DiskTable] = MemTable(
                name, schema, indexes, replicas=replicas, seed=self._seed,
                obs=self.obs)
        elif storage == "disk":
            table = DiskTable(name, schema, indexes, replicas=replicas,
                              flush_threshold=flush_threshold,
                              seed=self._seed, obs=self.obs)
        else:
            raise SchemaError(f"unknown storage engine {storage!r}")
        self.tables[name] = table
        if self.data_dir is not None:
            self.replicator.register_codec(name, RowCodec(schema))
            if isinstance(table, DiskTable):
                table.attach_event_log(self._storage_event_sink(name))
        return table

    def _storage_event_sink(self, table_name: str) -> Callable[[str], None]:
        """WAL control-frame sink for explicit LSM flush/compact events.

        Suppressed while :meth:`recover` replays those very events —
        re-applying a flush must not re-log it.
        """
        def sink(text: str) -> None:
            if not self._recovering:
                self.replicator.log_control(table_name, text)
        return sink

    @staticmethod
    def _default_index(schema: Schema) -> IndexDef:
        key_column: Optional[str] = None
        ts_column: Optional[str] = None
        for column in schema:
            if key_column is None and column.type in (
                    ColumnType.STRING, ColumnType.INT, ColumnType.BIGINT):
                key_column = column.name
            if ts_column is None and column.type is ColumnType.TIMESTAMP:
                ts_column = column.name
        if key_column is None or ts_column is None:
            raise SchemaError(
                "cannot derive a default index: need a key-typed column "
                "and a timestamp column, or pass indexes= explicitly")
        return IndexDef(key_columns=(key_column,), ts_column=ts_column)

    def table(self, name: str) -> Union[MemTable, DiskTable]:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def catalog(self) -> Dict[str, Schema]:
        return {name: table.schema for name, table in self.tables.items()}

    # ------------------------------------------------------------------
    # DML

    def insert(self, table_name: str, row: Sequence[Any]) -> int:
        """Insert one row: storage, memory accounting, binlog, updaters."""
        table = self.table(table_name)
        validated = table.schema.validate_row(row)
        self.governor.charge(table.codec.encoded_size(validated)
                             if isinstance(table, MemTable)
                             else _approx_row_bytes(validated))
        offset = table.insert(validated)
        updaters = self._updaters.get(table_name)
        closure = None
        if updaters:
            def closure(entry, fns=tuple(updaters)):
                for fn in fns:
                    fn(entry)
        self.replicator.append_entry(table_name, validated, closure=closure)
        return offset

    def insert_many(self, table_name: str,
                    rows: Sequence[Sequence[Any]]) -> int:
        for row in rows:
            self.insert(table_name, row)
        return len(rows)

    def _register_updater(self, table_name: str,
                          update_closure: Callable) -> None:
        self._updaters.setdefault(table_name, []).append(update_closure)

    # ------------------------------------------------------------------
    # unified SQL entry point

    def execute(self, sql: str) -> Any:
        """Execute one SQL statement (offline-mode semantics for SELECT).

        Returns:
            ``CREATE TABLE`` → the table; ``INSERT`` → rows inserted;
            ``SELECT`` → list of feature rows; ``DEPLOY`` → the Deployment.
        """
        statement = parse(sql)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create(statement)
        if isinstance(statement, ast.InsertStatement):
            return self.insert_many(statement.table, statement.rows)
        if isinstance(statement, ast.SelectStatement):
            rows, _stats = self.offline_query_statement(statement)
            return rows
        if isinstance(statement, ast.DeployStatement):
            return self._execute_deploy(statement, sql)
        raise ParseError(f"unsupported statement: {type(statement).__name__}")

    def _execute_create(self, statement: ast.CreateTableStatement):
        columns = [Column(c.name, ColumnType.from_sql_name(c.type_name),
                          nullable=c.nullable)
                   for c in statement.columns]
        schema = Schema(columns)
        indexes = [self._index_from_clause(clause)
                   for clause in statement.indexes] or None
        return self.create_table(statement.name, schema, indexes=indexes)

    @staticmethod
    def _index_from_clause(clause: ast.IndexClause) -> IndexDef:
        ttl = TTLSpec()
        if clause.ttl_value is not None:
            kind = TTLKind(clause.ttl_type.lower()) if clause.ttl_type \
                else TTLKind.ABSOLUTE
            text = clause.ttl_value.strip()
            abs_ms = 0
            lat = 0
            if text and text[-1].lower() in _INTERVAL_UNITS_MS:
                try:
                    count = int(text[:-1])
                except ValueError:
                    raise SchemaError(
                        f"malformed TTL value {text!r}; expected "
                        "'<n><s|m|h|d>' or a bare number") from None
                if count < 0:
                    raise SchemaError(
                        f"TTL value {text!r} must not be negative")
                abs_ms = count * _INTERVAL_UNITS_MS[text[-1].lower()]
            elif text.isdigit():
                value = int(text)
                if kind in (TTLKind.LATEST,):
                    lat = value
                else:
                    abs_ms = value * 60_000  # bare numbers are minutes
            else:
                raise SchemaError(
                    f"malformed TTL value {text!r}; expected "
                    "'<n><s|m|h|d>' or a bare number")
            ttl = TTLSpec(kind=kind, abs_ttl_ms=abs_ms, lat_ttl=lat)
        return IndexDef(key_columns=clause.key_columns,
                        ts_column=clause.ts_column, ttl=ttl)

    # ------------------------------------------------------------------
    # deployments / online request mode

    def deploy(self, name: str, sql: str,
               long_windows: Optional[str] = None,
               preagg_levels: int = 2,
               adaptive: bool = False,
               router_config: Optional[Any] = None) -> Deployment:
        """Compile and deploy a feature script for online serving.

        ``long_windows`` takes the same string as the SQL OPTIONS form,
        e.g. ``"w1:1d"`` (Figure 11).

        ``adaptive=True`` replaces the deploy-time eligibility rules
        with a live-metrics :class:`~repro.adaptive.ExecutionRouter`:
        incremental state starts empty and is provisioned per key as
        traffic justifies it (within the governor's memory budget), and
        pre-aggregation bucket widths follow the observed span
        distribution.  ``router_config`` takes a
        :class:`~repro.adaptive.RouterConfig` override.
        """
        statement = parse(sql)
        if isinstance(statement, ast.DeployStatement):
            deploy_statement = statement
            if long_windows is not None:
                options = tuple(statement.options) + (
                    ("long_windows", long_windows),)
                deploy_statement = ast.DeployStatement(
                    name=statement.name, select=statement.select,
                    options=options)
        elif isinstance(statement, ast.SelectStatement):
            options = (("long_windows", long_windows),) if long_windows \
                else ()
            deploy_statement = ast.DeployStatement(
                name=name, select=statement, options=options)
        else:
            raise DeploymentError("deploy() expects a SELECT or DEPLOY")
        return self._execute_deploy(deploy_statement, sql,
                                    adaptive=adaptive,
                                    router_config=router_config)

    def _execute_deploy(self, statement: ast.DeployStatement,
                        sql: str, adaptive: bool = False,
                        router_config: Optional[Any] = None
                        ) -> Deployment:
        if statement.name in self.deployments:
            raise DeploymentError(
                f"deployment {statement.name!r} already exists")
        compiled = self.compile_cache.get_or_compile(
            statement.select, self.catalog())
        # Section 4.2's index optimisation: reject at deploy time any
        # window/join the declared indexes cannot serve.
        from ..sql.optimizer import index_access_paths
        index_access_paths(compiled.plan, {
            name: list(table.indexes)
            for name, table in self.tables.items()})
        deployment = Deployment.from_statement(statement, sql, compiled)
        deployment.initialize_preagg(self.tables, self._register_updater,
                                     obs=self.obs)
        if adaptive:
            deployment.initialize_adaptive(
                self.tables, self._register_updater,
                governor=self.governor, obs=self.obs,
                config=router_config)
        else:
            deployment.initialize_incremental(self.tables,
                                              self._register_updater)
        self.deployments[statement.name] = deployment
        return deployment

    def undeploy(self, name: str) -> None:
        if name not in self.deployments:
            raise DeploymentNotFoundError(name)
        del self.deployments[name]

    def request(self, deployment_name: str,
                row: Sequence[Any]) -> Dict[str, Any]:
        """Online request mode: one tuple in, one feature dict out."""
        return dict(zip(self._deployment(deployment_name)
                        .compiled.output_names,
                        self.request_row(deployment_name, row)))

    def describe_deployment(self, name: str) -> "DeploymentDescriptor":
        """Introspect a deployment for a serving frontend.

        Returns the request-tuple schema (the primary table's) and the
        feature column names — what a network frontend needs to coerce
        wire parameters and describe result sets before executing.
        """
        from ..serving.describe import DeploymentDescriptor
        compiled = self._deployment(name).compiled
        table = self.tables[compiled.plan.table]
        return DeploymentDescriptor(
            name=name, table=compiled.plan.table,
            input_schema=table.schema,
            output_names=tuple(compiled.output_names))

    def request_row(self, deployment_name: str,
                    row: Sequence[Any]) -> Row:
        """Like :meth:`request`, returning the raw feature tuple."""
        deployment = self._deployment(deployment_name)
        preagg = deployment.preaggs if deployment.uses_preagg else None
        incremental = (deployment.incrementals
                       if deployment.uses_incremental else None)
        router = deployment.router
        if not self.obs.enabled:
            return self.online_engine.execute_request(
                deployment.compiled, row, preagg=preagg,
                incremental=incremental, router=router)
        start = time.perf_counter()
        with self.obs.tracer.span("deployment.execute",
                                  deployment=deployment_name):
            features = self.online_engine.execute_request(
                deployment.compiled, row, preagg=preagg,
                incremental=incremental, router=router)
        self._h_request.observe((time.perf_counter() - start) * 1_000)
        return features

    def _deployment(self, name: str) -> Deployment:
        try:
            return self.deployments[name]
        except KeyError:
            raise DeploymentNotFoundError(name) from None

    def flush_preagg(self, timeout: float = 10.0) -> None:
        """Drain asynchronous aggregator updates (determinism for tests)."""
        self.replicator.wait_idle(timeout=timeout)
        self.replicator.check()

    def explain(self, sql: str, optimized: bool = True) -> str:
        """EXPLAIN: render the operator tree for a SELECT.

        With ``optimized=True`` the multi-window parallel rewrite
        (Section 6.1) is applied, showing the ConcatJoin/SimpleProject
        segment the offline engine exploits.
        """
        from ..sql.optimizer import explain_optimized
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ParseError("explain expects a SELECT")
        plan = build_plan(statement, self.catalog())
        return explain_optimized(plan) if optimized else plan.explain()

    # ------------------------------------------------------------------
    # offline mode

    def offline_query(self, sql: str, parallel_windows: bool = True,
                      skew: Optional[SkewConfig] = None,
                      mode: Optional[str] = None,
                      spill: Optional[SpillConfig] = None
                      ) -> Tuple[List[Row], OfflineStats]:
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ParseError("offline_query expects a SELECT")
        return self.offline_query_statement(
            statement, parallel_windows=parallel_windows, skew=skew,
            mode=mode, spill=spill)

    def offline_query_statement(self, statement: ast.SelectStatement,
                                parallel_windows: bool = True,
                                skew: Optional[SkewConfig] = None,
                                mode: Optional[str] = None,
                                spill: Optional[SpillConfig] = None
                                ) -> Tuple[List[Row], OfflineStats]:
        compiled = self.compile_cache.get_or_compile(
            statement, self.catalog())
        return self.offline_engine.execute(
            compiled, parallel_windows=parallel_windows, skew=skew,
            mode=mode, spill=spill)

    # ------------------------------------------------------------------
    # online preview mode

    def preview(self, sql: str, limit: int = 10) -> List[Row]:
        """Online preview: limited batch run with complexity constraints.

        Results are served from a cache keyed on (sql, limit) — the
        paper's "retrieves results from a data cache".
        """
        if limit > PreviewConstraints.MAX_ROWS:
            raise PlanError(
                f"preview limit {limit} exceeds "
                f"{PreviewConstraints.MAX_ROWS}")
        cache_key = (sql, limit)
        cached = self._preview_cache.get(cache_key)
        if cached is not None:
            return cached
        statement = parse(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ParseError("preview expects a SELECT")
        if len(statement.windows) > PreviewConstraints.MAX_WINDOWS:
            raise PlanError("preview: too many windows")
        if len(statement.joins) > PreviewConstraints.MAX_JOINS:
            raise PlanError("preview: too many joins")
        for window in statement.windows:
            if len(window.partition_by) \
                    > PreviewConstraints.MAX_PARTITION_COLUMNS:
                raise PlanError("preview: too many partition key columns")
        rows, _stats = self.offline_query_statement(statement)
        result = rows[:limit]
        self._preview_cache[cache_key] = result
        return result

    # ------------------------------------------------------------------
    # maintenance / recovery

    def snapshot(self) -> int:
        """Write one snapshot image per table; returns rows written.

        Pending aggregator closures are drained first and the binlog is
        fsync'd after, so "newest snapshot + binlog tail" is a complete
        recovery contract at the returned point.  Call from a quiesced
        maintenance context (no concurrent inserts), as the paper's
        snapshot thread does between low-traffic windows.
        """
        if self._snapshots is None:
            raise StorageError(
                "snapshot() requires OpenMLDB(data_dir=...)")
        self.replicator.wait_idle(timeout=10.0)
        offset = self.replicator.last_offset
        rows = 0
        for name, table in self.tables.items():
            codec = RowCodec(table.schema)
            payloads = [codec.encode(row) for row in table.rows()]
            manifest = table.manifest() if isinstance(table, DiskTable) \
                else {}
            self._snapshots.write(name, payloads, offset,
                                  manifest=manifest)
            rows += len(payloads)
        self.replicator.sync()
        return rows

    def recover(self) -> RecoveryReport:
        """Crash recovery: rebuild state from snapshots + binlog tail.

        Call on a **fresh** instance pointed at the crashed instance's
        ``data_dir``, after re-running DDL and deployments (catalog
        metadata is assumed durable elsewhere, as ZooKeeper keeps it for
        production OpenMLDB).  Per table: load the newest intact
        snapshot, then replay the durable binlog frames past its pinned
        offset.  Every recovered row also runs through the registered
        ingest updaters — the same ``IngestConsumer`` path the
        replicator worker drives — so pre-aggregation buckets and
        incremental window state rebuild to the exact pre-crash answers.
        Explicit LSM flush/compact control frames re-apply in stream
        order, reconstructing disk tables' SST layout.
        """
        wal = self.replicator.wal
        if wal is None or self._snapshots is None:
            raise StorageError(
                "recover() requires OpenMLDB(data_dir=...)")
        for name, table in self.tables.items():
            if table.row_count:
                raise StorageError(
                    f"recover() requires empty tables; {name!r} already "
                    f"holds {table.row_count} row(s)")
        start = time.perf_counter()
        report = RecoveryReport(node="db")
        span = self.obs.tracer.span("recovery.restart", node="db")
        with span:
            # Rebuild the in-memory binlog first so post-recovery
            # inserts continue the durable offset sequence.
            self.replicator.restore()
            self._recovering = True
            try:
                codecs: Dict[str, RowCodec] = {
                    name: RowCodec(table.schema)
                    for name, table in self.tables.items()}
                snap_offsets: Dict[str, int] = {}
                for name, table in self.tables.items():
                    snapshot = self._snapshots.load_latest(name)
                    if snapshot is None:
                        continue
                    for payload in snapshot.rows:
                        self._apply_recovered(
                            name, table, codecs[name].decode(payload),
                            snapshot.applied_offset)
                    snap_offsets[name] = snapshot.applied_offset
                    report.snapshot_rows += len(snapshot.rows)
                    if isinstance(table, DiskTable) \
                            and snapshot.manifest.get("flushes"):
                        # The image's rows had (partly) been flushed to
                        # SSTs pre-crash; rebuild that residence so the
                        # memtable only holds the post-snapshot tail.
                        table.flush()
                for frame in wal.replay(0):
                    if frame.offset <= snap_offsets.get(frame.table, -1):
                        continue
                    table = self.tables.get(frame.table)
                    if table is None:
                        continue
                    if frame.is_row:
                        self._apply_recovered(
                            frame.table, table,
                            codecs[frame.table].decode(frame.payload),
                            frame.offset)
                        report.replayed_entries += 1
                    else:
                        self._apply_storage_event(table,
                                                  frame.control_text())
            finally:
                self._recovering = False
            for name in self.tables:
                report.applied_offsets[(name, 0)] = \
                    self.replicator.last_offset
        report.seconds = time.perf_counter() - start
        registry = self.obs.registry
        registry.counter("storage.recovery.restarts").inc()
        registry.counter("storage.recovery.replayed").inc(
            report.replayed_entries)
        registry.counter("storage.recovery.snapshot_rows").inc(
            report.snapshot_rows)
        registry.histogram("storage.recovery.ms").observe(
            report.seconds * 1_000.0)
        return report

    def _apply_recovered(self, name: str,
                         table: Union[MemTable, DiskTable],
                         row: Row, offset: int) -> None:
        """Re-apply one recovered row: storage, memory accounting, and
        the registered ingest updaters (synchronously — recovery is
        single-threaded, so offset order is the apply order)."""
        validated = table.schema.validate_row(row)
        self.governor.charge(table.codec.encoded_size(validated)
                             if isinstance(table, MemTable)
                             else _approx_row_bytes(validated))
        table.insert(validated)
        updaters = self._updaters.get(name)
        if updaters:
            entry = BinlogEntry(offset=offset, table=name, row=validated)
            for fn in updaters:
                fn(entry)

    @staticmethod
    def _apply_storage_event(table: Union[MemTable, DiskTable],
                             text: str) -> None:
        if not isinstance(table, DiskTable):
            return
        if text == "flush":
            table.flush()
        elif text.startswith("compact:"):
            table.compact(int(text.split(":", 1)[1]))

    def recover_table(self, name: str) -> int:
        """Rebuild a table's online structures by replaying the binlog.

        Simulates a tablet restart (Section 5.1's failure-recovery
        design): the in-memory indexes are discarded and reconstructed
        from the replicator's log, including re-running any registered
        aggregator updaters, so pre-aggregation state recovers with the
        data.  Returns the number of replayed rows.
        """
        old = self.table(name)
        if isinstance(old, MemTable):
            fresh: Union[MemTable, DiskTable] = MemTable(
                name, old.schema, old.indexes, replicas=old.replicas,
                seed=self._seed, obs=self.obs)
        else:
            fresh = DiskTable(name, old.schema, old.indexes,
                              replicas=old.replicas,
                              flush_threshold=old.flush_threshold,
                              seed=self._seed, obs=self.obs)
        replayed = 0
        for entry in self.replicator.entries_from(0):
            if entry.table != name:
                continue
            fresh.insert(entry.row)
            replayed += 1
        if isinstance(old, MemTable) and isinstance(fresh, MemTable):
            # Incremental window state mirrors TTL sweeps through table
            # eviction subscriptions; carry them to the rebuilt table.
            for callback in old.eviction_subscribers:
                fresh.subscribe_eviction(callback)
        self.tables[name] = fresh
        # Deployed pre-aggregators and incremental window state keep
        # their own buffers — they consumed the same binlog
        # asynchronously, so nothing is lost with the table's in-memory
        # structures.
        return replayed

    def evict_expired(self, now_ts: int) -> int:
        """Run TTL eviction across all memory tables."""
        if self._updaters:
            # Drain pending binlog closures first so ingest-maintained
            # state (pre-aggregation, incremental windows) mirrors the
            # same row set the sweep sees.
            self.replicator.wait_idle(timeout=5.0)
        removed = 0
        for table in self.tables.values():
            if isinstance(table, MemTable):
                removed += table.evict_expired(now_ts)
        return removed

    def close(self) -> None:
        self.replicator.close()
        self.offline_engine.close()


def _approx_row_bytes(row: Sequence[Any]) -> int:
    total = 16
    for value in row:
        total += 8 if not isinstance(value, str) else 8 + len(value)
    return total
