"""Admission control: bounded priority queues and a concurrency limiter.

The serving frontend admits every request through one
:class:`AdmissionController`.  Admission can fail — that is the point:
past the configured bounds the controller sheds load with a typed
:class:`~repro.errors.OverloadError` instead of queueing without limit,
so the latency of *admitted* requests stays bounded while the system is
saturated (the graceful-degradation story of the paper's Section 8.2,
applied to the request path).

Three bounds, checked in order:

1. **draining** — a frontend that is shutting down admits nothing new;
2. **in-flight limit** — admitted-but-unfinished requests across all
   deployments (the concurrency limiter);
3. **per-deployment queue bound** — each deployment owns a bounded
   priority queue.  A full queue sheds the newcomer, *unless* the
   newcomer outranks the worst queued request, in which case the worst
   one is evicted (its future fails with ``reason="evicted"``) and the
   newcomer takes its place — high-priority traffic displaces
   best-effort traffic rather than queueing behind it.

Workers pull work with :meth:`AdmissionController.next_batch`, which
blocks until a deployment has queued requests, then returns up to
``max_batch`` of them (waiting at most ``max_wait_ms`` after the first
to let a batch fill).  Deployments are served round-robin so one hot
deployment cannot starve the rest.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import OverloadError
from ..obs import NULL_OBS, Observability
from .deadline import Deadline

__all__ = ["AdmissionController", "PRIORITIES", "Ticket"]

#: Priority classes, lower rank serves first.  "high" models
#: SLO-critical interactive traffic, "low" best-effort backfill.
PRIORITIES: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}


@dataclasses.dataclass
class Ticket:
    """One admitted request travelling through the frontend."""

    deployment: str
    row: Tuple[Any, ...]
    priority: int
    seq: int
    future: Any  # concurrent.futures.Future
    deadline: Optional[Deadline] = None
    enqueued_s: float = dataclasses.field(default_factory=time.monotonic)

    @property
    def heap_key(self) -> Tuple[int, int]:
        return (self.priority, self.seq)


class _DeploymentQueue:
    """A bounded priority queue for one deployment (heap on rank, seq)."""

    def __init__(self, bound: int) -> None:
        self.bound = bound
        self._heap: List[Tuple[Tuple[int, int], Ticket]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def offer(self, ticket: Ticket) -> Optional[Ticket]:
        """Admit ``ticket``, possibly evicting a worse queued one.

        Returns the evicted ticket (caller sheds it), or None when the
        queue had room.  Raises :class:`OverloadError` when the queue is
        full and nothing queued ranks worse than the newcomer.
        """
        if len(self._heap) < self.bound:
            heapq.heappush(self._heap, (ticket.heap_key, ticket))
            return None
        worst_index = max(range(len(self._heap)),
                          key=lambda i: self._heap[i][0])
        worst = self._heap[worst_index][1]
        if ticket.priority >= worst.priority:
            raise OverloadError(
                f"deployment {ticket.deployment!r} queue is full "
                f"({self.bound} queued)", deployment=ticket.deployment,
                reason="queue_full")
        self._heap[worst_index] = self._heap[-1]
        self._heap.pop()
        heapq.heapify(self._heap)
        heapq.heappush(self._heap, (ticket.heap_key, ticket))
        return worst

    def pop_batch(self, max_batch: int) -> List[Ticket]:
        batch = []
        while self._heap and len(batch) < max_batch:
            batch.append(heapq.heappop(self._heap)[1])
        return batch


class AdmissionController:
    """Bounded admission with priority classes and an in-flight limit.

    Args:
        max_queue: per-deployment queued-request bound.
        max_inflight: admitted-but-unfinished bound across deployments
            (queued + executing); ``None`` disables the limiter.
        obs: observability handle for queue-depth gauges and the
            in-flight gauge.
        on_shed: callback ``(ticket, reason)`` invoked for *queued*
            tickets the controller evicts in favour of higher-priority
            arrivals (the caller owns the ticket's future).
    """

    def __init__(self, max_queue: int = 64,
                 max_inflight: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 on_shed: Optional[Callable[[Ticket, str], None]] = None
                 ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self._obs = obs or NULL_OBS
        self._on_shed = on_shed
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queues: Dict[str, _DeploymentQueue] = {}
        self._rotation: List[str] = []
        self._next_slot = 0
        self._inflight = 0
        self._draining = False
        self._closed = False
        self._depth_gauges: Dict[str, Any] = {}
        self._g_inflight = self._obs.registry.gauge("serving.inflight")

    # ------------------------------------------------------------------
    # caller side

    def admit(self, ticket: Ticket) -> None:
        """Admit one request or shed it with :class:`OverloadError`."""
        evicted: Optional[Ticket] = None
        with self._lock:
            if self._draining or self._closed:
                state = "closed" if self._closed else "draining"
                raise OverloadError(
                    f"frontend is {state}; request shed",
                    deployment=ticket.deployment, reason=state)
            if self.max_inflight is not None \
                    and self._inflight >= self.max_inflight:
                raise OverloadError(
                    f"in-flight limit {self.max_inflight} reached",
                    deployment=ticket.deployment, reason="inflight")
            queue = self._queues.get(ticket.deployment)
            if queue is None:
                queue = _DeploymentQueue(self.max_queue)
                self._queues[ticket.deployment] = queue
                self._rotation.append(ticket.deployment)
            evicted = queue.offer(ticket)  # may raise OverloadError
            if evicted is None:
                self._inflight += 1
            # An eviction swaps one queued request for another: the
            # victim's in-flight slot transfers to the newcomer, so the
            # count is unchanged and the worker's release on the
            # newcomer balances the victim's admission.
            self._depth_gauge(ticket.deployment).set(len(queue))
            self._g_inflight.set(self._inflight)
            self._work.notify()
        if evicted is not None and self._on_shed is not None:
            self._on_shed(evicted, "evicted")

    def release(self, count: int = 1) -> None:
        """Mark ``count`` admitted requests finished (worker side)."""
        with self._lock:
            self._inflight -= count
            self._g_inflight.set(self._inflight)
            if self._inflight == 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # worker side

    def next_batch(self, max_batch: int, max_wait_ms: float
                   ) -> Optional[Tuple[str, List[Ticket]]]:
        """Block until work exists; return one deployment's batch.

        After the first queued request is seen, waits up to
        ``max_wait_ms`` for the batch to fill to ``max_batch`` before
        dispatching what is there.  Returns None once the controller is
        closed and empty (worker shutdown signal).
        """
        with self._lock:
            while True:
                name = self._pick_deployment()
                if name is not None:
                    break
                if self._closed:
                    return None
                self._work.wait(timeout=0.1)
            queue = self._queues[name]
            if len(queue) < max_batch and max_wait_ms > 0:
                deadline_s = time.monotonic() + max_wait_ms / 1_000.0
                while len(queue) < max_batch:
                    remaining = deadline_s - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._work.wait(timeout=remaining)
            batch = queue.pop_batch(max_batch)
            self._depth_gauge(name).set(len(queue))
            return name, batch

    def _pick_deployment(self) -> Optional[str]:
        """Round-robin over deployments with queued work."""
        if not self._rotation:
            return None
        for step in range(len(self._rotation)):
            name = self._rotation[(self._next_slot + step)
                                  % len(self._rotation)]
            if len(self._queues[name]):
                self._next_slot = (self._next_slot + step + 1) \
                    % len(self._rotation)
                return name
        return None

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def queued(self, deployment: Optional[str] = None) -> int:
        with self._lock:
            if deployment is not None:
                queue = self._queues.get(deployment)
                return len(queue) if queue is not None else 0
            return sum(len(queue) for queue in self._queues.values())

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting; wait for every admitted request to finish.

        Returns False if in-flight work did not finish in ``timeout``
        seconds (the frontend is left draining either way).
        """
        with self._lock:
            self._draining = True
            self._work.notify_all()
            return self._idle.wait_for(lambda: self._inflight == 0,
                                       timeout=timeout)

    def close(self) -> None:
        """Drain-stop: wake workers so they observe shutdown."""
        with self._lock:
            self._draining = True
            self._closed = True
            self._work.notify_all()

    # ------------------------------------------------------------------

    def _depth_gauge(self, deployment: str) -> Any:
        gauge = self._depth_gauges.get(deployment)
        if gauge is None:
            gauge = self._obs.registry.gauge("serving.queue.depth",
                                             deployment=deployment)
            self._depth_gauges[deployment] = gauge
        return gauge
