"""Request deadlines with ambient (thread-local) propagation.

A :class:`Deadline` is an absolute point on the monotonic clock derived
from a per-request budget.  The serving frontend installs the active
request's deadline in a thread-local slot (:func:`deadline_scope`)
around execution; downstream layers read it back with
:func:`current_deadline`:

* the nameserver's ``routed_read`` clamps every per-RPC timeout to the
  remaining budget and stops retrying once it is spent — a request
  never retries past its own deadline;
* the tablet RPC guard rejects calls whose deadline already expired
  before doing any work;
* the online engine checks the budget between windows, so a request
  that ran out mid-plan stops scanning instead of finishing late.

Propagating ambiently (rather than threading a parameter through every
storage call) mirrors how gRPC deadlines ride request context, and
keeps the zero-cost property: with no deadline installed the check is
one thread-local read.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator, Optional

from ..errors import DeadlineExceededError

__all__ = ["Deadline", "current_deadline", "deadline_scope"]


class Deadline:
    """An absolute deadline on the monotonic clock.

    Args:
        budget_ms: milliseconds from *now* until expiry.
    """

    __slots__ = ("budget_ms", "_expires_s")

    def __init__(self, budget_ms: float) -> None:
        self.budget_ms = budget_ms
        self._expires_s = time.monotonic() + budget_ms / 1_000.0

    @classmethod
    def after(cls, budget_ms: float) -> "Deadline":
        """Alias constructor that reads as prose: ``Deadline.after(50)``."""
        return cls(budget_ms)

    def remaining_ms(self) -> float:
        """Budget left, in milliseconds (never negative)."""
        return max((self._expires_s - time.monotonic()) * 1_000.0, 0.0)

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires_s

    def clamp_ms(self, timeout_ms: Optional[float]) -> float:
        """Clamp a per-RPC timeout to the remaining budget."""
        remaining = self.remaining_ms()
        if timeout_ms is None:
            return remaining
        return min(timeout_ms, remaining)

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget_ms:g} ms deadline")

    def __repr__(self) -> str:
        return (f"Deadline(budget_ms={self.budget_ms:g}, "
                f"remaining_ms={self.remaining_ms():.3f})")


_ambient = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline installed on this thread, if any."""
    return getattr(_ambient, "deadline", None)


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Install ``deadline`` as this thread's ambient deadline.

    ``deadline_scope(None)`` is a no-op, so callers can pass an optional
    deadline straight through.  Scopes nest; the previous deadline is
    restored on exit.
    """
    if deadline is None:
        yield
        return
    previous = getattr(_ambient, "deadline", None)
    _ambient.deadline = deadline
    try:
        yield
    finally:
        _ambient.deadline = previous
