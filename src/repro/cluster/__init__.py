"""Simulated cluster: tablets, nameserver, replication, failover, faults."""

from .failover import HeartbeatMonitor, RetryPolicy
from .faults import FaultInjector
from .nameserver import ClusterTable, NameServer
from .tablet import Shard, TabletServer

__all__ = ["TabletServer", "Shard", "NameServer", "ClusterTable",
           "RetryPolicy", "HeartbeatMonitor", "FaultInjector"]
