"""Segment tree over pre-aggregated bucket states (paper Section 5.1).

The pre-aggregation manager keeps, per key and per level, a sequence of
time buckets each holding a partial aggregate state.  A query over a long
window must merge a *contiguous run* of those buckets; a segment tree
makes that merge O(log n) instead of O(n), which matters when a
multi-year window spans thousands of buckets.

The tree is append-friendly: pre-aggregation only ever appends new buckets
(time moves forward) or updates the most recent one (late tuples within
the open bucket), both of which are O(log n) point updates.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["SegmentTree"]


class SegmentTree:
    """A dynamic segment tree under a user-supplied merge function.

    ``merge(a, b)`` must be associative; ``identity`` is its neutral
    element.  Values are arbitrary aggregate states.  Capacity doubles on
    demand, so callers can append forever.
    """

    def __init__(self, merge: Callable[[Any, Any], Any],
                 identity: Any = None) -> None:
        self.merge_fn = merge
        self._merge = merge
        self._identity = identity
        self._capacity = 1
        self._size = 0
        self._nodes: List[Any] = [identity, identity]

    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        """Double capacity, re-seating existing leaves."""
        old_leaves = [self._nodes[self._capacity + i]
                      for i in range(self._size)]
        self._capacity *= 2
        self._nodes = [self._identity] * (2 * self._capacity)
        for index, leaf in enumerate(old_leaves):
            self._nodes[self._capacity + index] = leaf
        for position in range(self._capacity - 1, 0, -1):
            self._nodes[position] = self._merge_pair(
                self._nodes[2 * position], self._nodes[2 * position + 1])

    def _merge_pair(self, left: Any, right: Any) -> Any:
        if left is self._identity or left is None:
            return right
        if right is self._identity or right is None:
            return left
        return self._merge(left, right)

    def append(self, value: Any) -> int:
        """Append a new leaf; returns its index."""
        if self._size >= self._capacity:
            self._grow()
        index = self._size
        self._size += 1
        self.update(index, value)
        return index

    def update(self, index: int, value: Any) -> None:
        """Point-update leaf ``index`` and re-merge its ancestors."""
        if not 0 <= index < self._size and index != self._size:
            raise IndexError(f"leaf {index} out of range")
        position = self._capacity + index
        self._nodes[position] = value
        position //= 2
        while position >= 1:
            self._nodes[position] = self._merge_pair(
                self._nodes[2 * position], self._nodes[2 * position + 1])
            position //= 2

    def get(self, index: int) -> Any:
        if not 0 <= index < self._size:
            raise IndexError(f"leaf {index} out of range")
        return self._nodes[self._capacity + index]

    def query(self, lo: int, hi: int) -> Any:
        """Merge leaves in ``[lo, hi)``; identity for an empty range."""
        if lo >= hi or self._size == 0:
            return self._identity
        lo = max(lo, 0)
        hi = min(hi, self._size)
        left_acc: Optional[Any] = self._identity
        right_acc: Optional[Any] = self._identity
        left = self._capacity + lo
        right = self._capacity + hi
        while left < right:
            if left & 1:
                left_acc = self._merge_pair(left_acc, self._nodes[left])
                left += 1
            if right & 1:
                right -= 1
                right_acc = self._merge_pair(self._nodes[right], right_acc)
            left //= 2
            right //= 2
        return self._merge_pair(left_acc, right_acc)
