"""Deployment introspection shared by serving frontends.

A network frontend (``repro.netserve``) needs to know, for each
deployed feature script, what a request row looks like (to coerce wire
parameters) and what comes back (to describe result sets to clients)
— *before* executing anything.  :class:`DeploymentDescriptor` is that
contract; ``OpenMLDB.describe_deployment``,
``NameServer.describe_deployment``, and
``FrontendServer.describe_deployment`` all return it.

The descriptor lives here (not in ``repro.core`` or ``repro.cluster``)
so both backends can produce it without either importing the other.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..schema import Schema

__all__ = ["DeploymentDescriptor"]


@dataclasses.dataclass(frozen=True)
class DeploymentDescriptor:
    """What a client must send to — and will get back from — a deployment.

    Attributes:
        name: deployment name.
        table: the primary (request) table the deployment anchors on.
        input_schema: schema of the request tuple — one value per column
            of the primary table, in declaration order.
        output_names: feature column names, in projection order.
    """

    name: str
    table: str
    input_schema: Schema
    output_names: Tuple[str, ...]

    @property
    def arity(self) -> int:
        """Number of values a request tuple must carry."""
        return len(self.input_schema)
