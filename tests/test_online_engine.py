"""Tests for the online request-mode engine (paper Sections 3.2, 5)."""

import pytest

from repro.errors import ExecutionError
from repro.schema import IndexDef, Schema
from repro.sql.compiler import compile_plan
from repro.sql.parser import parse_select
from repro.sql.planner import build_plan
from repro.storage.memtable import MemTable
from repro.online.engine import OnlineEngine


def build_engine(sql, tables):
    catalog = {name: table.schema for name, table in tables.items()}
    compiled = compile_plan(build_plan(parse_select(sql), catalog), catalog)
    return OnlineEngine(tables), compiled


@pytest.fixture
def trades():
    schema = Schema.from_pairs([
        ("sym", "string"), ("ts", "timestamp"), ("px", "double"),
        ("qty", "int"),
    ])
    table = MemTable("trades", schema, [IndexDef(("sym",), "ts")])
    for ts, px, qty in ((100, 10.0, 1), (200, 20.0, 2), (300, 30.0, 3)):
        table.insert(("A", ts, px, qty))
    table.insert(("B", 150, 99.0, 1))
    return table


class TestRowsWindows:
    SQL = ("SELECT sym, sum(px) OVER w AS total, count(px) OVER w AS n "
           "FROM trades WINDOW w AS (PARTITION BY sym ORDER BY ts "
           "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")

    def test_request_includes_current_and_preceding(self, trades):
        engine, compiled = build_engine(self.SQL, {"trades": trades})
        row = engine.execute_request(compiled, ("A", 400, 40.0, 4))
        assert row == ("A", 70.0, 2)  # request 40 + newest stored 30

    def test_keys_isolated(self, trades):
        engine, compiled = build_engine(self.SQL, {"trades": trades})
        row = engine.execute_request(compiled, ("B", 400, 1.0, 1))
        assert row == ("B", 100.0, 2)

    def test_unknown_key_sees_only_request(self, trades):
        engine, compiled = build_engine(self.SQL, {"trades": trades})
        row = engine.execute_request(compiled, ("ZZZ", 400, 5.0, 1))
        assert row == ("ZZZ", 5.0, 1)

    def test_request_ts_bounds_window(self, trades):
        # A request "in the past" must not see newer stored rows.
        engine, compiled = build_engine(self.SQL, {"trades": trades})
        row = engine.execute_request(compiled, ("A", 150, 1.0, 1))
        assert row == ("A", 11.0, 2)  # request + the ts=100 row only


class TestRangeWindows:
    SQL = ("SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w AS "
           "(PARTITION BY sym ORDER BY ts "
           "ROWS_RANGE BETWEEN 150 PRECEDING AND CURRENT ROW)")

    def test_range_window(self, trades):
        engine, compiled = build_engine(self.SQL, {"trades": trades})
        row = engine.execute_request(compiled, ("A", 350, 5.0, 1))
        # horizon 200: rows at ts 200, 300 + request.
        assert row == ("A", 55.0)

    def test_range_inclusive_bound(self, trades):
        engine, compiled = build_engine(self.SQL, {"trades": trades})
        row = engine.execute_request(compiled, ("A", 250, 5.0, 1))
        # horizon 100 inclusive: rows 100, 200 + request.
        assert row == ("A", 35.0)


class TestWindowAttributes:
    def test_exclude_current_row(self, trades):
        sql = ("SELECT sum(px) OVER w AS total FROM trades WINDOW w AS "
               "(PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW "
               "EXCLUDE CURRENT_ROW)")
        engine, compiled = build_engine(sql, {"trades": trades})
        row = engine.execute_request(compiled, ("A", 400, 1000.0, 1))
        assert row == (50.0,)  # 20 + 30, request excluded

    def test_maxsize_caps_window(self, trades):
        sql = ("SELECT count(px) OVER w AS n FROM trades WINDOW w AS "
               "(PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 100 PRECEDING AND CURRENT ROW MAXSIZE 2)")
        engine, compiled = build_engine(sql, {"trades": trades})
        row = engine.execute_request(compiled, ("A", 400, 1.0, 1))
        assert row == (2,)


class TestWindowUnionRequests:
    def test_union_merges_tables(self, trades):
        schema = trades.schema
        orders = MemTable("orders", schema, [IndexDef(("sym",), "ts")])
        orders.insert(("A", 250, 7.0, 1))
        sql = ("SELECT sum(px) OVER w AS total FROM trades WINDOW w AS "
               "(UNION orders PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 200 PRECEDING AND CURRENT ROW)")
        engine, compiled = build_engine(
            sql, {"trades": trades, "orders": orders})
        row = engine.execute_request(compiled, ("A", 350, 5.0, 1))
        # horizon 150: trades 200, 300 + orders 250 + request.
        assert row == (62.0,)

    def test_instance_not_in_window(self, trades):
        schema = trades.schema
        orders = MemTable("orders", schema, [IndexDef(("sym",), "ts")])
        orders.insert(("A", 250, 7.0, 1))
        sql = ("SELECT sum(px) OVER w AS total FROM trades WINDOW w AS "
               "(UNION orders PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 500 PRECEDING AND CURRENT ROW "
               "INSTANCE_NOT_IN_WINDOW)")
        engine, compiled = build_engine(
            sql, {"trades": trades, "orders": orders})
        row = engine.execute_request(compiled, ("A", 350, 1000.0, 1))
        # Stored trades rows are excluded; the union row and the request
        # itself participate.
        assert row == (1007.0,)


class TestLastJoin:
    @pytest.fixture
    def profile(self):
        schema = Schema.from_pairs([
            ("sym", "string"), ("uts", "timestamp"), ("sector", "string"),
        ])
        table = MemTable("profile", schema, [IndexDef(("sym",), "uts")])
        table.insert(("A", 10, "old-tech"))
        table.insert(("A", 20, "tech"))
        return table

    def test_newest_match(self, trades, profile):
        sql = ("SELECT trades.sym AS sym, profile.sector AS sector "
               "FROM trades LAST JOIN profile ORDER BY uts "
               "ON trades.sym = profile.sym")
        engine, compiled = build_engine(
            sql, {"trades": trades, "profile": profile})
        row = engine.execute_request(compiled, ("A", 400, 1.0, 1))
        assert row == ("A", "tech")

    def test_miss_pads_nulls(self, trades, profile):
        sql = ("SELECT trades.sym AS sym, profile.sector AS sector "
               "FROM trades LAST JOIN profile ON trades.sym = profile.sym")
        engine, compiled = build_engine(
            sql, {"trades": trades, "profile": profile})
        row = engine.execute_request(compiled, ("NOPE", 400, 1.0, 1))
        assert row == ("NOPE", None)

    def test_residual_condition(self, trades, profile):
        sql = ("SELECT trades.sym AS sym, profile.sector AS sector "
               "FROM trades LAST JOIN profile ON trades.sym = profile.sym "
               "AND profile.sector = 'old-tech'")
        engine, compiled = build_engine(
            sql, {"trades": trades, "profile": profile})
        row = engine.execute_request(compiled, ("A", 400, 1.0, 1))
        assert row == ("A", "old-tech")

    def test_join_column_in_window_argument(self, trades, profile):
        # Aggregates reference only the primary table; joined columns in
        # the projection coexist with window features.
        sql = ("SELECT sum(px) OVER w AS total, profile.sector AS s "
               "FROM trades LAST JOIN profile ON trades.sym = profile.sym "
               "WINDOW w AS (PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW)")
        engine, compiled = build_engine(
            sql, {"trades": trades, "profile": profile})
        row = engine.execute_request(compiled, ("A", 400, 40.0, 1))
        assert row == (100.0, "tech")


class TestWhereAndValidation:
    def test_where_filters_request(self, trades):
        sql = "SELECT sym FROM trades WHERE qty > 5"
        engine, compiled = build_engine(sql, {"trades": trades})
        assert engine.execute_request(compiled, ("A", 1, 1.0, 6)) == ("A",)
        with pytest.raises(ExecutionError):
            engine.execute_request(compiled, ("A", 1, 1.0, 1))

    def test_request_row_validated(self, trades):
        sql = "SELECT sym FROM trades"
        engine, compiled = build_engine(sql, {"trades": trades})
        with pytest.raises(Exception):
            engine.execute_request(compiled, ("A", "bad-ts", 1.0, 1))


class TestSharedWindowFetch:
    def test_identical_windows_fetch_once(self, trades):
        sql = ("SELECT sum(px) OVER w1 AS a, max(px) OVER w2 AS b "
               "FROM trades WINDOW "
               "w1 AS (PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW), "
               "w2 AS (PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW)")
        engine, compiled = build_engine(sql, {"trades": trades})
        engine.execute_request(compiled, ("A", 400, 40.0, 1))
        # 3 stored rows scanned once, not twice.
        assert engine.stats.rows_scanned == 3

    def test_stats_accumulate(self, trades):
        sql = ("SELECT sum(px) OVER w AS a FROM trades WINDOW w AS "
               "(PARTITION BY sym ORDER BY ts "
               "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW)")
        engine, compiled = build_engine(sql, {"trades": trades})
        engine.execute_request(compiled, ("A", 400, 1.0, 1))
        engine.execute_request(compiled, ("A", 400, 1.0, 1))
        assert engine.stats.requests == 2
