"""Shared fixtures for the benchmark suite.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (Section 9); DESIGN.md carries the experiment index.
Scales are laptop-sized — the assertions check the *shape* of each result
(who wins, roughly by what factor), not the paper's absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `from tests.conftest import ...`-style helpers unnecessary here;
# benchmarks only need the library itself.
sys.path.insert(0, str(Path(__file__).resolve().parent))

import _util  # noqa: E402
from _util import build_openmldb  # noqa: E402
from repro.bench import harness
from repro.workloads.microbench import (MicroBenchConfig, build_feature_sql,
                                        generate)


@pytest.fixture(autouse=True)
def guard_recorded_results():
    """Refuse to record figures built on timed-out harness runs.

    Every :func:`~repro.bench.closed_loop` / paced-loop result produced
    while a benchmark test runs is observed here; if any was marked
    ``timed_out`` (a straggler survived ``join_timeout``, so latencies
    and qps describe a *partial* run), ``record_bench`` raises instead
    of writing the figure into ``BENCH_online.json``.  Benchmark files
    bind ``record_bench`` by value at import time, so the hook lives
    inside ``_util.record_bench`` itself rather than a monkeypatch.
    """
    unfit = []

    def observe(result):
        if getattr(result, "timed_out", False):
            unfit.append(result)

    def guard(figure):
        assert not unfit, (
            f"refusing to record {figure!r}: {len(unfit)} harness "
            f"result(s) timed out — partial latencies/qps must not "
            f"become recorded medians")

    harness.result_observers.append(observe)
    _util._result_guard = guard
    try:
        yield
    finally:
        harness.result_observers.remove(observe)
        _util._result_guard = None


@pytest.fixture(scope="session")
def microbench_online():
    """Mid-scale MicroBench shared by the online figures."""
    config = MicroBenchConfig(keys=120, rows_per_key=100, windows=2,
                              joins=1, union_tables=2, value_columns=3,
                              seed=17)
    data = generate(config, request_count=160)
    sql = build_feature_sql(config)
    db = build_openmldb(data, sql)
    return config, data, sql, db
