"""Differential test — every execution tier computes the same features.

Three request paths answer the same deployed window script:

1. **naive** — per-row iterator merge, per-row per-state dispatch
   (``OnlineEngine(fused_fold=False, block_scan=False)``);
2. **fused** — block-based scans feeding the compiler's fused fold
   kernel;
3. **incremental** — ingest-time per-key window state (the default
   ``request_row`` path once a deployment is incremental-eligible).

All three are compared row-for-row against an *independent* reference:
a plain-Python per-key store that re-implements the frame arithmetic
(ROWS / ROWS_RANGE, MAXSIZE, EXCLUDE CURRENT_ROW), the storage tie
order, all four TTL truncations, and hand-rolled aggregate semantics —
with scalar projections evaluated through the baseline AST interpreter
(:func:`repro.baselines.interp.interpret_expr`), the same oracle the
baseline engines use.

Data is integer-valued so equality is *exact* (byte-identical): integer
subtract-and-evict has no rounding, which is precisely what lets the
incremental path be compared with ``==`` rather than approx.

Hypothesis drives the schedule: randomized frames, TTL specs,
out-of-order and duplicate timestamps, NULLs, a deploy point in the
middle of the insert stream (so both backfill and binlog absorption are
exercised), TTL eviction mid-stream, and request anchors at, past, and
before the newest tuple (hit, hit, and fallback paths).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OpenMLDB
from repro.baselines.interp import interpret_expr
from repro.online.engine import OnlineEngine
from repro.schema import IndexDef, Schema, TTLKind, TTLSpec
from repro.sql import ast

KEYS = ("u1", "u2", "u3")

FEATURE_SQL_TEMPLATE = (
    "SELECT k, a + b AS ab, sum(a) OVER w AS s_a, count(b) OVER w AS c_b, "
    "avg(a) OVER w AS v_a, min(a) OVER w AS mn_a, max(b) OVER w AS mx_b, "
    "distinct_count(b) OVER w AS dc_b "
    "FROM t WINDOW w AS (PARTITION BY k ORDER BY ts {frame}{opts})")

AB_EXPR = ast.BinaryOp("+", ast.ColumnRef("a"), ast.ColumnRef("b"))


# ----------------------------------------------------------------------
# independent reference implementation


def _reference_evict(store, ttl, now_ts):
    """Mirror ``TimeSeriesIndex._evict_list`` on the reference store."""
    if ttl is None or ttl.unbounded:
        return
    horizon = (now_ts - ttl.abs_ttl_ms) if ttl.abs_ttl_ms else None
    for rows in store.values():
        if ttl.kind is TTLKind.ABSOLUTE:
            if horizon is not None:
                rows[:] = [r for r in rows if r[0] >= horizon]
        elif ttl.kind is TTLKind.LATEST:
            if ttl.lat_ttl:
                rows[:] = rows[:ttl.lat_ttl]
        elif ttl.kind is TTLKind.ABS_OR_LAT:
            if horizon is not None:
                rows[:] = [r for r in rows if r[0] >= horizon]
            if ttl.lat_ttl:
                rows[:] = rows[:ttl.lat_ttl]
        else:  # ABS_AND_LAT: evict only tuples violating *both* bounds
            if horizon is not None and ttl.lat_ttl:
                for index, row in enumerate(rows):
                    if index >= ttl.lat_ttl and row[0] < horizon:
                        rows[:] = rows[:index]
                        break


def _reference_store(events):
    """key → newest-first [(ts, seq, a, b)] with the storage tie order:
    for equal ts the later arrival (higher seq) comes first."""
    store = {key: [] for key in KEYS}
    for seq, (key, ts, a, b) in enumerate(events):
        store[key].append((ts, seq, a, b))
    for rows in store.values():
        rows.sort(key=lambda r: (-r[0], -r[1]))
    return store


def _agg(values):
    """Hand-rolled aggregate semantics over one window column."""
    present = [v for v in values if v is not None]
    return {
        "sum": sum(present) if present else None,
        "count": len(present),
        "avg": sum(present) / len(present) if present else None,
        "min": min(present) if present else None,
        "max": max(present) if present else None,
        "distinct_count": len(set(present)),
    }


def _reference_features(store, request, frame, maxsize, exclude):
    key, anchor, req_a, req_b = request
    kind, bound = frame
    stored = [r for r in store.get(key, ()) if r[0] <= anchor]
    if kind == "range":
        stored = [r for r in stored if r[0] >= anchor - bound]
    else:  # ROWS n PRECEDING → n stored rows besides the request row
        stored = stored[:bound]
    window = ([] if exclude else [(anchor, None, req_a, req_b)]) + stored
    if maxsize is not None:
        window = window[:maxsize]
    a_stats = _agg([r[2] for r in window])
    b_stats = _agg([r[3] for r in window])
    ab = interpret_expr(AB_EXPR, {"a": req_a, "b": req_b})
    return (key, ab, a_stats["sum"], b_stats["count"], a_stats["avg"],
            a_stats["min"], b_stats["max"], b_stats["distinct_count"])


# ----------------------------------------------------------------------
# scenario strategies

_value = st.one_of(st.none(), st.integers(-50, 50))

_events = st.lists(
    st.tuples(st.sampled_from(KEYS), st.integers(0, 3000), _value, _value),
    min_size=1, max_size=50)

_frames = st.one_of(
    st.tuples(st.just("rows"), st.integers(1, 8)),
    st.tuples(st.just("range"), st.integers(50, 2000)))

_ttls = st.one_of(
    st.none(),
    st.builds(TTLSpec, kind=st.just(TTLKind.ABSOLUTE),
              abs_ttl_ms=st.integers(100, 1500)),
    st.builds(TTLSpec, kind=st.just(TTLKind.LATEST),
              lat_ttl=st.integers(1, 6)),
    st.builds(TTLSpec, kind=st.just(TTLKind.ABS_OR_LAT),
              abs_ttl_ms=st.integers(100, 1500),
              lat_ttl=st.integers(1, 6)),
    st.builds(TTLSpec, kind=st.just(TTLKind.ABS_AND_LAT),
              abs_ttl_ms=st.integers(100, 1500),
              lat_ttl=st.integers(1, 6)))


def _build_db(events, deploy_at, frame, maxsize, exclude, ttl):
    kind, bound = frame
    frame_sql = (f"ROWS_RANGE BETWEEN {bound} PRECEDING AND CURRENT ROW"
                 if kind == "range"
                 else f"ROWS BETWEEN {bound} PRECEDING AND CURRENT ROW")
    opts = ("" if maxsize is None else f" MAXSIZE {maxsize}") \
        + (" EXCLUDE CURRENT_ROW" if exclude else "")
    db = OpenMLDB()
    schema = Schema.from_pairs([("k", "string"), ("ts", "timestamp"),
                                ("a", "int"), ("b", "int")])
    db.create_table("t", schema,
                    indexes=[IndexDef(("k",), "ts", ttl or TTLSpec())])
    for event in events[:deploy_at]:
        db.insert("t", event)
    db.deploy("d", FEATURE_SQL_TEMPLATE.format(frame=frame_sql, opts=opts))
    for event in events[deploy_at:]:
        db.insert("t", event)
    db.replicator.wait_idle(timeout=5.0)
    return db


def _requests(events):
    max_ts = max(ts for _k, ts, _a, _b in events)
    anchors = (max_ts + 17, max_ts, max_ts // 2)
    rows = [(key, anchor, a, b)
            for key in KEYS + ("cold-key",)
            for anchor, (a, b) in zip(anchors,
                                      ((5, -3), (None, 4), (7, None)))]
    return rows, max_ts


def _check_all_paths(db, naive_engine, store, frame, maxsize, exclude,
                     requests):
    compiled = db.deployments["d"].compiled
    for request in requests:
        expected = _reference_features(store, request, frame, maxsize,
                                       exclude)
        # Default path: fused kernels + incremental state where eligible.
        assert tuple(db.request_row("d", request)) == expected
        # Fused scan-fold without ingest-time state.
        assert tuple(db.online_engine.execute_request(
            compiled, request)) == expected
        # Pre-overhaul naive fold over the per-row iterator merge.
        assert tuple(naive_engine.execute_request(
            compiled, request)) == expected


@settings(max_examples=40, deadline=None)
@given(events=_events, deploy_frac=st.integers(0, 100), frame=_frames,
       maxsize=st.one_of(st.none(), st.integers(2, 6)),
       exclude=st.booleans(), ttl=_ttls,
       evict_offset=st.integers(0, 1000))
def test_all_tiers_match_reference(events, deploy_frac, frame, maxsize,
                                   exclude, ttl, evict_offset):
    deploy_at = len(events) * deploy_frac // 100
    db = _build_db(events, deploy_at, frame, maxsize, exclude, ttl)
    try:
        deployment = db.deployments["d"]
        assert deployment.uses_incremental  # every aggregate is invertible
        naive_engine = OnlineEngine(db.tables, fused_fold=False,
                                    block_scan=False)
        store = _reference_store(events)
        requests, max_ts = _requests(events)

        _check_all_paths(db, naive_engine, store, frame, maxsize, exclude,
                         requests)
        # Warm keys at fresh anchors must have taken the O(aggregates)
        # path, not fallen back to a scan.
        assert db.online_engine.stats.incremental_hits >= 1

        if ttl is not None:
            evict_ts = max_ts + evict_offset
            db.evict_expired(evict_ts)
            _reference_evict(store, ttl, evict_ts)
            _check_all_paths(db, naive_engine, store, frame, maxsize,
                             exclude, requests)
    finally:
        db.close()


# ----------------------------------------------------------------------
# deterministic pins for the two scenarios the issue calls out by name


def test_out_of_order_inserts_byte_identical():
    events = [("u1", 1000, 3, 1), ("u1", 5000, 4, None),
              ("u1", 2000, None, 9),   # late arrival, far in the past
              ("u1", 4000, 6, 9), ("u1", 5000, 1, 2)]  # duplicate ts
    frame = ("range", 2000)
    db = _build_db(events, deploy_at=2, frame=frame, maxsize=None,
                   exclude=False, ttl=None)
    try:
        naive = OnlineEngine(db.tables, fused_fold=False, block_scan=False)
        store = _reference_store(events)
        requests = [("u1", 6000, 5, 5), ("u1", 5000, None, 5),
                    ("u1", 3000, 2, 2)]  # past anchor → fallback scan
        _check_all_paths(db, naive, store, frame, None, False, requests)
        assert db.online_engine.stats.incremental_hits >= 2
        assert db.online_engine.stats.incremental_fallbacks >= 1
    finally:
        db.close()


def test_ttl_evicted_rows_byte_identical():
    # Absolute TTL tighter than the frame: eviction changes the features
    # and every tier must agree on the post-TTL row set.
    events = [("u2", ts, ts // 100, ts // 200) for ts in
              (1000, 1400, 1800, 2200, 2600, 3000)]
    frame = ("range", 2500)
    ttl = TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=800)
    db = _build_db(events, deploy_at=6, frame=frame, maxsize=None,
                   exclude=False, ttl=ttl)
    try:
        naive = OnlineEngine(db.tables, fused_fold=False, block_scan=False)
        store = _reference_store(events)
        before = tuple(db.request_row("d", ("u2", 3100, 1, 1)))
        db.evict_expired(3000)
        _reference_evict(store, ttl, 3000)
        requests = [("u2", 3100, 1, 1), ("u2", 3000, None, None)]
        _check_all_paths(db, naive, store, frame, None, False, requests)
        after = tuple(db.request_row("d", ("u2", 3100, 1, 1)))
        assert before != after  # the TTL sweep really narrowed the window
    finally:
        db.close()
