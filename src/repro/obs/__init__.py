"""repro.obs — the observability layer (metrics + tracing).

The paper's entire evaluation is about *where time goes*: per-stage
latency of the online path (Figs. 6–7, 15–17), partition-level
parallelism of the offline path (Figs. 8, 12–13), pre-aggregation hit
rates (Figs. 10–11).  This dependency-free subsystem makes those
quantities observable on a live instance:

* :class:`MetricsRegistry` — counters, gauges, and mergeable streaming
  histograms with labelled series (per table, per tablet, per
  deployment).  ``registry.render()`` is the text exposition format;
  ``render("json")`` the machine one.
* :class:`Tracer` — per-request span trees
  (``deployment.execute`` → ``index.seek`` → ``window.scan`` →
  ``preagg.lookup`` → ``agg.fold`` → ``encode``) with trace-context
  propagation across the simulated cluster's "RPC" hops, so a
  nameserver-routed request yields one stitched trace spanning tablet
  servers.  ``tracer.render()`` draws the tree; ``tracer.export()``
  returns span dicts for the bench harness.
* :class:`Observability` — the pair, plus the enabled switch.  The
  default everywhere is **off**: a disabled instance hands out shared
  no-op instruments and spans, so instrumented hot paths cost one
  attribute access and allocate nothing.

Turn it on per instance (``OpenMLDB(observability=True)``), or share one
:class:`Observability` across components to get unified cluster-wide
series (``NameServer(tablets, obs=obs)``).  See docs/observability.md
for the metric catalog and a worked trace read-through.
"""

from __future__ import annotations

from .metrics import (BUCKET_BOUNDS_MS, Counter, Gauge, Histogram,
                      MetricsRegistry, NULL_COUNTER, NULL_GAUGE,
                      NULL_HISTOGRAM)
from .rates import Ewma, RateWindow
from .trace import NULL_SPAN, Span, Tracer

__all__ = ["Observability", "NULL_OBS", "MetricsRegistry", "Tracer",
           "Counter", "Gauge", "Histogram", "Span", "NULL_SPAN",
           "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
           "BUCKET_BOUNDS_MS", "Ewma", "RateWindow"]


class Observability:
    """A registry + tracer pair behind one enable switch."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()


#: The shared disabled instance every component defaults to.
NULL_OBS = Observability(enabled=False)
