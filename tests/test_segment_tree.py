"""Tests for the segment tree over aggregate states."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.online.segment_tree import SegmentTree


def sum_tree(values=()):
    tree = SegmentTree(operator.add, identity=None)
    for value in values:
        tree.append(value)
    return tree


class TestBasics:
    def test_append_and_get(self):
        tree = sum_tree([1, 2, 3])
        assert len(tree) == 3
        assert tree.get(0) == 1
        assert tree.get(2) == 3

    def test_query_full_range(self):
        tree = sum_tree([1, 2, 3, 4, 5])
        assert tree.query(0, 5) == 15

    def test_query_subranges(self):
        tree = sum_tree([1, 2, 3, 4, 5])
        assert tree.query(1, 4) == 9
        assert tree.query(0, 1) == 1
        assert tree.query(4, 5) == 5

    def test_empty_range_returns_identity(self):
        tree = sum_tree([1, 2, 3])
        assert tree.query(2, 2) is None
        assert tree.query(3, 1) is None

    def test_out_of_bounds_clamped(self):
        tree = sum_tree([1, 2, 3])
        assert tree.query(-5, 100) == 6

    def test_update(self):
        tree = sum_tree([1, 2, 3])
        tree.update(1, 20)
        assert tree.query(0, 3) == 24

    def test_get_out_of_range(self):
        tree = sum_tree([1])
        with pytest.raises(IndexError):
            tree.get(5)

    def test_growth_preserves_leaves(self):
        tree = sum_tree(range(1, 70))  # forces several capacity doublings
        assert tree.query(0, 69) == sum(range(1, 70))
        assert tree.get(63) == 64

    def test_identity_leaves_skipped(self):
        tree = sum_tree([1, None, 3])
        assert tree.query(0, 3) == 4


class TestOrderPreservation:
    """Non-commutative merges must see leaves left-to-right."""

    def test_string_concat_order(self):
        tree = SegmentTree(operator.add, identity=None)
        for piece in ("a", "b", "c", "d", "e"):
            tree.append(piece)
        assert tree.query(0, 5) == "abcde"
        assert tree.query(1, 4) == "bcd"

    def test_order_after_growth(self):
        tree = SegmentTree(operator.add, identity=None)
        pieces = [chr(ord("a") + i % 26) for i in range(40)]
        for piece in pieces:
            tree.append(piece)
        assert tree.query(3, 37) == "".join(pieces[3:37])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=100),
       st.integers(0, 100), st.integers(0, 100))
def test_query_matches_fold(values, lo, hi):
    tree = sum_tree(values)
    lo, hi = min(lo, len(values)), min(hi, len(values))
    expected = sum(values[lo:hi]) if lo < hi else None
    assert tree.query(lo, hi) == expected
