"""Memory management mechanisms (paper Section 8)."""

from .estimator import (EngineChoice, IndexProfile, TableProfile,
                        estimate_table_bytes, estimate_total_bytes,
                        recommend_engine)
from .governor import MemoryGovernor

__all__ = [
    "IndexProfile", "TableProfile", "estimate_table_bytes",
    "estimate_total_bytes", "recommend_engine", "EngineChoice",
    "MemoryGovernor",
]
