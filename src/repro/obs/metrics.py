"""Metrics: counters, gauges, and mergeable streaming histograms.

The registry is the operator-facing half of the observability layer
(the other half is :mod:`repro.obs.trace`).  Design constraints, in
order:

* **near-zero disabled cost** — a disabled registry hands out shared
  no-op instruments, so instrumented hot paths pay one attribute access
  plus an empty method call and allocate nothing;
* **mergeable histograms** — every histogram uses the same *fixed*
  log-bucket layout (powers of two starting at 1 µs), so per-tablet
  histograms merge exactly by adding bucket counts — the property that
  lets a cluster report one latency distribution across tablet servers;
* **labels** — series are keyed by ``(name, sorted labels)``; asking for
  the same series twice returns the same instrument, and
  :meth:`MetricsRegistry.labels` pre-binds common labels (per-table,
  per-tablet, per-deployment) so call sites stay terse.

Everything is standard library; instruments take a small lock on update
so the offline engine's thread pool and the binlog replicator thread can
share them.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM"]

# Fixed log-bucket layout shared by every histogram: upper bounds in
# milliseconds, 1 µs · 2^i.  36 buckets cover 1 µs .. ~9.5 hours; one
# overflow bucket catches the rest.  The layout being *fixed* (not
# per-instance) is what makes histograms mergeable across processes.
BUCKET_BOUNDS_MS: Tuple[float, ...] = tuple(
    0.001 * (2 ** exponent) for exponent in range(36))

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}

    def render_value(self) -> str:
        return str(self.value)


class Gauge:
    """A value that can go up and down (queue depths, bytes held)."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def snapshot(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}

    def render_value(self) -> str:
        return str(self.value)


class Histogram:
    """A streaming histogram over the fixed log-bucket layout.

    Tracks exact ``count``/``sum``/``min``/``max`` plus per-bucket
    counts; percentiles are answered from the buckets, so a reported
    quantile is the *upper bound* of the bucket holding it (at most 2×
    the true value — the resolution of a power-of-two layout).
    """

    __slots__ = ("name", "labels", "counts", "count", "total",
                 "min", "max", "_lock")

    kind = "histogram"

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (milliseconds by convention)."""
        slot = bisect.bisect_left(BUCKET_BOUNDS_MS, value)
        with self._lock:
            self.counts[slot] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one (same layout)."""
        self.merge_state(other.state())

    def state(self) -> Dict[str, Any]:
        """Plain-data snapshot of the full bucket state.

        Unlike the histogram object itself (which carries a lock), the
        state dict pickles — it is how offline pool workers ship their
        measurements back for an *exact* fleet-wide merge: the fixed
        log-bucket layout makes per-bucket counts additive, so merging
        states loses nothing relative to observing in one process.
        """
        with self._lock:
            return {"counts": list(self.counts), "count": self.count,
                    "total": self.total, "min": self.min,
                    "max": self.max}

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a :meth:`state` snapshot into this histogram."""
        counts = state["counts"]
        lo, hi = state["min"], state["max"]
        with self._lock:
            for slot, bucket_count in enumerate(counts):
                self.counts[slot] += bucket_count
            self.count += state["count"]
            self.total += state["total"]
            if lo is not None and (self.min is None or lo < self.min):
                self.min = lo
            if hi is not None and (self.max is None or hi > self.max):
                self.max = hi

    def percentile(self, p: float) -> float:
        """Bucket-resolution percentile (0 with no samples)."""
        with self._lock:
            if self.count == 0:
                return 0.0
            target = max(1, int(p / 100.0 * self.count + 0.9999))
            seen = 0
            for slot, bucket_count in enumerate(self.counts):
                seen += bucket_count
                if seen >= target:
                    if slot >= len(BUCKET_BOUNDS_MS):
                        return self.max if self.max is not None else 0.0
                    # Never report a quantile above the observed max.
                    bound = BUCKET_BOUNDS_MS[slot]
                    return min(bound, self.max) \
                        if self.max is not None else bound
            return self.max if self.max is not None else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99),
                "max": self.max if self.max is not None else 0.0}

    def snapshot(self) -> Dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), **self.summary()}

    def render_value(self) -> str:
        s = self.summary()
        return (f"count={s['count']} mean={s['mean']:.4f} "
                f"p50={s['p50']:.4f} p95={s['p95']:.4f} "
                f"p99={s['p99']:.4f} max={s['max']:.4f}")


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()


class _LabeledRegistry:
    """A registry view with labels pre-bound (per table/tablet/...)."""

    __slots__ = ("_registry", "_labels")

    def __init__(self, registry: "MetricsRegistry",
                 labels: Dict[str, Any]) -> None:
        self._registry = registry
        self._labels = labels

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._registry.counter(name, **{**self._labels, **labels})

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._registry.gauge(name, **{**self._labels, **labels})

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._registry.histogram(name, **{**self._labels, **labels})


class MetricsRegistry:
    """All metric series of one process (or one simulated node).

    Disabled registries (``enabled=False``) hand out shared no-op
    instruments and record nothing — the default for every engine, so
    observability is strictly opt-in.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._series: Dict[Tuple[str, str, _LabelKey], Any] = {}
        self._lock = threading.Lock()

    # -- instrument access ---------------------------------------------

    def _get(self, kind: str, cls: type, null: _NullInstrument,
             name: str, labels: Dict[str, Any]) -> Any:
        if not self.enabled:
            return null
        key = (kind, name, _label_key(labels))
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                instrument = cls(name, key[2])
                self._series[key] = instrument
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, NULL_COUNTER, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, NULL_GAUGE, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", Histogram, NULL_HISTOGRAM, name,
                         labels)

    def labels(self, **labels: Any) -> _LabeledRegistry:
        """A view that stamps ``labels`` onto every instrument it makes."""
        return _LabeledRegistry(self, labels)

    # -- introspection / export ----------------------------------------

    def series(self) -> Iterator[Any]:
        with self._lock:
            instruments = list(self._series.values())
        return iter(sorted(instruments,
                           key=lambda i: (i.name, i.labels)))

    @property
    def series_count(self) -> int:
        return len(self._series)

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """Fetch an existing series without creating it (any kind)."""
        key_labels = _label_key(labels)
        with self._lock:
            for (_kind, series_name, series_labels), instrument \
                    in self._series.items():
                if series_name == name and series_labels == key_labels:
                    return instrument
        return None

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one (tablet → fleet).

        Counters/gauges add; histograms merge bucket-wise (exact, thanks
        to the shared fixed layout).
        """
        for instrument in other.series():
            labels = dict(instrument.labels)
            if instrument.kind == "counter":
                self.counter(instrument.name, **labels).inc(instrument.value)
            elif instrument.kind == "gauge":
                self.gauge(instrument.name, **labels).inc(instrument.value)
            else:
                self.histogram(instrument.name, **labels).merge(instrument)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [instrument.snapshot() for instrument in self.series()]

    def render(self, format: str = "text") -> str:
        """Render every series — the operator surface.

        ``format="text"`` gives one aligned line per series;
        ``format="json"`` gives a JSON array of snapshots.
        """
        if format == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if format != "text":
            raise ValueError(f"unknown render format {format!r}")
        lines = []
        for instrument in self.series():
            label_text = ",".join(f"{k}={v}" for k, v in instrument.labels)
            series_name = instrument.name + (
                "{" + label_text + "}" if label_text else "")
            lines.append(f"{instrument.kind:9s} {series_name} "
                         f"{instrument.render_value()}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
