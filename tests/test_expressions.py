"""Tests for scalar expression compilation."""

import pytest

from repro.errors import CompileError, PlanError
from repro.sql import ast
from repro.sql.expressions import Scope, compile_expr
from repro.sql.parser import parse_select


def compile_from_sql(expr_text, columns=("a", "b", "s")):
    statement = parse_select(f"SELECT {expr_text} AS e FROM t")
    scope = Scope()
    scope.add_namespace("t", columns)
    return compile_expr(statement.items[0].expr, scope)


class TestScope:
    def test_resolution_by_qualifier(self):
        scope = Scope()
        scope.add_namespace("t", ["a", "b"])
        scope.add_namespace("u", ["a"])
        assert scope.resolve(ast.ColumnRef("a", table="t")) == 0
        assert scope.resolve(ast.ColumnRef("a", table="u")) == 2
        assert scope.resolve(ast.ColumnRef("b")) == 1

    def test_ambiguous_unqualified(self):
        scope = Scope()
        scope.add_namespace("t", ["a"])
        scope.add_namespace("u", ["a"])
        with pytest.raises(PlanError, match="ambiguous"):
            scope.resolve(ast.ColumnRef("a"))

    def test_unknown_column(self):
        scope = Scope()
        scope.add_namespace("t", ["a"])
        with pytest.raises(PlanError):
            scope.resolve(ast.ColumnRef("zz"))
        with pytest.raises(PlanError):
            scope.resolve(ast.ColumnRef("a", table="nope"))

    def test_alias(self):
        scope = Scope()
        scope.add_namespace("trades", ["px"])
        scope.add_alias("t", "trades")
        assert scope.resolve(ast.ColumnRef("px", table="t")) == 0

    def test_namespace_slots(self):
        scope = Scope()
        scope.add_namespace("t", ["a", "b"])
        assert scope.namespace_slots("t") == [("a", 0), ("b", 1)]


class TestArithmetic:
    def test_basic(self):
        fn = compile_from_sql("a + b * 2")
        assert fn((3, 4, "")) == 11

    def test_division_by_zero_is_null(self):
        fn = compile_from_sql("a / b")
        assert fn((1, 0, "")) is None
        assert fn((6, 3, "")) == 2.0

    def test_null_propagates(self):
        fn = compile_from_sql("a + b")
        assert fn((None, 4, "")) is None
        assert fn((4, None, "")) is None

    def test_modulo_and_negate(self):
        assert compile_from_sql("a % b")((7, 3, "")) == 1
        assert compile_from_sql("-a")((5, 0, "")) == -5
        assert compile_from_sql("-a")((None, 0, "")) is None

    def test_modulo_by_zero_is_null(self):
        # Same contract as "/": a zero divisor yields NULL, never an
        # uncaught ZeroDivisionError (docs/sql_reference.md §operators).
        fn = compile_from_sql("a % b")
        assert fn((7, 0, "")) is None
        assert fn((7.5, 0.0, "")) is None
        assert fn((None, 0, "")) is None

    def test_modulo_by_zero_matches_interpreter_baseline(self):
        from repro.baselines.interp import interpret_expr
        from repro.sql.parser import parse_select
        statement = parse_select("SELECT a % b AS e FROM t")
        expr = statement.items[0].expr
        assert interpret_expr(expr, {"a": 7, "b": 0}) is None
        assert interpret_expr(expr, {"a": 7, "b": 3}) == 1


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert compile_from_sql("a < b")((1, 2, "")) is True
        assert compile_from_sql("a >= b")((2, 2, "")) is True
        assert compile_from_sql("a != b")((1, 2, "")) is True
        assert compile_from_sql("a = b")((None, 2, "")) is None

    def test_three_valued_and(self):
        fn = compile_from_sql("(a > 0) AND (b > 0)")
        assert fn((1, 1, "")) is True
        assert fn((1, -1, "")) is False
        assert fn((None, 1, "")) is None
        assert fn((None, -1, "")) is False  # false dominates unknown

    def test_three_valued_or(self):
        fn = compile_from_sql("(a > 0) OR (b > 0)")
        assert fn((1, None, "")) is True
        assert fn((-1, -1, "")) is False
        assert fn((None, -1, "")) is None

    def test_not(self):
        fn = compile_from_sql("NOT (a > 0)")
        assert fn((1, 0, "")) is False
        assert fn((None, 0, "")) is None

    def test_is_null(self):
        assert compile_from_sql("a IS NULL")((None, 0, "")) is True
        assert compile_from_sql("a IS NOT NULL")((None, 0, "")) is False

    def test_like(self):
        fn = compile_from_sql("s LIKE 'he%o_'")
        assert fn((0, 0, "hello!")) is True
        assert fn((0, 0, "nope")) is False


class TestStringsAndCase:
    def test_concat_operator(self):
        assert compile_from_sql("s || '!'")((0, 0, "hi")) == "hi!"

    def test_case_when(self):
        fn = compile_from_sql(
            "CASE WHEN a > 10 THEN 'big' WHEN a > 0 THEN 'small' "
            "ELSE 'neg' END")
        assert fn((20, 0, "")) == "big"
        assert fn((5, 0, "")) == "small"
        assert fn((-1, 0, "")) == "neg"

    def test_case_without_else(self):
        fn = compile_from_sql("CASE WHEN a > 0 THEN 1 END")
        assert fn((-5, 0, "")) is None

    def test_scalar_call(self):
        fn = compile_from_sql("upper(s)")
        assert fn((0, 0, "abc")) == "ABC"

    def test_nested_scalar_calls(self):
        fn = compile_from_sql("length(upper(s)) + a")
        assert fn((1, 0, "abc")) == 4


class TestAggregateHandling:
    def test_unbound_aggregate_rejected(self):
        statement = parse_select("SELECT sum(a) AS s FROM t")
        scope = Scope()
        scope.add_namespace("t", ["a"])
        with pytest.raises(CompileError):
            compile_expr(statement.items[0].expr, scope)

    def test_aggregate_slot_substitution(self):
        statement = parse_select(
            "SELECT sum(a) OVER w AS s FROM t WINDOW w AS "
            "(PARTITION BY a ORDER BY a "
            "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
        call = statement.items[0].expr
        scope = Scope()
        scope.add_namespace("t", ["a"])
        fn = compile_expr(call, scope, aggregate_slots={call: 1})
        assert fn((99, 42)) == 42

    def test_star_rejected_in_expression(self):
        scope = Scope()
        scope.add_namespace("t", ["a"])
        with pytest.raises(CompileError):
            compile_expr(ast.Star(), scope)
