"""Tests for the OpenMLDB session facade (core/database.py)."""

import pytest

from repro import OpenMLDB
from repro.errors import (DeploymentError, DeploymentNotFoundError,
                          MemoryLimitExceededError, ParseError, PlanError,
                          SchemaError, TableExistsError, TableNotFoundError)
from repro.schema import IndexDef, Schema, TTLKind


DDL = ("CREATE TABLE trades (sym string, ts timestamp, px double, "
       "qty int, INDEX(KEY=sym, TS=ts))")
ROLLING = ("SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w AS "
           "(PARTITION BY sym ORDER BY ts "
           "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")


@pytest.fixture
def db():
    database = OpenMLDB()
    database.execute(DDL)
    yield database
    database.close()


class TestDDL:
    def test_create_via_sql(self, db):
        table = db.table("trades")
        assert table.schema.column_names == ("sym", "ts", "px", "qty")
        assert table.indexes[0].key_columns == ("sym",)

    def test_duplicate_table(self, db):
        with pytest.raises(TableExistsError):
            db.execute(DDL)

    def test_unknown_table(self, db):
        with pytest.raises(TableNotFoundError):
            db.table("ghost")

    def test_default_index_derived(self):
        db = OpenMLDB()
        table = db.create_table("t", Schema.from_pairs([
            ("user", "string"), ("when", "timestamp"), ("v", "double")]))
        assert table.indexes[0].key_columns == ("user",)
        assert table.indexes[0].ts_column == "when"

    def test_default_index_failure(self):
        db = OpenMLDB()
        with pytest.raises(SchemaError):
            db.create_table("t", Schema.from_pairs([("v", "double")]))

    def test_ttl_parsing(self):
        db = OpenMLDB()
        db.execute("CREATE TABLE t (k string, ts timestamp, "
                   "INDEX(KEY=k, TS=ts, TTL=7d, TTL_TYPE=absolute))")
        index = db.table("t").indexes[0]
        assert index.ttl.kind is TTLKind.ABSOLUTE
        assert index.ttl.abs_ttl_ms == 7 * 86_400_000

    def test_latest_ttl_parsing(self):
        db = OpenMLDB()
        db.execute("CREATE TABLE t (k string, ts timestamp, "
                   "INDEX(KEY=k, TS=ts, TTL=100, TTL_TYPE=latest))")
        assert db.table("t").indexes[0].ttl.lat_ttl == 100

    @pytest.mark.parametrize("ttl", ["d", "xxd"])
    def test_malformed_ttl_in_sql_rejected(self, ttl):
        # Used to slip through as int("") / int("xx") ValueError or a
        # silent TTL of 0; now a SchemaError naming the value.
        db = OpenMLDB()
        with pytest.raises(SchemaError, match="TTL"):
            db.execute(f"CREATE TABLE t (k string, ts timestamp, "
                       f"INDEX(KEY=k, TS=ts, TTL={ttl}, "
                       f"TTL_TYPE=absolute))")

    @pytest.mark.parametrize("ttl", ["7x", "-3d", "1.5h", ""])
    def test_malformed_ttl_clause_rejected(self, ttl):
        # Values the SQL tokenizer would never produce still arrive via
        # the programmatic DDL path; the clause validator catches them.
        from repro.sql import ast
        clause = ast.IndexClause(key_columns=("k",), ts_column="ts",
                                 ttl_value=ttl, ttl_type="absolute")
        with pytest.raises(SchemaError, match="TTL"):
            OpenMLDB._index_from_clause(clause)

    def test_disk_storage_engine(self):
        db = OpenMLDB()
        table = db.create_table(
            "t", Schema.from_pairs([("k", "string"),
                                    ("ts", "timestamp")]),
            indexes=[IndexDef(("k",), "ts")], storage="disk")
        db.insert("t", ("a", 5))
        assert table.last_join_lookup(("k",), "a")[0] == 5

    def test_unknown_storage_engine(self):
        db = OpenMLDB()
        with pytest.raises(SchemaError):
            db.create_table(
                "t", Schema.from_pairs([("k", "string"),
                                        ("ts", "timestamp")]),
                indexes=[IndexDef(("k",), "ts")], storage="tape")


class TestDML:
    def test_insert_via_sql(self, db):
        count = db.execute(
            "INSERT INTO trades VALUES ('A', 100, 10.5, 1), "
            "('A', 200, 11.0, 2)")
        assert count == 2
        assert db.table("trades").row_count == 2

    def test_insert_validates(self, db):
        with pytest.raises(Exception):
            db.insert("trades", ("A", "bad", 1.0, 1))

    def test_inserts_flow_to_binlog(self, db):
        db.insert("trades", ("A", 100, 1.0, 1))
        db.insert("trades", ("A", 200, 2.0, 1))
        assert db.replicator.last_offset == 1


class TestDeployAndRequest:
    def test_deploy_and_request(self, db):
        db.insert("trades", ("A", 100, 10.0, 1))
        db.deploy("d", ROLLING)
        features = db.request("d", ("A", 200, 20.0, 1))
        assert features == {"sym": "A", "total": 30.0}

    def test_deploy_via_sql_statement(self, db):
        deployment = db.execute("DEPLOY d " + ROLLING)
        assert deployment.name == "d"
        assert "d" in db.deployments

    def test_duplicate_deployment_rejected(self, db):
        db.deploy("d", ROLLING)
        with pytest.raises(DeploymentError):
            db.deploy("d", ROLLING)

    def test_undeploy(self, db):
        db.deploy("d", ROLLING)
        db.undeploy("d")
        with pytest.raises(DeploymentNotFoundError):
            db.request("d", ("A", 1, 1.0, 1))

    def test_request_unknown_deployment(self, db):
        with pytest.raises(DeploymentNotFoundError):
            db.request("ghost", ("A", 1, 1.0, 1))

    def test_redeploy_hits_compile_cache(self, db):
        db.deploy("d1", ROLLING)
        db.deploy("d2", ROLLING)
        assert db.compile_cache.hits == 1

    def test_long_window_option_via_sql(self, db):
        sql = ('DEPLOY lw OPTIONS(long_windows="w:1h") '
               "SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w "
               "AS (PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 30d PRECEDING AND CURRENT ROW)")
        deployment = db.execute(sql)
        assert deployment.uses_preagg
        assert "w" in deployment.preaggs

    def test_long_window_rows_frame_rejected(self, db):
        with pytest.raises(DeploymentError):
            db.deploy("lw", ROLLING, long_windows="w:1h")

    def test_preagg_request_matches_raw(self, db):
        for index in range(500):
            db.insert("trades", ("A", index * 3_600_000,
                                 float(index % 10), 1))
        sql = ("SELECT sym, sum(px) OVER w AS total FROM trades WINDOW w "
               "AS (PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 20d PRECEDING AND CURRENT ROW)")
        db.deploy("raw", sql)
        db.deploy("fast", sql.replace("total", "total2"),
                  long_windows="w:1d")
        db.flush_preagg()
        request = ("A", 500 * 3_600_000, 7.0, 1)
        raw = db.request("raw", request)["total"]
        fast = db.request("fast", request)["total2"]
        assert fast == pytest.approx(raw)

    def test_preagg_updates_on_insert(self, db):
        sql = ("SELECT sum(px) OVER w AS total FROM trades WINDOW w AS "
               "(PARTITION BY sym ORDER BY ts "
               "ROWS_RANGE BETWEEN 30d PRECEDING AND CURRENT ROW)")
        db.deploy("lw", sql, long_windows="w:1h")
        db.insert("trades", ("A", 3_600_000, 5.0, 1))
        db.flush_preagg()
        aggregator = next(iter(db.deployments["lw"].preaggs["w"].values()))
        assert aggregator.rows_absorbed == 1


class TestOfflineAndPreview:
    def test_offline_query(self, db):
        db.insert("trades", ("A", 100, 10.0, 1))
        db.insert("trades", ("A", 200, 20.0, 1))
        rows, stats = db.offline_query(ROLLING)
        assert rows == [("A", 10.0), ("A", 30.0)]
        assert stats.rows == 2

    def test_execute_select_uses_offline_mode(self, db):
        db.insert("trades", ("A", 100, 10.0, 1))
        rows = db.execute(ROLLING)
        assert rows == [("A", 10.0)]

    def test_preview_limits_and_caches(self, db):
        for index in range(30):
            db.insert("trades", ("A", index, 1.0, 1))
        first = db.preview(ROLLING, limit=5)
        assert len(first) == 5
        second = db.preview(ROLLING, limit=5)
        assert second is first  # served from the preview cache

    def test_preview_row_cap(self, db):
        with pytest.raises(PlanError):
            db.preview(ROLLING, limit=10_000)

    def test_preview_rejects_non_select(self, db):
        with pytest.raises(ParseError):
            db.preview(DDL.replace("trades", "other"))

    def test_preview_limits_partition_columns(self):
        db = OpenMLDB()
        db.execute("CREATE TABLE w (a string, b string, c string, "
                   "d string, e string, ts timestamp, v double, "
                   "INDEX(KEY=(a, b, c, d, e), TS=ts))")
        with pytest.raises(PlanError, match="partition"):
            db.preview(
                "SELECT sum(v) OVER win AS s FROM w WINDOW win AS "
                "(PARTITION BY a, b, c, d, e ORDER BY ts "
                "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")


class TestMemoryIsolation:
    def test_writes_fail_reads_continue(self):
        db = OpenMLDB(max_memory_mb=1)
        db.execute(DDL)
        with pytest.raises(MemoryLimitExceededError):
            for index in range(200_000):
                db.insert("trades", (f"s{index}", index, 1.0, 1))
        # Reads still work after write rejection.
        assert db.table("trades").row_count > 0
        rows, _ = db.offline_query("SELECT sym FROM trades LIMIT 1")
        assert rows


class TestEviction:
    def test_evict_expired_via_db(self):
        db = OpenMLDB()
        db.execute("CREATE TABLE t (k string, ts timestamp, "
                   "INDEX(KEY=k, TS=ts, TTL=1m, TTL_TYPE=absolute))")
        db.insert("t", ("a", 0))
        db.insert("t", ("a", 120_000))
        removed = db.evict_expired(now_ts=120_001)
        assert removed == 1
