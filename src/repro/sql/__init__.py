"""Unified query plan generator: SQL front end shared by both engines."""

from .ast import (DeployStatement, InsertStatement, CreateTableStatement,
                  SelectStatement)
from .compiler import CompilationCache, CompiledQuery, compile_plan
from .parser import parse, parse_select
from .planner import QueryPlan, build_plan

__all__ = [
    "parse", "parse_select", "build_plan", "compile_plan",
    "CompilationCache", "CompiledQuery", "QueryPlan", "SelectStatement",
    "CreateTableStatement", "InsertStatement", "DeployStatement",
]
