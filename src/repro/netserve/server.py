"""The asyncio PostgreSQL-wire server for online feature serving.

:class:`NetServer` listens on a TCP port, speaks the PostgreSQL v3
protocol (simple *and* extended query cycles — see
:mod:`repro.netserve.protocol`), and executes ``EXECUTE <deployment>``
statements against any request backend: a
:class:`~repro.serving.FrontendServer` (the recommended stack — the
socket layer then composes with admission control, micro-batching, and
load shedding), a :class:`~repro.cluster.NameServer`, or a single-node
:class:`~repro.OpenMLDB`.

Design notes
------------

* **One thread owns the event loop.**  ``start()`` spins up a daemon
  thread running an asyncio loop; ``close()`` tears it down and joins.
  The rest of the codebase stays synchronous — the server is a facade,
  not an async rewrite of the stack.
* **The loop never blocks on the backend.**  Feature computation is
  synchronous (engine + storage), so every ``Execute`` hops to a
  :class:`~concurrent.futures.ThreadPoolExecutor`; the loop keeps
  serving other connections' frames meanwhile.  Per connection,
  statements still execute in arrival order (the protocol requires it).
* **Backpressure is two-layered.**  Socket-level: responses go through
  ``writer.drain()``, so a slow reader suspends its own connection
  coroutine without affecting others.  Server-level: the backend's
  admission control sheds with :class:`~repro.errors.OverloadError`,
  which crosses the wire as SQLSTATE 53300/53400 — clients see a
  retryable "insufficient resources" error instead of a hung socket.
* **Deadlines ride ``statement_timeout``.**  ``SET statement_timeout``
  becomes the per-request ``timeout_ms`` handed to the backend (or a
  :class:`~repro.serving.deadline.Deadline` scope when the backend's
  ``request`` does not take a timeout), so the wire knob and the
  serving-stack knob are the same mechanism.  Expiry surfaces as
  SQLSTATE 57014 (query_canceled), exactly where psql users expect it.

Protocol reference and flow diagrams: ``docs/network_protocol.md``.
"""

from __future__ import annotations

import asyncio
import inspect
import itertools
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import (DeploymentNotFoundError, OpenMLDBError, ParseError,
                      ProtocolError, StorageError)
from ..obs import NULL_OBS, Observability
from ..serving.deadline import Deadline, deadline_scope
from ..serving.describe import DeploymentDescriptor
from . import protocol as wire
from .statements import (ControlStatement, EmptyStatement,
                         ExecuteDeployment, Param, SelectConstant,
                         SetOption, ShowOption, TransactionNoop, classify,
                         parse_timeout_ms, split_statements)

__all__ = ["NetServer"]

#: ParameterStatus pairs sent after authentication.  psycopg refuses to
#: finish connecting without ``server_version`` / ``client_encoding``;
#: ``integer_datetimes`` matters if a client ever binds binary values.
_SERVER_PARAMETERS = (
    ("server_version", "15.0 (repro-openmldb)"),
    ("server_encoding", "UTF8"),
    ("client_encoding", "UTF8"),
    ("DateStyle", "ISO, YMD"),
    ("integer_datetimes", "on"),
    ("standard_conforming_strings", "on"),
    ("is_superuser", "off"),
)


class _WireError(Exception):
    """An error born at the protocol layer with an explicit SQLSTATE."""

    def __init__(self, sqlstate: str, message: str) -> None:
        super().__init__(message)
        self.sqlstate = sqlstate


class _Prepared:
    """A parsed statement: classification + (for EXECUTE) its binding.

    ``param_types`` maps ``$n`` index → the request column's
    :class:`~repro.types.ColumnType`, resolved from the deployment's
    input schema at Parse time — so Bind can coerce wire bytes and
    Describe can answer ParameterDescription without touching the
    backend again.
    """

    __slots__ = ("name", "statement", "descriptor", "param_types",
                 "param_oids")

    def __init__(self, name: str, statement: Any,
                 descriptor: Optional[DeploymentDescriptor],
                 param_types: Sequence[Any]) -> None:
        self.name = name
        self.statement = statement
        self.descriptor = descriptor
        self.param_types = tuple(param_types)
        self.param_oids = tuple(
            wire.TYPE_OIDS[column_type] for column_type in param_types)

    def result_columns(self) -> Optional[List[Tuple[str, int]]]:
        """RowDescription columns, or None when the form returns no rows.

        Feature outputs are described as ``text`` (OID 25): the engine
        knows output *names* statically but not output types, and every
        value crosses the wire in text format anyway.
        """
        statement = self.statement
        if isinstance(statement, ExecuteDeployment):
            assert self.descriptor is not None
            return [(name, wire.TEXT_OID)
                    for name in self.descriptor.output_names]
        if isinstance(statement, SelectConstant):
            return [("?column?", 23)]  # int4
        if isinstance(statement, ShowOption):
            return [(statement.name, wire.TEXT_OID)]
        return None


class _Portal:
    """A bound statement: the prepared form plus its materialised row."""

    __slots__ = ("prepared", "row")

    def __init__(self, prepared: _Prepared,
                 row: Optional[Tuple[Any, ...]]) -> None:
        self.prepared = prepared
        self.row = row


class _Session:
    """Per-connection state: prepared statements, portals, settings."""

    __slots__ = ("statements", "portals", "settings", "timeout_ms",
                 "in_error")

    def __init__(self, startup: Dict[str, str],
                 default_timeout_ms: Optional[float]) -> None:
        self.statements: Dict[str, _Prepared] = {}
        self.portals: Dict[str, _Portal] = {}
        self.settings: Dict[str, str] = dict(startup)
        self.timeout_ms = default_timeout_ms
        self.in_error = False  # extended protocol: skip until Sync


class NetServer:
    """An asyncio PostgreSQL-wire frontend over a request backend.

    Args:
        backend: the request path — anything with
            ``request(name, row)`` and ``describe_deployment(name)``
            (:class:`~repro.serving.FrontendServer`,
            :class:`~repro.cluster.NameServer`, or
            :class:`~repro.OpenMLDB`).  When ``request`` accepts
            ``timeout_ms`` it is passed through; otherwise the server
            wraps the call in a deadline scope.
        host / port: bind address; port 0 picks a free port (see the
            ``address`` property after :meth:`start`).
        obs: observability handle for ``netserve.*`` metrics and
            ``net.request`` spans.
        admin: optional control-plane backend with ``execute(sql)``
            (usually an :class:`~repro.OpenMLDB`).  When present,
            ``CREATE TABLE`` / ``INSERT`` / ``DEPLOY`` statements are
            forwarded to it; when absent they are refused with
            SQLSTATE 42501.
        executor_workers: thread-pool size for blocking backend calls —
            the network path's execution concurrency.
        max_frame_bytes: refuse frames larger than this (08P01) and
            close the connection; bounds per-connection memory.
        max_connections: concurrent-connection cap; excess connections
            are told 53300 at startup and closed.
        default_timeout_ms: per-session ``statement_timeout`` starting
            value (clients override with ``SET statement_timeout``).
    """

    def __init__(self, backend: Any, *,
                 host: str = "127.0.0.1", port: int = 0,
                 obs: Optional[Observability] = None,
                 admin: Any = None,
                 executor_workers: int = 8,
                 max_frame_bytes: int = 1 << 20,
                 max_connections: int = 64,
                 default_timeout_ms: Optional[float] = None) -> None:
        self._backend = backend
        self._admin = admin
        self._host = host
        self._port = port
        self._obs = obs or NULL_OBS
        self._max_frame_bytes = max_frame_bytes
        self._max_connections = max_connections
        self._default_timeout_ms = default_timeout_ms
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="netserve-exec")
        try:
            request_params = inspect.signature(
                backend.request).parameters
        except (TypeError, ValueError):  # builtins / mocks
            request_params = {}
        self._request_takes_timeout = "timeout_ms" in request_params
        self._request_takes_tenant = "tenant" in request_params

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._connection_count = 0
        self._connection_lock = threading.Lock()
        self._key_seq = itertools.count(1)

        registry = self._obs.registry
        self._g_connections = registry.gauge("netserve.connections")
        self._m_connections = registry.counter("netserve.connections.total")
        self._m_refused = registry.counter("netserve.connections.refused")
        self._m_bytes_in = registry.counter("netserve.bytes.in")
        self._m_bytes_out = registry.counter("netserve.bytes.out")
        self._h_request = registry.histogram("netserve.request.ms")
        self._statement_counters: Dict[str, Any] = {}
        self._error_counters: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle (sync facade over the loop thread)

    def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the listening ``(host, port)``."""
        with self._lifecycle_lock:
            if self._thread is not None:
                raise OpenMLDBError("NetServer already started")
            self._thread = threading.Thread(
                target=self._run_loop, name="netserve-loop", daemon=True)
            self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            error = self._start_error
            self.close()
            raise OpenMLDBError(f"NetServer failed to bind "
                                f"{self._host}:{self._port}: {error}")
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`start`."""
        if self._server is None:
            raise OpenMLDBError("NetServer is not listening")
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._serve_connection,
                                         self._host, self._port))
            except BaseException as exc:
                self._start_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
            # close() requested: stop listening, let handlers unwind.
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
        finally:
            loop.close()

    def close(self, timeout: float = 10.0) -> None:
        """Stop serving, join the loop thread, shut the executor down.

        Idempotent.  Open connections are cancelled, not drained — the
        PG protocol has no server-side goodbye, and clients treat EOF
        as disconnect.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "NetServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # connection handling

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        with self._connection_lock:
            self._connection_count += 1
            count = self._connection_count
        self._m_connections.inc()
        self._g_connections.set(count)
        try:
            if count > self._max_connections:
                self._m_refused.inc()
                await self._refuse(reader, writer)
                return
            await self._handle(reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer went away mid-message: nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown: drop the connection quietly
        finally:
            with self._connection_lock:
                self._connection_count -= 1
                count = self._connection_count
            self._g_connections.set(count)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _refuse(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Over the connection cap: finish startup, then shed politely."""
        if await self._startup(reader, writer, announce=False) is None:
            return
        await self._send(writer, wire.error_response(
            "53300", f"too many connections "
            f"(max_connections={self._max_connections})",
            severity="FATAL"))

    async def _startup(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       announce: bool = True) -> Optional[Dict[str, str]]:
        """Run the startup phase; returns startup params, None to drop."""
        while True:
            raw_length = await reader.readexactly(4)
            (length,) = struct.unpack(">i", raw_length)
            if length < 8 or length > self._max_frame_bytes:
                await self._send(writer, wire.error_response(
                    "08P01", f"invalid startup packet length {length}",
                    severity="FATAL"))
                return None
            payload = await reader.readexactly(length - 4)
            self._m_bytes_in.inc(length)
            (code,) = struct.unpack(">i", payload[:4])
            if code in (wire.SSL_REQUEST_CODE, wire.GSSENC_REQUEST_CODE):
                writer.write(b"N")  # no TLS/GSS: please retry in clear
                await writer.drain()
                continue
            if code == wire.CANCEL_REQUEST_CODE:
                return None  # cancellation is best-effort: ignore
            if code != wire.PROTOCOL_VERSION_3:
                await self._send(writer, wire.error_response(
                    "08P01", f"unsupported protocol code {code}",
                    severity="FATAL"))
                return None
            break
        buf = wire.Buffer(payload[4:])
        params: Dict[str, str] = {}
        while buf.remaining > 1:
            key = buf.read_cstr()
            if not key:
                break
            params[key] = buf.read_cstr()
        if announce:
            out = [wire.authentication_ok()]
            out.extend(wire.parameter_status(key, value)
                       for key, value in _SERVER_PARAMETERS)
            key_id = next(self._key_seq)
            out.append(wire.backend_key_data(key_id, key_id * 7919))
            out.append(wire.ready_for_query())
            await self._send(writer, b"".join(out))
        return params

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        startup = await self._startup(reader, writer)
        if startup is None:
            return
        session = _Session(startup, self._default_timeout_ms)
        while True:
            header = await reader.readexactly(5)
            type_byte = header[:1]
            (length,) = struct.unpack(">i", header[1:])
            if length < 4 or length > self._max_frame_bytes:
                self._count_error("08P01")
                await self._send(writer, wire.error_response(
                    "08P01", f"frame of {length} bytes exceeds "
                    f"max_frame_bytes={self._max_frame_bytes}",
                    severity="FATAL"))
                return
            payload = await reader.readexactly(length - 4)
            self._m_bytes_in.inc(length + 1)
            if type_byte == b"X":      # Terminate
                return
            if not await self._dispatch(writer, session, type_byte,
                                        payload):
                return

    async def _dispatch(self, writer: asyncio.StreamWriter,
                        session: _Session, type_byte: bytes,
                        payload: bytes) -> bool:
        """Handle one typed frame; False closes the connection."""
        if type_byte == b"Q":
            await self._on_simple_query(writer, session, payload)
            return True
        if type_byte == b"S":          # Sync: recover from error state
            session.in_error = False
            await self._send(writer, wire.ready_for_query())
            return True
        if type_byte == b"H":          # Flush
            await writer.drain()
            return True
        if session.in_error:
            # Skip-until-Sync: a failed step poisons the rest of the
            # pipeline; queued messages are discarded, not executed.
            return True
        handlers = {b"P": self._on_parse, b"B": self._on_bind,
                    b"D": self._on_describe, b"E": self._on_execute,
                    b"C": self._on_close}
        handler = handlers.get(type_byte)
        if handler is None:
            self._count_error("08P01")
            await self._send(writer, wire.error_response(
                "08P01", f"unexpected message type "
                f"{type_byte.decode('latin-1')!r}", severity="FATAL"))
            return False
        try:
            await handler(writer, session, payload)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            session.in_error = True
            await self._send_error(writer, exc)
        return True

    # ------------------------------------------------------------------
    # simple query protocol

    async def _on_simple_query(self, writer: asyncio.StreamWriter,
                               session: _Session,
                               payload: bytes) -> None:
        sql = wire.parse_simple_query(payload)
        session.in_error = False  # a simple Query implicitly resyncs
        for statement_sql in split_statements(sql):
            try:
                statement = classify(statement_sql)
                await self._run_simple(writer, session, statement)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                await self._send_error(writer, exc)
                break  # remaining statements in this Q are abandoned
        await self._send(writer, wire.ready_for_query())

    async def _run_simple(self, writer: asyncio.StreamWriter,
                          session: _Session, statement: Any) -> None:
        self._count_statement("simple")
        if isinstance(statement, EmptyStatement):
            await self._send(writer, wire.empty_query_response())
            return
        if isinstance(statement, ExecuteDeployment):
            prepared = self._prepare(session, "", statement)
            if prepared.param_types:
                raise ParseError("simple-protocol EXECUTE cannot carry "
                                 "$n placeholders; use the extended "
                                 "protocol (Parse/Bind/Execute)")
            portal = _Portal(prepared, self._bind_row(prepared, [], []))
            columns = prepared.result_columns()
            rows = await self._execute_portal(session, portal, "simple")
            out = [wire.row_description(columns)]
            out.extend(wire.data_row(row) for row in rows)
            out.append(wire.command_complete(f"SELECT {len(rows)}"))
            await self._send(writer, b"".join(out))
            return
        await self._run_utility(writer, session, statement,
                                describe_rows=True)

    async def _run_utility(self, writer: asyncio.StreamWriter,
                           session: _Session, statement: Any, *,
                           describe_rows: bool) -> None:
        """Execute the non-deployment forms (shared by both protocols)."""
        if isinstance(statement, TransactionNoop):
            await self._send(writer,
                             wire.command_complete(statement.tag))
        elif isinstance(statement, SetOption):
            if statement.name == "statement_timeout":
                session.timeout_ms = parse_timeout_ms(statement.value)
            session.settings[statement.name] = statement.value
            await self._send(writer, wire.command_complete("SET"))
        elif isinstance(statement, ShowOption):
            value = self._show(session, statement.name)
            out = []
            if describe_rows:
                out.append(wire.row_description(
                    [(statement.name, wire.TEXT_OID)]))
            out.append(wire.data_row([value.encode("utf-8")]))
            out.append(wire.command_complete("SHOW"))
            await self._send(writer, b"".join(out))
        elif isinstance(statement, SelectConstant):
            out = []
            if describe_rows:
                out.append(wire.row_description([("?column?", 23)]))
            out.append(wire.data_row(
                [str(statement.value).encode("ascii")]))
            out.append(wire.command_complete("SELECT 1"))
            await self._send(writer, b"".join(out))
        elif isinstance(statement, ControlStatement):
            tag = await self._run_control(statement)
            await self._send(writer, wire.command_complete(tag))
        else:
            raise ProtocolError(
                f"unhandled statement form {type(statement).__name__}")

    def _show(self, session: _Session, name: str) -> str:
        if name == "statement_timeout":
            timeout = session.timeout_ms
            return "0" if timeout is None else f"{timeout:g}ms"
        for key, value in _SERVER_PARAMETERS:
            if key.lower() == name:
                return value
        if name in session.settings:
            return session.settings[name]
        raise _WireError("42704",
                         f"unrecognized configuration parameter {name!r}")

    async def _run_control(self, statement: ControlStatement) -> str:
        if self._admin is None:
            raise _WireError(
                "42501", f"{statement.kind} is not allowed on this "
                "endpoint (server started without an admin backend)")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._executor, self._admin.execute, statement.sql)
        return {"CREATE TABLE": "CREATE TABLE",
                "INSERT": "INSERT 0 1",
                "DEPLOY": "DEPLOY"}[statement.kind]

    # ------------------------------------------------------------------
    # extended query protocol

    async def _on_parse(self, writer: asyncio.StreamWriter,
                        session: _Session, payload: bytes) -> None:
        name, sql, _oids = wire.parse_parse(payload)
        statement = classify(sql)
        session.statements[name] = self._prepare(session, name, statement)
        await self._send(writer, wire.parse_complete())

    def _prepare(self, session: _Session, name: str,
                 statement: Any) -> _Prepared:
        if not isinstance(statement, ExecuteDeployment):
            return _Prepared(name, statement, None, ())
        try:
            descriptor = self._backend.describe_deployment(
                statement.deployment)
        except (DeploymentNotFoundError, StorageError) as exc:
            raise _WireError(
                "26000", f"unknown deployment "
                f"{statement.deployment!r}: {exc}") from None
        args = statement.args
        if args is None:
            # `EXECUTE name` with no argument list: every request
            # column is a placeholder, in schema order.
            args = tuple(Param(index)
                         for index in range(descriptor.arity))
            statement = ExecuteDeployment(statement.deployment, args)
        if len(args) != descriptor.arity:
            raise _WireError(
                "42P08", f"deployment {statement.deployment!r} takes "
                f"{descriptor.arity} request values, statement "
                f"supplies {len(args)}")
        columns = list(descriptor.input_schema)
        param_types: Dict[int, Any] = {}
        for position, arg in enumerate(args):
            if isinstance(arg, Param):
                param_types[arg.index] = columns[position].type
        if param_types:
            count = max(param_types) + 1
            missing = [f"${index + 1}" for index in range(count)
                       if index not in param_types]
            if missing:
                raise _WireError(
                    "42P02", "parameter(s) "
                    f"{', '.join(missing)} are never used")
            ordered = [param_types[index] for index in range(count)]
        else:
            ordered = []
        return _Prepared(name, statement, descriptor, ordered)

    async def _on_bind(self, writer: asyncio.StreamWriter,
                       session: _Session, payload: bytes) -> None:
        (portal_name, statement_name, param_formats, raw_params,
         _result_formats) = wire.parse_bind(payload)
        prepared = session.statements.get(statement_name)
        if prepared is None:
            raise _WireError(
                "26000",
                f"unknown prepared statement {statement_name!r}")
        row = self._bind_row(prepared, param_formats, raw_params)
        session.portals[portal_name] = _Portal(prepared, row)
        await self._send(writer, wire.bind_complete())

    def _bind_row(self, prepared: _Prepared,
                  param_formats: Sequence[int],
                  raw_params: Sequence[Optional[bytes]],
                  ) -> Optional[Tuple[Any, ...]]:
        param_types = prepared.param_types
        if not isinstance(prepared.statement, ExecuteDeployment):
            if raw_params:
                raise _WireError(
                    "42P02", "statement takes no parameters")
            return None
        if len(raw_params) != len(param_types):
            raise _WireError(
                "08P01", f"bind supplies {len(raw_params)} parameters, "
                f"statement wants {len(param_types)}")
        values = []
        for index, raw in enumerate(raw_params):
            # Per the PG spec: no formats = all text, one format =
            # applies to all, otherwise one per parameter.
            if not param_formats:
                binary = False
            elif len(param_formats) == 1:
                binary = bool(param_formats[0])
            elif index < len(param_formats):
                binary = bool(param_formats[index])
            else:
                raise _WireError(
                    "08P01", "parameter format count mismatch")
            values.append(wire.decode_parameter(
                raw, param_types[index], binary))
        row = []
        for arg in prepared.statement.args:
            row.append(values[arg.index] if isinstance(arg, Param)
                       else arg)
        return tuple(row)

    async def _on_describe(self, writer: asyncio.StreamWriter,
                           session: _Session, payload: bytes) -> None:
        kind, name = wire.parse_describe(payload)
        if kind == "S":
            prepared = session.statements.get(name)
            if prepared is None:
                raise _WireError(
                    "26000", f"unknown prepared statement {name!r}")
            out = [wire.parameter_description(prepared.param_oids)]
        elif kind == "P":
            portal = session.portals.get(name)
            if portal is None:
                raise _WireError("34000", f"unknown portal {name!r}")
            prepared = portal.prepared
            out = []
        else:
            raise ProtocolError(f"invalid describe kind {kind!r}")
        columns = prepared.result_columns()
        out.append(wire.row_description(columns)
                   if columns is not None else wire.no_data())
        await self._send(writer, b"".join(out))

    async def _on_execute(self, writer: asyncio.StreamWriter,
                          session: _Session, payload: bytes) -> None:
        portal_name, _max_rows = wire.parse_execute(payload)
        portal = session.portals.get(portal_name)
        if portal is None:
            raise _WireError("34000",
                             f"unknown portal {portal_name!r}")
        self._count_statement("extended")
        statement = portal.prepared.statement
        if isinstance(statement, EmptyStatement):
            await self._send(writer, wire.empty_query_response())
            return
        if isinstance(statement, ExecuteDeployment):
            rows = await self._execute_portal(session, portal, "extended")
            out = [wire.data_row(row) for row in rows]
            out.append(wire.command_complete(f"SELECT {len(rows)}"))
            await self._send(writer, b"".join(out))
            return
        # Utility forms: Describe already sent RowDescription (or
        # NoData), so only rows + completion go out here.
        await self._run_utility(writer, session, statement,
                                describe_rows=False)

    async def _on_close(self, writer: asyncio.StreamWriter,
                        session: _Session, payload: bytes) -> None:
        kind, name = wire.parse_close(payload)
        if kind == "S":
            session.statements.pop(name, None)
        elif kind == "P":
            session.portals.pop(name, None)
        else:
            raise ProtocolError(f"invalid close kind {kind!r}")
        await self._send(writer, wire.close_complete())

    # ------------------------------------------------------------------
    # execution

    async def _execute_portal(self, session: _Session, portal: _Portal,
                              protocol: str) -> List[List[Optional[bytes]]]:
        """Run one deployment request off-loop; encode the feature row."""
        prepared = portal.prepared
        statement = prepared.statement
        assert isinstance(statement, ExecuteDeployment)
        assert portal.row is not None
        timeout_ms = session.timeout_ms
        tenant = session.settings.get("user", "")
        loop = asyncio.get_running_loop()
        features = await loop.run_in_executor(
            self._executor, self._request_blocking,
            statement.deployment, portal.row, timeout_ms, protocol,
            tenant)
        ordered = [features.get(name)
                   for name in prepared.descriptor.output_names]
        return [[wire.encode_text(value) for value in ordered]]

    def _request_blocking(self, deployment: str, row: Tuple[Any, ...],
                          timeout_ms: Optional[float],
                          protocol: str,
                          tenant: str = "") -> Dict[str, Any]:
        """The executor-thread half of Execute: backend call + tracing.

        The session's startup ``user`` rides along as the tenant when
        the backend's ``request`` accepts one (the serving frontend
        does), so per-tenant budgets apply to network clients with no
        wire-protocol extension — PostgreSQL already sends the user.
        """
        started = time.monotonic()
        kwargs: Dict[str, Any] = {}
        if tenant and self._request_takes_tenant:
            kwargs["tenant"] = tenant
        with self._obs.tracer.span("net.request", deployment=deployment,
                                   protocol=protocol):
            try:
                if self._request_takes_timeout:
                    return self._backend.request(
                        deployment, row, timeout_ms=timeout_ms,
                        **kwargs)
                if timeout_ms is not None:
                    with deadline_scope(Deadline.after(timeout_ms)):
                        return self._backend.request(deployment, row,
                                                     **kwargs)
                return self._backend.request(deployment, row, **kwargs)
            finally:
                self._h_request.observe(
                    (time.monotonic() - started) * 1_000.0)

    # ------------------------------------------------------------------
    # plumbing

    async def _send(self, writer: asyncio.StreamWriter,
                    data: bytes) -> None:
        writer.write(data)
        self._m_bytes_out.inc(len(data))
        await writer.drain()  # socket backpressure: slow reader, slow us

    async def _send_error(self, writer: asyncio.StreamWriter,
                          error: BaseException) -> None:
        if isinstance(error, _WireError):
            sqlstate = error.sqlstate
            message = str(error)
        elif isinstance(error, OpenMLDBError):
            sqlstate = wire.sqlstate_for(error)
            message = str(error)
        else:
            sqlstate = "XX000"
            message = f"{type(error).__name__}: {error}"
        self._count_error(sqlstate)
        await self._send(writer,
                         wire.error_response(sqlstate, message))

    def _count_statement(self, protocol: str) -> None:
        counter = self._statement_counters.get(protocol)
        if counter is None:
            counter = self._obs.registry.counter(
                "netserve.statements", protocol=protocol)
            self._statement_counters[protocol] = counter
        counter.inc()

    def _count_error(self, sqlstate: str) -> None:
        counter = self._error_counters.get(sqlstate)
        if counter is None:
            counter = self._obs.registry.counter(
                "netserve.errors", sqlstate=sqlstate)
            self._error_counters[sqlstate] = counter
        counter.inc()
