"""Tablet servers: the storage/serving nodes of the simulated cluster.

Production OpenMLDB shards each table into partitions hosted by tablet
servers, with per-partition replica groups; ZooKeeper coordinates
membership and the nameserver assigns leadership.  This in-process
simulation keeps the same structure — shards, replicas, leader/follower
roles, heartbeat liveness, per-tablet memory governance — so cluster
behaviours (failover, replica reads, memory isolation per Section 8.2)
are testable without a network.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..errors import StorageError
from ..memory.governor import MemoryGovernor
from ..obs import NULL_OBS, Observability
from ..schema import IndexDef, Row, Schema
from ..storage.memtable import MemTable

__all__ = ["Shard", "TabletServer"]


@dataclasses.dataclass
class Shard:
    """One partition replica of a table hosted on a tablet.

    ``is_leader`` marks the replica accepting writes; followers apply
    replicated rows and serve reads.
    """

    table: str
    partition_id: int
    store: MemTable
    is_leader: bool = False
    applied_offset: int = -1


class TabletServer:
    """One simulated tablet server.

    Args:
        name: tablet id (e.g. ``"tablet-0"``).
        max_memory_mb: per-tablet write limit (Section 8.2).
        obs: observability handle; RPC counters are labelled
            ``tablet=<name>`` so per-node series merge cleanly.
    """

    def __init__(self, name: str,
                 max_memory_mb: Optional[int] = None,
                 obs: Optional[Observability] = None) -> None:
        self.name = name
        self.governor = MemoryGovernor(name, max_memory_mb=max_memory_mb)
        self._shards: Dict[Tuple[str, int], Shard] = {}
        self._lock = threading.Lock()
        self.alive = True
        self.bind_obs(obs or NULL_OBS)

    def bind_obs(self, obs: Observability) -> None:
        """(Re)attach observability — the nameserver calls this on join."""
        self._obs = obs
        metrics = obs.registry.labels(tablet=self.name)
        self._m_writes = metrics.counter("tablet.rpc.writes")
        self._m_reads = metrics.counter("tablet.rpc.reads")
        self._m_scans = metrics.counter("tablet.rpc.scans")

    # ------------------------------------------------------------------

    def host_shard(self, table: str, partition_id: int, schema: Schema,
                   indexes: Sequence[IndexDef],
                   is_leader: bool) -> Shard:
        key = (table, partition_id)
        with self._lock:
            if key in self._shards:
                raise StorageError(
                    f"{self.name} already hosts {table}[{partition_id}]")
            shard = Shard(
                table=table, partition_id=partition_id,
                store=MemTable(f"{table}#{partition_id}@{self.name}",
                               schema, indexes, obs=self._obs),
                is_leader=is_leader)
            self._shards[key] = shard
            return shard

    def shard(self, table: str, partition_id: int) -> Shard:
        try:
            return self._shards[(table, partition_id)]
        except KeyError:
            raise StorageError(
                f"{self.name} does not host {table}[{partition_id}]"
            ) from None

    def has_shard(self, table: str, partition_id: int) -> bool:
        return (table, partition_id) in self._shards

    def shards(self) -> Iterator[Shard]:
        return iter(list(self._shards.values()))

    # ------------------------------------------------------------------

    def write(self, table: str, partition_id: int, row: Row,
              offset: int) -> None:
        """Apply one row to a hosted shard (leader write or replication).

        Raises:
            StorageError: if the tablet is down.
            MemoryLimitExceededError: past the tablet's memory limit
                (reads keep working — the isolation contract).
        """
        if not self.alive:
            raise StorageError(f"{self.name} is down")
        shard = self.shard(table, partition_id)
        self.governor.charge(shard.store.codec.encoded_size(
            shard.store.schema.validate_row(row)))
        shard.store.insert(row)
        shard.applied_offset = offset
        self._m_writes.inc()

    def read_latest(self, table: str, partition_id: int,
                    keys: Sequence[str], key_value: Any
                    ) -> Optional[Tuple[int, Row]]:
        if not self.alive:
            raise StorageError(f"{self.name} is down")
        self._m_reads.inc()
        return self.shard(table, partition_id).store.last_join_lookup(
            keys, key_value)

    # ------------------------------------------------------------------
    # serving-path reads (trace-context aware — the simulated RPC surface)

    def window_scan(self, table: str, partition_id: int,
                    keys: Sequence[str], ts_column: str, key_value: Any,
                    start_ts: Optional[int] = None,
                    end_ts: Optional[int] = None,
                    limit: Optional[int] = None,
                    trace_ctx: Optional[Dict[str, int]] = None
                    ) -> list:
        """Scan one partition's window rows, resuming the caller's trace.

        ``trace_ctx`` is what the nameserver's :meth:`Tracer.inject`
        produced — the same trace-context propagation a real RPC carries,
        which stitches the tablet-side spans into the request trace.
        """
        if not self.alive:
            raise StorageError(f"{self.name} is down")
        self._m_scans.inc()
        store = self.shard(table, partition_id).store
        tracer = self._obs.tracer
        with tracer.start_from(trace_ctx, "index.seek", tablet=self.name,
                               table=table, partition=partition_id) as seek:
            index = store.find_index(keys, ts_column)
            seek.set_tag(index=index.name)
        with tracer.start_from(trace_ctx, "window.scan", tablet=self.name,
                               table=table, partition=partition_id) as span:
            rows = list(store.window_scan(
                keys, ts_column, key_value, start_ts=start_ts,
                end_ts=end_ts, limit=limit))
            span.set_tag(rows=len(rows))
        return rows

    def last_join_lookup(self, table: str, partition_id: int,
                         keys: Sequence[str], key_value: Any,
                         before_ts: Optional[int] = None,
                         trace_ctx: Optional[Dict[str, int]] = None
                         ) -> Optional[Tuple[int, Row]]:
        """LAST JOIN point lookup on one partition, trace-context aware."""
        if not self.alive:
            raise StorageError(f"{self.name} is down")
        self._m_reads.inc()
        store = self.shard(table, partition_id).store
        with self._obs.tracer.start_from(
                trace_ctx, "index.seek", tablet=self.name, table=table,
                partition=partition_id) as span:
            hit = store.last_join_lookup(keys, key_value,
                                         before_ts=before_ts)
            span.set_tag(hit=hit is not None)
        return hit

    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: the tablet stops serving."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def promote(self, table: str, partition_id: int) -> None:
        self.shard(table, partition_id).is_leader = True

    def demote(self, table: str, partition_id: int) -> None:
        self.shard(table, partition_id).is_leader = False
