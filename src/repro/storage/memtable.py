"""In-memory table: schema + stream-focused indexes over skiplists.

A :class:`MemTable` owns one :class:`~repro.storage.skiplist.TimeSeriesIndex`
per declared :class:`~repro.schema.IndexDef`.  Every insert is validated
against the schema, appended to all indexes, and (optionally) reported to a
binlog subscriber — the hook the online engine's pre-aggregation update
pipeline attaches to (Section 5.1).

Window reads go through :meth:`window_scan` / :meth:`last_join_lookup`,
which pick the index matching the requested ``PARTITION BY`` / ``ORDER BY``
columns; full scans (offline mode) iterate the insertion log.
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..errors import IndexNotFoundError, SchemaError, StorageError
from ..obs import NULL_OBS, Observability
from ..schema import IndexDef, Row, Schema
from ..types import ColumnType
from .encoding import RowCodec
from .skiplist import TimeSeriesIndex

__all__ = ["MemTable", "normalize_ts"]

InsertCallback = Callable[[str, Row, int], None]
EvictionCallback = Callable[[str, int], None]


def normalize_ts(value: Any) -> int:
    """Convert a timestamp column value to integer milliseconds.

    Naive datetimes are interpreted as UTC: ``.timestamp()`` on a naive
    value applies the *local* timezone, so the same dataset would hash
    into different window buckets depending on the machine's ``TZ`` —
    a silent source of train/serve skew.
    """
    if isinstance(value, int):
        return value
    if isinstance(value, _dt.datetime):
        if value.tzinfo is None:
            value = value.replace(tzinfo=_dt.timezone.utc)
        return int(value.timestamp() * 1000)
    raise StorageError(f"cannot use {value!r} as a timestamp")


class MemTable:
    """One in-memory table with stream-focused indexing.

    Args:
        name: table name.
        schema: the column layout.
        indexes: stream indexes; the first is the default access path.
        replicas: replica count, used by the memory estimator and cluster
            simulation (data itself is stored once in-process).
        seed: RNG seed for skiplist level generation (reproducibility).
        obs: observability handle; the default disabled instance makes
            every instrument a shared no-op.
    """

    def __init__(self, name: str, schema: Schema,
                 indexes: Sequence[IndexDef],
                 replicas: int = 1,
                 seed: Optional[int] = 0,
                 obs: Optional[Observability] = None) -> None:
        if not indexes:
            raise SchemaError(f"table {name!r} needs at least one index")
        for index in indexes:
            for column_name in (*index.key_columns, index.ts_column):
                if column_name not in schema:
                    raise SchemaError(
                        f"index {index.name!r} references unknown column "
                        f"{column_name!r}")
            ts_type = schema.column(index.ts_column).type
            if ts_type not in (ColumnType.TIMESTAMP, ColumnType.BIGINT):
                raise SchemaError(
                    f"index {index.name!r}: ORDER BY column must be a "
                    f"timestamp or bigint, got {ts_type.sql_name}")
        self.name = name
        self.schema = schema
        self.indexes: Tuple[IndexDef, ...] = tuple(indexes)
        self.replicas = replicas
        self.codec = RowCodec(schema)
        self._structures: Dict[str, TimeSeriesIndex] = {
            index.name: TimeSeriesIndex(ttl=index.ttl, seed=seed)
            for index in indexes
        }
        self._key_positions: Dict[str, Tuple[int, ...]] = {
            index.name: tuple(schema.position(k) for k in index.key_columns)
            for index in indexes
        }
        self._ts_positions: Dict[str, int] = {
            index.name: schema.position(index.ts_column)
            for index in indexes
        }
        self._log: List[Row] = []
        self._log_lock = threading.Lock()
        self._subscribers: List[InsertCallback] = []
        self._eviction_subscribers: List[EvictionCallback] = []
        self._bytes = 0
        metrics = (obs or NULL_OBS).registry.labels(table=name)
        self._m_inserts = metrics.counter("storage.inserts")
        self._m_seeks = metrics.counter("storage.index.seeks")
        self._m_scans = metrics.counter("storage.window.scans")
        self._m_ttl_evicted = metrics.counter("storage.ttl.evicted")

    # ------------------------------------------------------------------
    # write path

    def subscribe(self, callback: InsertCallback) -> None:
        """Register a callback invoked as ``callback(table, row, offset)``.

        The offset is the row's position in the insertion log — the
        monotone "binlog offset" of Section 5.1.
        """
        self._subscribers.append(callback)

    def subscribe_eviction(self, callback: EvictionCallback) -> None:
        """Register a callback invoked as ``callback(table, now_ts)``
        *after* a TTL sweep — the hook incremental window state uses to
        mirror eviction so its buffers never outlive the index rows."""
        self._eviction_subscribers.append(callback)

    @property
    def eviction_subscribers(self) -> Tuple[EvictionCallback, ...]:
        """Registered eviction callbacks (recovery re-attaches these)."""
        return tuple(self._eviction_subscribers)

    def insert(self, row: Sequence[Any]) -> int:
        """Validate and insert one row; returns its log offset."""
        validated = self.schema.validate_row(row)
        with self._log_lock:
            offset = len(self._log)
            self._log.append(validated)
        self._bytes += self.codec.encoded_size(validated)
        for index in self.indexes:
            key = self._index_key(index.name, validated)
            ts = normalize_ts(validated[self._ts_positions[index.name]])
            self._structures[index.name].put(key, ts, validated)
        for callback in self._subscribers:
            callback(self.name, validated, offset)
        self._m_inserts.inc()
        return offset

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> int:
        """Insert rows in order; returns the number inserted."""
        for row in rows:
            self.insert(row)
        return len(rows)

    def _index_key(self, index_name: str, row: Row) -> Any:
        positions = self._key_positions[index_name]
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[position] for position in positions)

    # ------------------------------------------------------------------
    # read path

    @property
    def row_count(self) -> int:
        return len(self._log)

    @property
    def memory_bytes(self) -> int:
        """Compact-encoded payload bytes currently held (for Table 2)."""
        return self._bytes

    def rows(self) -> Iterator[Row]:
        """Full scan in insertion order (offline mode access path)."""
        return iter(self._log)

    def find_index(self, keys: Sequence[str],
                   ts: Optional[str] = None) -> IndexDef:
        """Return the index serving ``PARTITION BY keys ORDER BY ts``.

        Raises:
            IndexNotFoundError: when no declared index matches; the paper's
                engine would reject the deployment at plan time, and so do we.
        """
        for index in self.indexes:
            if index.matches(keys, ts):
                return index
        raise IndexNotFoundError(
            f"table {self.name!r} has no index on keys={tuple(keys)} "
            f"ts={ts!r}; declared: "
            f"{[(i.key_columns, i.ts_column) for i in self.indexes]}")

    def structure(self, index_name: str) -> TimeSeriesIndex:
        return self._structures[index_name]

    def window_scan(self, keys: Sequence[str], ts_column: str,
                    key_value: Any, start_ts: Optional[int] = None,
                    end_ts: Optional[int] = None,
                    limit: Optional[int] = None
                    ) -> Iterator[Tuple[int, Row]]:
        """Yield ``(ts, row)`` newest-first for one partition key.

        ``start_ts``/``end_ts`` bound the window as in
        ``ROWS_RANGE BETWEEN end_ts AND start_ts`` (both inclusive);
        ``limit`` caps the number of rows (``ROWS BETWEEN n PRECEDING``).
        """
        index = self.find_index(keys, ts_column)
        self._m_scans.inc()
        return self._structures[index.name].scan(
            key_value, start_ts=start_ts, end_ts=end_ts, limit=limit)

    def window_scan_blocks(self, keys: Sequence[str], ts_column: str,
                           key_value: Any, start_ts: Optional[int] = None,
                           end_ts: Optional[int] = None,
                           limit: Optional[int] = None,
                           block_rows: int = 256
                           ) -> Iterator[List[Tuple[int, Row]]]:
        """Chunked :meth:`window_scan`: newest-first blocks of ``(ts, row)``.

        One index seek, then level-0 pointer hops batched into lists —
        the scan shape the fused fold kernels consume (no per-row
        iterator resumes on the request hot path).
        """
        index = self.find_index(keys, ts_column)
        self._m_scans.inc()
        return self._structures[index.name].scan_blocks(
            key_value, start_ts=start_ts, end_ts=end_ts, limit=limit,
            block_rows=block_rows)

    def last_join_lookup(self, keys: Sequence[str], key_value: Any,
                         before_ts: Optional[int] = None
                         ) -> Optional[Tuple[int, Row]]:
        """Return the most recent ``(ts, row)`` matching ``key_value``.

        With ``before_ts`` set, returns the newest row at or before that
        timestamp (LAST JOIN ordered by ts against a request tuple).
        """
        index = self.find_index(keys)
        structure = self._structures[index.name]
        self._m_seeks.inc()
        if before_ts is None:
            return structure.latest(key_value)
        for ts, row in structure.scan(key_value, start_ts=before_ts):
            return ts, row
        return None

    # ------------------------------------------------------------------
    # maintenance

    def evict_expired(self, now_ts: int) -> int:
        """Run TTL eviction on every index; returns tuples removed.

        Note the insertion log is retained (it backs offline scans and
        binlog replay); eviction frees the online access structures, which
        is what bounds request-path memory.
        """
        removed = sum(structure.evict(now_ts)
                      for structure in self._structures.values())
        if removed:
            self._m_ttl_evicted.inc(removed)
        for callback in self._eviction_subscribers:
            callback(self.name, now_ts)
        return removed

    def key_cardinality(self, index_name: Optional[str] = None) -> int:
        """Distinct key count on an index (defaults to the first)."""
        name = index_name or self.indexes[0].name
        return self._structures[name].key_count
