"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=lambda path: path.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()  # examples narrate what they do


def test_examples_cover_required_scenarios():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3


def _run(script_name):
    script = pathlib.Path(__file__).resolve().parent.parent / \
        "examples" / script_name
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_quickstart_emits_observability():
    stdout = _run("quickstart.py")
    assert "trace of the online request:" in stdout
    assert "deployment.execute" in stdout
    assert "incremental.lookup" in stdout
    assert "counter   online.requests" in stdout
    assert "histogram online.request.ms" in stdout


def test_cluster_operations_emits_stitched_trace():
    stdout = _run("cluster_operations.py")
    assert "stitched request trace:" in stdout
    assert "deployment.execute" in stdout
    assert "tablet=tablet-" in stdout  # tablet-side span in the trace
    assert "tablet.rpc.writes{tablet=tablet-0}" in stdout
