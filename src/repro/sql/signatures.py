"""Feature signatures and ML export formats (paper Section 4.1, item 5).

Feature signatures mark how each output column is consumed by the model:

* **LABEL** columns pass through unchanged (``multiclass_label`` maps a
  categorical column onto a dense class id space);
* **DISCRETE** columns are feature-hashed [Weinberger et al., ICML'09]
  into a high-dimensional sparse space, so ultra-high-cardinality keys
  (e.g. millions of product items) never materialise as raw table data;
* **CONTINUOUS** columns keep their value as a one-dimensional dense
  feature.

With signatures attached, feature rows export directly to LibSVM lines or
TFRecord-like dicts — skipping the Pandas post-processing step the paper
calls out as a pain of standard-SQL pipelines.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import SchemaError

__all__ = [
    "SignatureKind", "FeatureSignature", "SignatureSchema", "feature_hash",
    "MulticlassLabeler", "to_libsvm", "to_tfrecords",
]


class SignatureKind(enum.Enum):
    LABEL = "label"
    DISCRETE = "discrete"
    CONTINUOUS = "continuous"


@dataclasses.dataclass(frozen=True)
class FeatureSignature:
    """Signature of one output column.

    ``dimensions`` is the hashed space size for DISCRETE columns (ignored
    otherwise).
    """

    name: str
    kind: SignatureKind
    dimensions: int = 1 << 20

    def __post_init__(self) -> None:
        if self.kind is SignatureKind.DISCRETE and self.dimensions <= 0:
            raise SchemaError("discrete signature needs dimensions > 0")


def feature_hash(column: str, value: Any, dimensions: int) -> int:
    """Stable feature-hashing of ``(column, value)`` into ``[0, dims)``.

    The column name participates in the hash so identical values in
    different columns land on different indices (the standard hashing
    trick for multitask features).
    """
    payload = f"{column}\x1f{value}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") % dimensions


class MulticlassLabeler:
    """Maps categorical label values onto dense class ids (0, 1, 2, ...).

    The assignment is first-seen order, which is deterministic for a
    fixed dataset order; ``classes`` exposes the mapping for inference.
    """

    def __init__(self) -> None:
        self._classes: Dict[Any, int] = {}

    def label(self, value: Any) -> int:
        if value not in self._classes:
            self._classes[value] = len(self._classes)
        return self._classes[value]

    @property
    def classes(self) -> Dict[Any, int]:
        return dict(self._classes)


class SignatureSchema:
    """Signatures for a full feature row, in column order."""

    def __init__(self, signatures: Sequence[FeatureSignature]) -> None:
        if not signatures:
            raise SchemaError("signature schema must be non-empty")
        labels = [s for s in signatures if s.kind is SignatureKind.LABEL]
        if len(labels) > 1:
            raise SchemaError("at most one LABEL column is supported")
        self.signatures = tuple(signatures)
        self.label_position: Optional[int] = next(
            (position for position, s in enumerate(signatures)
             if s.kind is SignatureKind.LABEL), None)
        # Continuous features occupy the lowest indices; discrete columns
        # hash into disjoint ranges stacked after them.
        self._offsets: List[int] = []
        offset = 0
        for signature in signatures:
            self._offsets.append(offset)
            if signature.kind is SignatureKind.CONTINUOUS:
                offset += 1
            elif signature.kind is SignatureKind.DISCRETE:
                offset += signature.dimensions
        self.total_dimensions = offset

    def encode_row(self, row: Sequence[Any]) -> Dict[int, float]:
        """Sparse ``{index: value}`` encoding of one feature row."""
        if len(row) != len(self.signatures):
            raise SchemaError(
                f"row arity {len(row)} != signature arity "
                f"{len(self.signatures)}")
        encoded: Dict[int, float] = {}
        for position, (signature, value) in enumerate(
                zip(self.signatures, row)):
            if value is None or signature.kind is SignatureKind.LABEL:
                continue
            base = self._offsets[position]
            if signature.kind is SignatureKind.CONTINUOUS:
                encoded[base] = float(value)
            else:
                index = base + feature_hash(signature.name, value,
                                            signature.dimensions)
                encoded[index] = encoded.get(index, 0.0) + 1.0
        return encoded

    def label_of(self, row: Sequence[Any],
                 labeler: Optional[MulticlassLabeler] = None) -> float:
        if self.label_position is None:
            return 0.0
        value = row[self.label_position]
        if labeler is not None:
            return float(labeler.label(value))
        return float(value) if value is not None else 0.0


def to_libsvm(rows: Iterable[Sequence[Any]], schema: SignatureSchema,
              labeler: Optional[MulticlassLabeler] = None
              ) -> Iterator[str]:
    """Yield LibSVM lines: ``label idx:value idx:value ...``.

    Indices are emitted sorted, as LibSVM requires.
    """
    for row in rows:
        label = schema.label_of(row, labeler)
        sparse = schema.encode_row(row)
        features = " ".join(f"{index}:{value:g}"
                            for index, value in sorted(sparse.items()))
        label_text = f"{label:g}"
        yield f"{label_text} {features}".rstrip()


def to_tfrecords(rows: Iterable[Sequence[Any]], schema: SignatureSchema,
                 labeler: Optional[MulticlassLabeler] = None
                 ) -> Iterator[Dict[str, Any]]:
    """Yield TFRecord-shaped dicts: dense label + sparse indices/values."""
    for row in rows:
        sparse = schema.encode_row(row)
        indices = sorted(sparse)
        yield {
            "label": schema.label_of(row, labeler),
            "indices": indices,
            "values": [sparse[index] for index in indices],
            "dense_shape": schema.total_dimensions,
        }
