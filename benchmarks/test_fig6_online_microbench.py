"""Figure 6 — Online MicroBench: OpenMLDB vs Trino+Redis, MySQL(in-mem),
DuckDB.

Paper shape: OpenMLDB's request latency beats MySQL (−68.4 %), DuckDB
(−87.7 %) and Trino+Redis (−96 %), with ≥17× the throughput.  Here the
same feature script runs against all four engines; we assert OpenMLDB
wins on both axes against every baseline and print the figure's series.
"""

from __future__ import annotations

import pytest

from _util import build_openmldb, record_bench
from repro.baselines import DuckDBEngine, MySQLMemoryEngine, TrinoRedisEngine
from repro.bench import (measure_latencies, measure_throughput,
                         print_stage_breakdown, print_table)


def _load_baseline(engine_cls, data, sql):
    engine = engine_cls(sql, dict(data.schemas))
    for name, rows in data.rows.items():
        engine.load(name, rows)
    return engine


@pytest.mark.benchmark(group="fig6")
def test_fig6_online_microbench(benchmark, microbench_online):
    _config, data, sql, db = microbench_online
    requests = data.requests

    systems = {"openmldb": lambda row: db.request_row("bench", row)}
    for engine_cls in (MySQLMemoryEngine, DuckDBEngine, TrinoRedisEngine):
        engine = _load_baseline(engine_cls, data, sql)
        systems[engine_cls.name] = engine.request

    latencies = {}
    throughputs = {}
    for name, operation in systems.items():
        latencies[name] = measure_latencies(operation, requests[:120],
                                            warmup=10)
        throughputs[name] = measure_throughput(operation, requests[:120])

    rows = [[name, stats.mean, stats.tp50, stats.tp99,
             throughputs[name]]
            for name, stats in latencies.items()]
    print_table("Figure 6: online MicroBench",
                ["system", "mean ms", "TP50 ms", "TP99 ms", "ops/s"],
                rows)

    open_mean = latencies["openmldb"].mean
    for name in ("mysql_inmem", "duckdb", "trino_redis"):
        assert latencies[name].mean > open_mean, \
            f"{name} should be slower than OpenMLDB"
        assert throughputs[name] < throughputs["openmldb"]
    # The paper's largest gap is against Trino+Redis.
    assert latencies["trino_redis"].mean / open_mean \
        > latencies["mysql_inmem"].mean / open_mean

    benchmark.extra_info["speedups"] = {
        name: latencies[name].mean / open_mean
        for name in systems if name != "openmldb"}
    record_bench("fig6_online_microbench",
                 **{f"{name}_tp50_ms": stats.tp50
                    for name, stats in latencies.items()})

    # Where the latency goes: re-run a slice with observability enabled
    # (the measured numbers above stay on the default, uninstrumented
    # path) and print the per-stage span breakdown.
    traced = build_openmldb(data, sql, observability=True)
    for row in requests[:40]:
        traced.request_row("bench", row)
    print_stage_breakdown("Figure 6: request-stage breakdown (traced run)",
                          traced.obs.tracer)

    benchmark.pedantic(systems["openmldb"], args=(requests[0],),
                       rounds=50, iterations=2)
