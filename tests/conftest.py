"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.schema import IndexDef, Schema


def values_close(left, right, rel_tol: float = 1e-9) -> bool:
    """Tuple comparison tolerant of float aggregation order."""
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=rel_tol, abs_tol=1e-9)
    return left == right


def rows_equal(left_rows, right_rows, rel_tol: float = 1e-9) -> bool:
    if len(left_rows) != len(right_rows):
        return False
    for left, right in zip(left_rows, right_rows):
        if len(left) != len(right):
            return False
        for a, b in zip(left, right):
            if not values_close(a, b, rel_tol):
                return False
    return True


@pytest.fixture
def events_schema() -> Schema:
    return Schema.from_pairs([
        ("key", "string"), ("ts", "timestamp"), ("value", "double"),
        ("label", "string"),
    ])


@pytest.fixture
def events_index() -> IndexDef:
    return IndexDef(key_columns=("key",), ts_column="ts")
