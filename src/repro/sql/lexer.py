"""Tokenizer for OpenMLDB SQL.

Produces a flat token stream for the recursive-descent parser.  Beyond
standard SQL lexemes it recognises the OpenMLDB extensions the paper's
Table 1 relies on:

* **interval literals** — ``3s``, ``5m``, ``2h``, ``100d`` inside window
  frames (``ROWS_RANGE BETWEEN 3s PRECEDING AND CURRENT ROW``);
* multi-word keywords are left as individual tokens (``LAST JOIN``,
  ``ROWS_RANGE`` is a single lexeme in OpenMLDB and handled here).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List

from ..errors import LexError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    INTERVAL = "interval"  # value is milliseconds
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "WINDOW", "AS", "UNION", "PARTITION", "BY",
    "ORDER", "ROWS", "ROWS_RANGE", "BETWEEN", "PRECEDING", "FOLLOWING",
    "AND", "OR", "NOT", "CURRENT", "ROW", "CURRENT_ROW", "LAST", "JOIN",
    "ON", "OVER", "EXCLUDE", "MAXSIZE", "INSTANCE_NOT_IN_WINDOW", "LIMIT",
    "ASC", "DESC", "IS", "NULL", "TRUE", "FALSE", "CASE", "WHEN", "THEN",
    "ELSE", "END", "CREATE", "TABLE", "INDEX",
    "INSERT", "INTO", "VALUES", "DEPLOY", "OPTIONS", "IN",
    "GROUP", "HAVING", "DISTINCT", "UNBOUNDED", "LIKE",
})
# KEY / TS / TTL / TTL_TYPE are contextual: they only act as keywords
# inside an INDEX(...) clause, so common column names like "key" and
# "ts" stay usable everywhere else.

_INTERVAL_UNITS_MS = {
    "s": 1_000,
    "m": 60_000,
    "h": 3_600_000,
    "d": 86_400_000,
}

_TWO_CHAR_SYMBOLS = ("<=", ">=", "!=", "<>", "||")
_ONE_CHAR_SYMBOLS = "(),.*+-/%=<>;"


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexeme: its type, source text, value, and source offset."""

    type: TokenType
    text: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.name}, {self.text!r})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; always ends with an EOF token.

    Raises:
        LexError: on characters outside the grammar or unterminated strings.
    """
    return list(_scan(sql))


def _scan(sql: str) -> Iterator[Token]:
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if char.isdigit():
            token, position = _scan_number(sql, position)
            yield token
            continue
        if char.isalpha() or char == "_":
            token, position = _scan_word(sql, position)
            yield token
            continue
        if char in ("'", '"'):
            token, position = _scan_string(sql, position)
            yield token
            continue
        two = sql[position:position + 2]
        if two in _TWO_CHAR_SYMBOLS:
            yield Token(TokenType.SYMBOL, two, two, position)
            position += 2
            continue
        if char in _ONE_CHAR_SYMBOLS:
            yield Token(TokenType.SYMBOL, char, char, position)
            position += 1
            continue
        raise LexError(f"unexpected character {char!r}", position)
    yield Token(TokenType.EOF, "", None, length)


def _scan_number(sql: str, start: int):
    position = start
    length = len(sql)
    while position < length and sql[position].isdigit():
        position += 1
    # Interval literal: digits immediately followed by a unit letter that is
    # not part of a longer identifier (e.g. "3s" yes, "3sec" no → error).
    if (position < length and sql[position] in _INTERVAL_UNITS_MS
            and (position + 1 == length
                 or not (sql[position + 1].isalnum()
                         or sql[position + 1] == "_"))):
        unit = sql[position]
        text = sql[start:position + 1]
        value = int(sql[start:position]) * _INTERVAL_UNITS_MS[unit]
        return Token(TokenType.INTERVAL, text, value, start), position + 1
    if position < length and sql[position] == ".":
        position += 1
        while position < length and sql[position].isdigit():
            position += 1
        if position < length and sql[position] in ("e", "E"):
            position = _scan_exponent(sql, position)
        text = sql[start:position]
        return Token(TokenType.FLOAT, text, float(text), start), position
    if position < length and sql[position] in ("e", "E"):
        position = _scan_exponent(sql, position)
        text = sql[start:position]
        return Token(TokenType.FLOAT, text, float(text), start), position
    text = sql[start:position]
    return Token(TokenType.INT, text, int(text), start), position


def _scan_exponent(sql: str, position: int) -> int:
    position += 1  # past 'e'
    if position < len(sql) and sql[position] in ("+", "-"):
        position += 1
    if position >= len(sql) or not sql[position].isdigit():
        raise LexError("malformed float exponent", position)
    while position < len(sql) and sql[position].isdigit():
        position += 1
    return position


def _scan_word(sql: str, start: int):
    position = start
    length = len(sql)
    while position < length and (sql[position].isalnum()
                                 or sql[position] == "_"):
        position += 1
    text = sql[start:position]
    upper = text.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, upper, start), position
    return Token(TokenType.IDENT, text, text, start), position


def _scan_string(sql: str, start: int):
    quote = sql[start]
    position = start + 1
    pieces: List[str] = []
    while position < len(sql):
        char = sql[position]
        if char == "\\" and position + 1 < len(sql):
            pieces.append(sql[position + 1])
            position += 2
            continue
        if char == quote:
            text = sql[start:position + 1]
            return (Token(TokenType.STRING, text, "".join(pieces), start),
                    position + 1)
        pieces.append(char)
        position += 1
    raise LexError("unterminated string literal", start)
