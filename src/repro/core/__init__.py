"""Core: the OpenMLDB session facade, deployments, and consistency."""

from .consistency import ConsistencyReport, Mismatch, verify_consistency
from .database import OpenMLDB
from .deployment import Deployment
from .modes import ExecutionMode, PreviewConstraints

__all__ = [
    "OpenMLDB", "Deployment", "ExecutionMode", "PreviewConstraints",
    "verify_consistency", "ConsistencyReport", "Mismatch",
]
