"""Tests for plan rewrites (Sections 4.2 / 6.1)."""

import pytest

from repro.errors import PlanError
from repro.schema import IndexDef, Schema
from repro.sql.optimizer import (explain_optimized, index_access_paths,
                                 parallel_window_groups,
                                 rewrite_parallel_windows)
from repro.sql.parser import parse_select
from repro.sql.planner import build_plan


@pytest.fixture
def catalog():
    stream = Schema.from_pairs([
        ("k", "string"), ("j", "string"), ("ts", "timestamp"),
        ("v", "double")])
    return {
        "t": stream,
        "dim": Schema.from_pairs([
            ("k", "string"), ("dts", "timestamp"), ("attr", "double")]),
    }


MULTI = ("SELECT sum(v) OVER w1 AS a, sum(v) OVER w2 AS b FROM t WINDOW "
         "w1 AS (PARTITION BY k ORDER BY ts "
         "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW), "
         "w2 AS (PARTITION BY j ORDER BY ts "
         "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)")


class TestParallelRewrite:
    def test_serial_chain_becomes_concat_join(self, catalog):
        plan = build_plan(parse_select(MULTI), catalog)
        rendered = explain_optimized(plan)
        assert "ConcatJoin(w1, w2)" in rendered
        assert "SimpleProject(+index)" in rendered
        # The serial form had nested WindowAggs; the rewrite flattens.
        assert "WindowAgg(w1)" in rendered and "WindowAgg(w2)" in rendered

    def test_single_window_untouched(self, catalog):
        sql = ("SELECT sum(v) OVER w1 AS a FROM t WINDOW w1 AS "
               "(PARTITION BY k ORDER BY ts "
               "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
        plan = build_plan(parse_select(sql), catalog)
        assert rewrite_parallel_windows(plan.tree) is plan.tree

    def test_window_declaration_order_preserved(self, catalog):
        plan = build_plan(parse_select(MULTI), catalog)
        groups = parallel_window_groups(plan)
        assert groups == (("w1", "w2"),)

    def test_original_tree_not_mutated(self, catalog):
        plan = build_plan(parse_select(MULTI), catalog)
        before = plan.explain()
        rewrite_parallel_windows(plan.tree)
        assert plan.explain() == before


class TestIndexAccessPaths:
    def test_all_paths_served(self, catalog):
        sql = ("SELECT sum(v) OVER w1 AS a, dim.attr AS x FROM t "
               "LAST JOIN dim ON t.k = dim.k WINDOW w1 AS "
               "(PARTITION BY k ORDER BY ts "
               "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
        plan = build_plan(parse_select(sql), catalog)
        chosen = index_access_paths(plan, {
            "t": [IndexDef(("k",), "ts")],
            "dim": [IndexDef(("k",), "dts")],
        })
        assert chosen["window w1 over t"] == "idx_k_ts"
        assert chosen["last join dim"] == "idx_k_dts"

    def test_missing_window_index_rejected(self, catalog):
        plan = build_plan(parse_select(MULTI), catalog)
        with pytest.raises(PlanError, match="full scan"):
            index_access_paths(plan, {"t": [IndexDef(("k",), "ts")]})

    def test_missing_join_index_rejected(self, catalog):
        sql = ("SELECT dim.attr AS x FROM t "
               "LAST JOIN dim ON t.k = dim.k")
        plan = build_plan(parse_select(sql), catalog)
        with pytest.raises(PlanError, match="last join"):
            index_access_paths(plan, {"t": [IndexDef(("k",), "ts")],
                                      "dim": []})

    def test_union_tables_checked(self, catalog):
        extended = dict(catalog)
        extended["t2"] = catalog["t"]
        sql = ("SELECT sum(v) OVER w1 AS a FROM t WINDOW w1 AS "
               "(UNION t2 PARTITION BY k ORDER BY ts "
               "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
        plan = build_plan(parse_select(sql), extended)
        with pytest.raises(PlanError, match="t2"):
            index_access_paths(plan, {
                "t": [IndexDef(("k",), "ts")], "t2": []})
