"""Offline batch execution engine (paper Section 6).

Executes a compiled feature script over the *full history* of the primary
table: every stored row becomes an anchor (the batch analogue of a
request tuple) and receives one output feature row.  The window semantics
replay the online engine exactly — a window anchored at row *r* contains
*r* plus the rows that were already present when *r* arrived — which is
what makes online/offline feature values consistent (Section 4's unified
plan, verified by :mod:`repro.core.consistency`).

Three execution modes share one fold kernel
(:class:`~repro.offline.partial.WindowKernel`):

* ``serial`` — every window and task in sequence (the oracle);
* ``thread`` — window tasks pipeline on a thread pool (the default:
  hermetic, no subprocesses, GIL-bound for CPU work);
* ``process`` — (key, PART_ID) tasks ship to ``multiprocessing``
  workers over the storage layer's :class:`RowCodec` wire format
  (:mod:`repro.offline.pool`) for *real* parallel compute; task times
  are the workers' measured process times.  Unavailable
  multiprocessing degrades gracefully to ``thread``.

All three produce byte-identical feature rows (property-tested).

The paper optimisations live here:

* **Multi-window parallel optimisation** (Section 6.1) — windows without
  dependencies run as independent tasks; a hidden *index column* keyed to
  each anchor row lets the final ``ConcatJoin`` (a LAST JOIN on the index)
  realign per-window feature columns regardless of partition order.
* **Time-aware skew resolving** (Section 6.2) — with a
  :class:`~repro.offline.skew.SkewConfig`, each window's per-key groups
  are split into ``(key, PART_ID)`` tasks along the timestamp quantiles;
  expanded rows provide cross-partition context, or — with
  ``merge_partials`` and an eligible frame — carried mergeable partials
  (:mod:`repro.offline.partial`) replace the copies entirely.
* **External-sort shuffle** (:mod:`repro.offline.shuffle`) — with a
  :class:`~repro.offline.shuffle.SpillConfig`, window-source events
  spill to sorted on-disk runs once the configured byte budget is hit,
  so inputs larger than memory stream group-at-a-time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from typing import (Any, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from ..errors import ExecutionError
from ..obs import NULL_OBS, Observability
from ..schema import Row
from ..sql.compiler import CompiledQuery, CompiledWindow
from ..storage.encoding import RowCodec
from ..storage.memtable import normalize_ts
from .partial import WindowKernel, WindowPartialState
from .pool import (ProcessPoolUnavailable, WindowProcessPool,
                   WindowTaskSpec, decode_events, encode_events)
from .scheduling import lpt_makespan
from .shuffle import ExternalSorter, SpillConfig
from .skew import SkewConfig, SkewResolver

__all__ = ["OfflineEngine", "OfflineStats"]

_MODES = ("serial", "thread", "process")


@dataclasses.dataclass
class OfflineStats:
    """Measured execution profile of one batch run.

    ``window_seconds`` maps window name → measured compute time.
    ``task_seconds`` lists individual (key, PART_ID) task times across all
    windows — the inputs to the makespan model.  In ``process`` mode the
    task times are each worker's own CPU clock (measured process time);
    otherwise the parent's ``thread_time``.  ``serial_seconds`` is the
    sum of window times (a serial engine's cost); ``parallel_seconds``
    the LPT makespan of the window tasks on ``workers`` workers.
    """

    rows: int = 0
    window_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    window_tasks: Dict[str, List[float]] = dataclasses.field(
        default_factory=dict)
    join_seconds: float = 0.0
    project_seconds: float = 0.0
    workers: int = 1
    requested_mode: str = "thread"
    mode: str = "thread"                 # execution mode actually taken
    pool_fallback: bool = False          # process requested, threads ran
    used_process_pool: bool = False
    used_parallel_windows: bool = False  # multi-window pooling really ran
    used_skew_resolver: bool = False
    tasks: int = 0
    carry_tasks: int = 0                 # tasks seeded with merged partials
    shuffle: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def task_seconds(self) -> List[float]:
        return [seconds for tasks in self.window_tasks.values()
                for seconds in tasks]

    @property
    def serial_seconds(self) -> float:
        return sum(self.window_seconds.values())

    @property
    def parallel_seconds(self) -> float:
        """Distributed makespan under the run's window-execution mode.

        With the multi-window parallel optimisation every window's tasks
        pool into one schedule; without it, windows are stage barriers —
        each window's tasks schedule independently and the stages add up
        (within-window key parallelism exists either way, as in Spark).
        """
        if not self.window_tasks:
            return 0.0
        if self.used_parallel_windows:
            return lpt_makespan(self.task_seconds, self.workers)
        return sum(lpt_makespan(tasks, self.workers)
                   for tasks in self.window_tasks.values() if tasks)

    @property
    def total_serial_seconds(self) -> float:
        return (self.serial_seconds + self.join_seconds
                + self.project_seconds)

    @property
    def total_parallel_seconds(self) -> float:
        return (self.parallel_seconds + self.join_seconds
                + self.project_seconds)


# One window-source event: (source, ts, row, anchor_index or None).
# source is 0 for the primary table, 1+i for WINDOW UNION table i —
# it selects the RowCodec when events cross a process boundary.
# anchor_index is the primary-row position for instance rows, None for
# rows contributed by union tables (context only).
_Event = Tuple[int, int, Row, Optional[int]]

# One (key[, PART_ID]) task: (events, emit_flags, carry_chain_id).
# carry_chain_id is None for expanded-row / plain tasks; tasks sharing
# a chain id are consecutive partitions of one key whose window context
# flows through merged partial states instead of expanded rows.
_TaskUnit = Tuple[List[_Event], List[bool], Optional[int]]


class OfflineEngine:
    """Batch executor over the stored tables.

    Args:
        tables: table name → storage object.
        workers: simulated cluster width for the makespan model (the
            thread/process pool size matches it for real execution,
            capped at the host's CPU count for processes).
        obs: observability handle (default disabled).
        mode: default execution mode — ``"serial"``, ``"thread"`` or
            ``"process"`` (overridable per :meth:`execute` call).
        spill: default shuffle spill budget (None = in-memory sort).
        pool: share an existing :class:`WindowProcessPool` (the engine
            will not close it); otherwise one is created lazily on the
            first ``process`` run and owned by the engine.
        pool_workers: process-pool width (default
            ``min(workers, cpu_count)``).
    """

    def __init__(self, tables: Mapping[str, Any], workers: int = 8,
                 obs: Optional[Observability] = None,
                 mode: str = "thread",
                 spill: Optional[SpillConfig] = None,
                 pool: Optional[WindowProcessPool] = None,
                 pool_workers: Optional[int] = None) -> None:
        if workers <= 0:
            raise ExecutionError("workers must be positive")
        if mode not in _MODES:
            raise ExecutionError(f"mode must be one of {_MODES}")
        self._tables = tables
        self.workers = workers
        self.mode = mode
        self.spill = spill
        self._obs = obs or NULL_OBS
        self._pool = pool
        self._owns_pool = pool is None
        self._pool_failed = False
        if pool_workers is None:
            pool_workers = max(min(workers, os.cpu_count() or 1), 1)
        self._pool_workers = pool_workers
        registry = self._obs.registry
        self._m_runs = registry.counter("offline.runs")
        self._m_anchors = registry.counter("offline.anchor_rows")
        self._m_tasks = registry.counter("offline.tasks")
        self._m_skew_tasks = registry.counter("offline.skew.tasks")
        self._m_skew_expanded = registry.counter(
            "offline.skew.expanded_rows")
        self._m_carry_tasks = registry.counter("offline.carry.tasks")
        self._m_pool_tasks = registry.counter("offline.pool.tasks")
        self._m_pool_fallbacks = registry.counter("offline.pool.fallbacks")
        self._m_shuffle_runs = registry.counter("offline.shuffle.runs")
        self._m_shuffle_rows = registry.counter(
            "offline.shuffle.spilled_rows")
        self._m_shuffle_bytes = registry.counter(
            "offline.shuffle.spilled_bytes")

    def close(self) -> None:
        """Shut down the owned process pool (shared pools are left up)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_failed = False

    def _acquire_pool(self) -> Optional[WindowProcessPool]:
        """The process pool, or None when multiprocessing can't run."""
        if self._pool is not None:
            return self._pool
        if self._pool_failed:
            return None
        try:
            self._pool = WindowProcessPool(self._pool_workers)
        except ProcessPoolUnavailable:
            self._pool_failed = True
            return None
        return self._pool

    # ------------------------------------------------------------------

    def execute(self, compiled: CompiledQuery,
                parallel_windows: bool = True,
                skew: Optional[SkewConfig] = None,
                mode: Optional[str] = None,
                spill: Optional[SpillConfig] = None
                ) -> Tuple[List[Row], OfflineStats]:
        """Run the batch computation; returns (feature rows, stats)."""
        if mode is None:
            mode = self.mode
        if mode not in _MODES:
            raise ExecutionError(f"mode must be one of {_MODES}")
        if spill is None:
            spill = self.spill
        with self._obs.tracer.span("offline.execute",
                                   table=compiled.plan.table,
                                   workers=self.workers,
                                   mode=mode) as root:
            return self._execute(compiled, parallel_windows, skew, mode,
                                 spill, root)

    def _execute(self, compiled: CompiledQuery, parallel_windows: bool,
                 skew: Optional[SkewConfig], mode: str,
                 spill: Optional[SpillConfig], root: Any
                 ) -> Tuple[List[Row], OfflineStats]:
        tracer = self._obs.tracer
        plan = compiled.plan
        stats = OfflineStats(workers=self.workers,
                             requested_mode=mode,
                             used_skew_resolver=skew is not None)
        primary = self._tables[plan.table]
        anchors: List[Row] = list(primary.rows())
        stats.rows = len(anchors)
        self._m_runs.inc()
        self._m_anchors.inc(len(anchors))

        # LAST JOINs: resolve each anchor's combined row.
        started = time.perf_counter()
        with tracer.span("offline.join", parent=root):
            combined_rows = self._resolve_joins(compiled, anchors)
        stats.join_seconds = time.perf_counter() - started

        # Window aggregates, one result vector per anchor.  The hidden
        # index column of Section 6.1 is the anchor position itself: each
        # window task emits (anchor_index, values) pairs and the concat
        # step joins on it.
        aggregate_columns: List[List[Any]] = [
            [None] * compiled.aggregate_count for _ in anchors]
        window_jobs = [(name, window)
                       for name, window in compiled.windows.items()
                       if window.aggregates]

        pool: Optional[WindowProcessPool] = None
        if mode == "process":
            pool = self._acquire_pool()
            if pool is None:
                # Degrade gracefully: threads compute the same results.
                mode = "thread"
                stats.pool_fallback = True
                self._m_pool_fallbacks.inc()
        stats.mode = mode
        stats.used_process_pool = mode == "process"
        # The flag reflects the execution path actually taken: a single
        # window (or serial mode) never pools windows, whatever the
        # caller asked for.
        stats.used_parallel_windows = (parallel_windows
                                       and len(window_jobs) > 1
                                       and mode != "serial")

        if mode == "process":
            self._run_windows_process(
                compiled, window_jobs, anchors, skew, spill, stats,
                aggregate_columns, pool, parallel_windows, root)
        else:
            self._run_windows_inprocess(
                compiled, window_jobs, anchors, skew, spill, stats,
                aggregate_columns,
                threaded=stats.used_parallel_windows, root=root)

        registry = self._obs.registry
        for name, task_times in stats.window_tasks.items():
            stats.tasks += len(task_times)
            self._m_tasks.inc(len(task_times))
            if self._obs.enabled and mode != "process":
                # Per-partition task timings: the skew figures (12–13)
                # read straight off this distribution's p99/max.  In
                # process mode the workers' own histogram states were
                # already merged in (exactly) as results arrived.
                task_histogram = registry.histogram("offline.task.ms",
                                                    window=name)
                for task_seconds in task_times:
                    task_histogram.observe(task_seconds * 1_000)

        # ConcatJoin + final projection.
        started = time.perf_counter()
        output: List[Row] = []
        limit = plan.statement.limit
        with tracer.span("offline.project", parent=root):
            for index, combined in enumerate(combined_rows):
                if compiled.where_fn is not None \
                        and compiled.where_fn(combined) is not True:
                    continue
                extended = combined + tuple(aggregate_columns[index])
                output.append(compiled.project(extended))
                if limit is not None and len(output) >= limit:
                    break
        stats.project_seconds = time.perf_counter() - started
        return output, stats

    # ------------------------------------------------------------------
    # joins

    def _resolve_joins(self, compiled: CompiledQuery,
                       anchors: Sequence[Row]) -> List[Row]:
        if not compiled.joins:
            return [tuple(anchor) for anchor in anchors]
        combined_rows: List[Row] = []
        for anchor in anchors:
            combined: List[Any] = [None] * compiled.combined_width
            combined[:len(anchor)] = anchor
            for join in compiled.joins:
                key_value = join.key_fn(tuple(combined))
                table = self._tables[join.plan.right_table]
                matched: Optional[Row] = None
                if join.residual_fn is None:
                    hit = table.last_join_lookup(join.key_columns, key_value)
                    matched = hit[1] if hit is not None else None
                else:
                    # Residual scan through the chunked API: candidate
                    # rows arrive a block at a time, same as the online
                    # engine's window fetches.
                    index = table.find_index(join.key_columns)
                    for block in table.window_scan_blocks(
                            join.key_columns, index.ts_column, key_value):
                        for _ts, candidate in block:
                            probe = list(combined)
                            probe[join.start_slot:
                                  join.start_slot
                                  + join.right_width] = candidate
                            if join.residual_fn(tuple(probe)) is True:
                                matched = candidate
                                break
                        if matched is not None:
                            break
                if matched is not None:
                    combined[join.start_slot:
                             join.start_slot + join.right_width] = matched
            combined_rows.append(tuple(combined))
        return combined_rows

    # ------------------------------------------------------------------
    # window-source events and task construction (shared by all modes)

    def _window_codecs(self, compiled: CompiledQuery,
                       window: CompiledWindow) -> List[RowCodec]:
        """Per-source row codecs: primary first, then each union."""
        return [RowCodec(compiled.plan.table_schema)] + [
            RowCodec(self._tables[name].schema)
            for name in window.plan.union_tables]

    def _window_spec(self, compiled: CompiledQuery,
                     window: CompiledWindow) -> WindowTaskSpec:
        plan = compiled.plan
        return WindowTaskSpec(
            plan=window.plan, schema=plan.table_schema,
            table=plan.table, alias=plan.table_alias,
            union_schemas=tuple(self._tables[name].schema
                                for name in window.plan.union_tables))

    def _key_groups(self, compiled: CompiledQuery,
                    window: CompiledWindow, anchors: Sequence[Row],
                    spill: Optional[SpillConfig], stats: OfflineStats
                    ) -> Iterator[Tuple[Any, List[_Event]]]:
        """Yield ``(key, events)`` groups in deterministic key order.

        Replay order within a group is (ts, source, sequence): the
        order an online system would have ingested the same data,
        which is what makes batch window contents equal request-time
        contents.  With a spill budget the grouping runs through the
        external sorter; otherwise it is an in-memory sort.
        """
        plan = window.plan
        key_fn = window.partition_key
        if spill is None:
            events: List[Tuple[int, int, int, _Event]] = []
            for position, anchor in enumerate(anchors):
                ts = normalize_ts(window.order_value(anchor))
                events.append((ts, 0, position,
                               (0, ts, anchor, position)))
            for union_position, union_table in enumerate(plan.union_tables):
                table = self._tables[union_table]
                for sequence, row in enumerate(table.rows()):
                    ts = normalize_ts(window.order_value(row))
                    events.append((ts, 1 + union_position, sequence,
                                   (1 + union_position, ts, row, None)))
            events.sort(key=lambda item: item[:3])
            grouped: Dict[Any, List[_Event]] = {}
            for _ts, _source, _seq, event in events:
                grouped.setdefault(key_fn(event[2]), []).append(event)
            for key in sorted(grouped, key=str):
                yield key, grouped[key]
            return

        codecs = self._window_codecs(compiled, window)
        sorter = ExternalSorter(spill)
        try:
            for position, anchor in enumerate(anchors):
                ts = normalize_ts(window.order_value(anchor))
                key = key_fn(anchor)
                sorter.add(
                    (str(key), pickle.dumps(key), ts, 0, position),
                    encode_events([(0, ts, anchor, position)], [True],
                                  codecs))
            for union_position, union_table in enumerate(plan.union_tables):
                table = self._tables[union_table]
                for sequence, row in enumerate(table.rows()):
                    ts = normalize_ts(window.order_value(row))
                    key = key_fn(row)
                    sorter.add(
                        (str(key), pickle.dumps(key), ts,
                         1 + union_position, sequence),
                        encode_events([(1 + union_position, ts, row,
                                        None)], [True], codecs))
            current_kp: Optional[Tuple[str, bytes]] = None
            current_key: Any = None
            current_events: List[_Event] = []
            for sort_key, record in sorter.sorted_records():
                kp = (sort_key[0], sort_key[1])
                if kp != current_kp:
                    if current_events:
                        yield current_key, current_events
                    current_kp = kp
                    current_key = pickle.loads(sort_key[1])
                    current_events = []
                decoded, _flags = decode_events(record, codecs)
                ts, row, anchor_index = decoded[0]
                current_events.append((sort_key[3], ts, row,
                                       anchor_index))
            if current_events:
                yield current_key, current_events
        finally:
            sorter.close()
            shuffle = stats.shuffle
            shuffle["rows"] = shuffle.get("rows", 0) + sorter.rows
            shuffle["runs"] = shuffle.get("runs", 0) + sorter.runs
            shuffle["spilled_rows"] = (shuffle.get("spilled_rows", 0)
                                       + sorter.spilled_rows)
            shuffle["spilled_bytes"] = (shuffle.get("spilled_bytes", 0)
                                        + sorter.spilled_bytes)
            self._m_shuffle_runs.inc(sorter.runs)
            self._m_shuffle_rows.inc(sorter.spilled_rows)
            self._m_shuffle_bytes.inc(sorter.spilled_bytes)

    def _task_units(self, compiled: CompiledQuery,
                    window: CompiledWindow, kernel: WindowKernel,
                    anchors: Sequence[Row], skew: Optional[SkewConfig],
                    spill: Optional[SpillConfig], stats: OfflineStats
                    ) -> Iterator[_TaskUnit]:
        """Decompose one window into (key[, PART_ID]) task units."""
        plan = window.plan
        resolver = SkewResolver(skew) if skew is not None else None
        carry_ok = (skew is not None and skew.merge_partials
                    and kernel.carry_eligible)
        next_chain = 0
        for key, events in self._key_groups(compiled, window, anchors,
                                            spill, stats):
            if resolver is None:
                yield events, [True] * len(events), None
                continue
            tasks = resolver.key_tasks(
                key, [(event[1], event) for event in events],
                range_ms=plan.range_preceding_ms,
                rows_preceding=plan.rows_preceding,
                augment=not carry_ok)
            self._m_skew_tasks.inc(len(tasks))
            if carry_ok and len(tasks) > 1:
                chain = next_chain
                next_chain += 1
                stats.carry_tasks += len(tasks)
                self._m_carry_tasks.inc(len(tasks))
                for task in tasks:
                    yield ([tagged.row for tagged in task.rows],
                           [True] * len(task.rows), chain)
                continue
            expanded = sum(1 for task in tasks
                           for tagged in task.rows if tagged.expanded)
            if expanded:
                self._m_skew_expanded.inc(expanded)
            for task in tasks:
                yield ([tagged.row for tagged in task.rows],
                       [not tagged.expanded for tagged in task.rows],
                       None)

    @staticmethod
    def _strip_sources(events: Sequence[_Event]
                       ) -> List[Tuple[int, Row, Optional[int]]]:
        return [(ts, row, anchor) for _source, ts, row, anchor in events]

    def _apply_emits(self, emits: Sequence[Tuple[int, Sequence[Any]]],
                     slots: Sequence[int],
                     aggregate_columns: List[List[Any]]) -> None:
        for anchor_index, values in emits:
            row_slots = aggregate_columns[anchor_index]
            for slot, value in zip(slots, values):
                row_slots[slot] = value

    # ------------------------------------------------------------------
    # in-process execution (serial / thread modes)

    def _run_windows_inprocess(self, compiled: CompiledQuery,
                               window_jobs: Sequence[
                                   Tuple[str, CompiledWindow]],
                               anchors: Sequence[Row],
                               skew: Optional[SkewConfig],
                               spill: Optional[SpillConfig],
                               stats: OfflineStats,
                               aggregate_columns: List[List[Any]],
                               threaded: bool, root: Any) -> None:
        tracer = self._obs.tracer

        def run_window(job: Tuple[str, CompiledWindow]
                       ) -> Tuple[str, float, List[float]]:
            # thread_time, not perf_counter: when windows run concurrently
            # on the pool, wall-clock spans would absorb other threads'
            # GIL slices and double-count work in the makespan model.
            # The span parent is passed explicitly — pool threads have no
            # thread-local span stack of their own.
            name, window = job
            with tracer.span("offline.window", window=name,
                             parent=root) as span:
                window_started = time.thread_time()
                kernel = WindowKernel(window)
                task_times: List[float] = []
                carry_states: Dict[int, List[Any]] = {}
                for events, emit_flags, chain in self._task_units(
                        compiled, window, kernel, anchors, skew, spill,
                        stats):
                    started = time.thread_time()
                    stripped = self._strip_sources(events)
                    if chain is None:
                        emits = kernel.fold(stripped, emit_flags)
                    else:
                        # Carry path: seed with the running merged
                        # partials of this key's earlier partitions;
                        # the fold's end state is the next seed.
                        seed = carry_states.get(chain)
                        if seed is None:
                            seed = kernel.partials.init()
                        emits, end_states = kernel.seeded_fold(
                            stripped, emit_flags, seed)
                        carry_states[chain] = end_states
                    self._apply_emits(emits, kernel.slots,
                                      aggregate_columns)
                    task_times.append(time.thread_time() - started)
                span.set_tag(tasks=len(task_times))
            return (name, time.thread_time() - window_started, task_times)

        if threaded:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(run_window, window_jobs))
        else:
            outcomes = [run_window(job) for job in window_jobs]
        for name, seconds, task_times in outcomes:
            stats.window_seconds[name] = seconds
            stats.window_tasks[name] = task_times

    # ------------------------------------------------------------------
    # process-pool execution

    def _run_windows_process(self, compiled: CompiledQuery,
                             window_jobs: Sequence[
                                 Tuple[str, CompiledWindow]],
                             anchors: Sequence[Row],
                             skew: Optional[SkewConfig],
                             spill: Optional[SpillConfig],
                             stats: OfflineStats,
                             aggregate_columns: List[List[Any]],
                             pool: WindowProcessPool,
                             parallel_windows: bool, root: Any) -> None:
        """Ship (key, PART_ID) tasks to worker processes.

        Two-phase: carried-partial chains first compute per-partition
        *segment* states (map), the parent prefix-merges them into
        seeds, then every emitting task — plain folds went out in phase
        one already — runs as a seeded fold (reduce).  With the
        multi-window optimisation all windows share both phases; without
        it each window runs its phases as a stage barrier.
        """
        if parallel_windows:
            batches = [list(window_jobs)]
        else:
            batches = [[job] for job in window_jobs]
        for batch in batches:
            self._run_window_batch_process(
                compiled, batch, anchors, skew, spill, stats,
                aggregate_columns, pool, root)

    def _run_window_batch_process(self, compiled: CompiledQuery,
                                  batch: Sequence[
                                      Tuple[str, CompiledWindow]],
                                  anchors: Sequence[Row],
                                  skew: Optional[SkewConfig],
                                  spill: Optional[SpillConfig],
                                  stats: OfflineStats,
                                  aggregate_columns: List[List[Any]],
                                  pool: WindowProcessPool,
                                  root: Any) -> None:
        tracer = self._obs.tracer
        registry = self._obs.registry
        phase_a: List[Any] = []      # futures
        # Per future: (window name, kernel, expected result kind).
        phase_a_meta: List[Tuple[str, WindowKernel, str]] = []
        # (window, chain) → ordered [(phase-A index, blob, spec,
        # spec_key)] of the chain's partitions, awaiting seeds.
        chains: Dict[Tuple[str, int],
                     List[Tuple[int, bytes, WindowTaskSpec, str]]] = {}
        kernels: Dict[str, WindowKernel] = {}
        prep_seconds: Dict[str, float] = {}

        for name, window in batch:
            with tracer.span("offline.window", window=name,
                             parent=root) as span:
                prep_started = time.thread_time()
                kernel = WindowKernel(window)
                kernels[name] = kernel
                codecs = self._window_codecs(compiled, window)
                spec = self._window_spec(compiled, window)
                spec_key = hashlib.sha1(pickle.dumps(spec)).hexdigest()
                task_count = 0
                for events, emit_flags, chain in self._task_units(
                        compiled, window, kernel, anchors, skew, spill,
                        stats):
                    blob = encode_events(events, emit_flags, codecs)
                    task_count += 1
                    self._m_pool_tasks.inc()
                    if chain is None:
                        phase_a.append(pool.submit(
                            ("fold", spec_key, spec, blob, None)))
                        phase_a_meta.append((name, kernel, "emits"))
                    else:
                        phase_a.append(pool.submit(
                            ("segment", spec_key, spec, blob, None)))
                        phase_a_meta.append((name, kernel, "states"))
                        chains.setdefault((name, chain), []).append(
                            (len(phase_a) - 1, blob, spec, spec_key))
                span.set_tag(tasks=task_count)
                prep_seconds[name] = time.thread_time() - prep_started

        # Gather phase A: apply fold emits, collect segment states.
        segment_states: Dict[int, List[Any]] = {}
        for index, (future, (name, kernel, expect)) in enumerate(
                zip(phase_a, phase_a_meta)):
            result_kind, result, cpu_seconds, hist_state = future.result()
            if result_kind != expect:  # pragma: no cover - protocol guard
                raise ExecutionError(
                    f"worker returned {result_kind}, expected {expect}")
            self._record_worker_task(stats, registry, name, cpu_seconds,
                                     hist_state)
            if result_kind == "emits":
                self._apply_emits(result, kernel.slots, aggregate_columns)
            else:
                segment_states[index] = result

        # Phase B: prefix-merge segment states into seeds, re-fold each
        # partition from its seed to emit values.
        phase_b: List[Any] = []
        phase_b_meta: List[Tuple[str, WindowKernel]] = []
        for (name, _chain), parts in chains.items():
            kernel = kernels[name]
            partials = kernel.partials
            carry = partials.init()
            for future_index, blob, spec, spec_key in parts:
                seed = WindowPartialState.copy_states(carry)
                phase_b.append(pool.submit(
                    ("carry", spec_key, spec, blob, seed)))
                phase_b_meta.append((name, kernel))
                self._m_pool_tasks.inc()
                carry = partials.merge(carry,
                                       segment_states[future_index])
        for future, (name, kernel) in zip(phase_b, phase_b_meta):
            result_kind, result, cpu_seconds, hist_state = future.result()
            self._record_worker_task(stats, registry, name, cpu_seconds,
                                     hist_state)
            self._apply_emits(result, kernel.slots, aggregate_columns)

        for name in kernels:
            task_times = stats.window_tasks.setdefault(name, [])
            stats.window_seconds[name] = (
                prep_seconds.get(name, 0.0) + sum(task_times))

    def _record_worker_task(self, stats: OfflineStats, registry: Any,
                            name: str, cpu_seconds: float,
                            hist_state: Dict[str, Any]) -> None:
        stats.window_tasks.setdefault(name, []).append(cpu_seconds)
        if self._obs.enabled:
            # Exact fleet-wide merge: the worker measured its own task
            # on its own clock and shipped the log-bucket state; merging
            # states is lossless, unlike re-observing a rounded value.
            registry.histogram("offline.task.ms",
                               window=name).merge_state(hist_state)
