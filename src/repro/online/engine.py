"""Online real-time execution engine (paper Sections 3.2 and 5).

Implements **online request mode**: each incoming request tuple is
treated as virtually inserted into its table, the deployed (compiled)
feature script runs against it, and a single feature row comes back.

The fast path per request:

1. Resolve each ``LAST JOIN`` through the right table's stream index —
   the newest matching tuple is O(1) thanks to the two-level skiplist.
2. For every window, first consult **incremental window state** (per-key
   running aggregates maintained at ingest time); on a hit the window
   costs O(aggregates).  Otherwise fetch the window's rows as *blocks*
   via index scans bounded by the request timestamp (window unions merge
   several tables' scans newest-first) and fold them through the
   window's **fused kernel** — or, for deployed *long windows*, ask the
   pre-aggregation manager for merged bucket states and scan only the
   raw head/tail spans (Section 5.1's query refinement).
3. Project the output row.

The engine keeps no per-request state across calls; window/preagg state
lives in the storage layer and the ingest-time aggregators.  Statistics
are accumulated per request in a local counter bundle and applied to
:class:`EngineStats` under its lock in one step, so concurrent requests
from the serving frontend's worker pool never lose increments.
"""

from __future__ import annotations

import dataclasses
import threading
from time import perf_counter
from typing import (Any, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple)

from ..errors import ExecutionError
from ..obs import NULL_OBS, Observability
from ..schema import Row
from ..serving.deadline import current_deadline
from ..sql.compiler import CompiledJoin, CompiledQuery, CompiledWindow
from ..storage.memtable import normalize_ts
from .preagg import PreAggregator

__all__ = ["OnlineEngine", "EngineStats"]

_COUNTER_FIELDS = ("rows_scanned", "scan_blocks", "preagg_bucket_merges",
                   "preagg_raw_rows", "join_lookups", "shared_scan_hits",
                   "incremental_hits", "incremental_fallbacks")

#: Shared empty slot map for windows with no pre-aggregation — never
#: mutated (the request path only iterates and membership-tests it), so
#: every request can alias it instead of allocating a fresh dict.
_NO_PREAGG: Dict[int, "PreAggregator"] = {}


class _RequestCounters:
    """Per-request statistic deltas.

    Accumulated lock-free on the request's own stack, then folded into
    the shared :class:`EngineStats` in a single locked step — the fix
    for the racy ``stats.field += 1`` pattern under concurrent serving.
    """

    __slots__ = _COUNTER_FIELDS + ("incremental_windows",)

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.scan_blocks = 0
        self.preagg_bucket_merges = 0
        self.preagg_raw_rows = 0
        self.join_lookups = 0
        self.shared_scan_hits = 0
        self.incremental_hits = 0
        self.incremental_fallbacks = 0
        # (window name, hit?) events; lazily allocated — most requests
        # either use no incremental state or should not pay a list.
        self.incremental_windows: Optional[List[Tuple[str, bool]]] = None

    def note_window(self, name: str, hit: bool) -> None:
        if self.incremental_windows is None:
            self.incremental_windows = []
        self.incremental_windows.append((name, hit))


@dataclasses.dataclass
class EngineStats:
    """Counters for observability and the ablation benches.

    Updated only through :meth:`apply` (one lock acquisition per
    request), never via in-place ``+=`` from request threads.
    """

    requests: int = 0
    rows_scanned: int = 0
    scan_blocks: int = 0
    preagg_bucket_merges: int = 0
    preagg_raw_rows: int = 0
    join_lookups: int = 0
    shared_scan_hits: int = 0
    incremental_hits: int = 0
    incremental_fallbacks: int = 0
    #: window name → [hits, fallbacks] — which window is falling back,
    #: not just that one is.  Read via :meth:`incremental_window_stats`.
    incremental_by_window: Dict[str, List[int]] = dataclasses.field(
        default_factory=dict)
    _lock: threading.Lock = dataclasses.field(
        default_factory=threading.Lock, repr=False, compare=False)

    def apply(self, counters: _RequestCounters) -> None:
        """Fold one request's deltas in atomically."""
        with self._lock:
            self.requests += 1
            self.rows_scanned += counters.rows_scanned
            self.scan_blocks += counters.scan_blocks
            self.preagg_bucket_merges += counters.preagg_bucket_merges
            self.preagg_raw_rows += counters.preagg_raw_rows
            self.join_lookups += counters.join_lookups
            self.shared_scan_hits += counters.shared_scan_hits
            self.incremental_hits += counters.incremental_hits
            self.incremental_fallbacks += counters.incremental_fallbacks
            if counters.incremental_windows:
                for name, hit in counters.incremental_windows:
                    entry = self.incremental_by_window.get(name)
                    if entry is None:
                        entry = self.incremental_by_window[name] = [0, 0]
                    entry[0 if hit else 1] += 1

    def incremental_window_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-window incremental attribution, as a stable copy."""
        with self._lock:
            return {name: {"hits": entry[0], "fallbacks": entry[1]}
                    for name, entry in self.incremental_by_window.items()}


class OnlineEngine:
    """Request-mode executor over a set of tables.

    Args:
        tables: table name → storage object (``MemTable`` or ``DiskTable``
            — both expose the same read API).
        obs: observability handle.  Disabled (the default) keeps the
            request path exactly as fast as the uninstrumented engine;
            enabled adds per-stage trace spans and metric series.
        fused_fold: fold windows through the compiler's fused kernels
            (:meth:`CompiledWindow.compute_blocks`).  ``False`` selects
            the pre-fusion per-row/per-state fold — the ablation
            baseline.
        block_scan: fetch window rows through the storage layer's
            chunked ``window_scan_blocks`` API.  ``False`` selects the
            per-row iterator scans (ablation baseline).
    """

    def __init__(self, tables: Mapping[str, Any],
                 obs: Optional[Observability] = None,
                 fused_fold: bool = True,
                 block_scan: bool = True) -> None:
        self._tables = tables
        self._fused_fold = fused_fold
        self._block_scan = block_scan
        self.stats = EngineStats()
        self._obs = obs or NULL_OBS
        registry = self._obs.registry
        self._m_requests = registry.counter("online.requests")
        self._m_rows_scanned = registry.counter("online.rows_scanned")
        self._m_scan_blocks = registry.counter("online.scan.blocks")
        self._m_join_lookups = registry.counter("online.join_lookups")
        self._m_preagg_merges = registry.counter(
            "online.preagg.bucket_merges")
        self._m_preagg_raw = registry.counter("online.preagg.raw_rows")
        self._m_shared_scans = registry.counter(
            "online.batch.shared_scans")
        self._m_incr_hits = registry.counter("online.incremental.hits")
        self._m_incr_fallbacks = registry.counter(
            "online.incremental.fallbacks")

    # ------------------------------------------------------------------

    def execute_request(
            self, compiled: CompiledQuery, request_row: Sequence[Any],
            preagg: Optional[Mapping[str, Mapping[int, PreAggregator]]] = None,
            shared_fetch: Optional[Dict[Any, List[List[Row]]]] = None,
            incremental: Optional[Mapping[str, Any]] = None,
            router: Optional[Any] = None
    ) -> Row:
        """Run one request tuple through a compiled deployment.

        Args:
            compiled: the compiled feature script.
            request_row: a tuple matching the primary table's schema.
            preagg: window name → {aggregate slot → PreAggregator}; slots
                present here are answered from pre-aggregation, the rest
                from raw window scans.
            shared_fetch: micro-batching hook — a dict shared across the
                requests of one batch; window scans that resolve to the
                same (window, partition key, anchor ts) are fetched once
                and reused (hot keys under herd traffic).
            incremental: window name → ingest-time incremental window
                state (see :mod:`repro.online.incremental`).  Windows
                present here try the O(aggregates) hit path first and
                fall back to a fused scan-fold when the state declines
                (cold key, stale replication, out-of-order anchor).
            router: optional
                :class:`~repro.adaptive.ExecutionRouter`.  When set, the
                router picks the execution tier per window (possibly
                discarding the preagg/incremental fast paths in favour
                of a scan) and every tier execution is timed to
                calibrate its cost model.  Each tier computes identical
                answers, so routing never changes results.

        Returns:
            The projected feature row.

        Raises:
            DeadlineExceededError: the ambient request deadline (see
                :mod:`repro.serving.deadline`) ran out mid-plan.
        """
        if self._obs.enabled:
            return self._execute_request_traced(compiled, request_row,
                                                preagg, shared_fetch,
                                                incremental, router)
        deadline = current_deadline()
        plan = compiled.plan
        validated = plan.table_schema.validate_row(request_row)
        counters = _RequestCounters()

        # Build the combined row: primary columns then each join's.
        combined: List[Any] = [None] * compiled.combined_width
        combined[:len(validated)] = validated
        for join in compiled.joins:
            matched = self._resolve_join(join, combined, counters)
            if matched is not None:
                combined[join.start_slot:
                         join.start_slot + join.right_width] = matched
        combined_tuple = tuple(combined)

        if compiled.where_fn is not None \
                and compiled.where_fn(combined_tuple) is not True:
            self.stats.apply(counters)
            raise ExecutionError(
                "request tuple filtered out by WHERE predicate")

        # Window aggregates, with row fetches shared between windows that
        # the compiler recognised as identical definitions.
        aggregate_values: List[Any] = [None] * compiled.aggregate_count
        fetched: Dict[str, List[List[Row]]] = {}
        for name, window in compiled.windows.items():
            if not window.aggregates:
                continue
            if deadline is not None:
                deadline.check("request")
            canonical = compiled.merged_windows.get(name, name)
            slots_src = preagg.get(name) if preagg is not None else None
            # Keyed by the window's own name: merged siblings share a
            # scan but carry distinct aggregate slots.
            state = incremental.get(name) \
                if incremental is not None else None
            router_key = None
            if router is not None:
                router_key = window.partition_key(validated)
                router.note_request(name, router_key)
                if slots_src:
                    # The requested span informs bucket sizing whatever
                    # tier ends up serving this request.
                    router.observe_span(
                        name, window.plan.range_preceding_ms or 0)
                tier = router.decide(name, router_key,
                                     has_incremental=state is not None,
                                     has_preagg=bool(slots_src))
                if tier != "preagg":
                    slots_src = None
                if tier == "scan":
                    state = None
            # Empty path: alias the shared immutable map instead of
            # allocating a dict per window per request.
            preagg_slots: Mapping[int, PreAggregator] = \
                dict(slots_src) if slots_src else _NO_PREAGG
            raw_aggregates = [compiled_agg for compiled_agg
                              in window.aggregates
                              if compiled_agg.slot not in preagg_slots]
            if raw_aggregates or not preagg_slots:
                results = None
                if state is not None and not preagg_slots:
                    if router is not None:
                        started = perf_counter()
                        results = state.compute(validated)
                        router.observe_incremental(
                            name, (perf_counter() - started) * 1_000.0,
                            hit=results is not None)
                    else:
                        results = state.compute(validated)
                    if results is not None:
                        counters.incremental_hits += 1
                        counters.note_window(name, hit=True)
                    else:
                        counters.incremental_fallbacks += 1
                        counters.note_window(name, hit=False)
                if results is None:
                    scan_started = perf_counter() \
                        if router is not None else 0.0
                    blocks_before = counters.scan_blocks
                    if canonical not in fetched:
                        fetched[canonical] = self._window_blocks(
                            compiled, window, validated, counters,
                            shared_fetch, canonical)
                    results = self._fold_window(window, fetched[canonical])
                    if router is not None:
                        router.observe_scan(
                            name, router_key,
                            (perf_counter() - scan_started) * 1_000.0,
                            counters.scan_blocks - blocks_before)
                for slot, value in results.items():
                    if slot not in preagg_slots:
                        aggregate_values[slot] = value
            if preagg_slots:
                preagg_started = perf_counter() \
                    if router is not None else 0.0
                for slot, aggregator in preagg_slots.items():
                    aggregate_values[slot] = self._preagg_value(
                        compiled, window, aggregator, validated, counters)
                if router is not None:
                    router.observe_preagg(
                        name,
                        (perf_counter() - preagg_started) * 1_000.0)
        extended = combined_tuple + tuple(aggregate_values)
        projected = compiled.project(extended)
        self.stats.apply(counters)
        if router is not None:
            router.after_request()
        return projected

    # ------------------------------------------------------------------
    # traced request path (observability enabled)

    def _execute_request_traced(
            self, compiled: CompiledQuery, request_row: Sequence[Any],
            preagg: Optional[Mapping[str, Mapping[int, PreAggregator]]],
            shared_fetch: Optional[Dict[Any, List[List[Row]]]] = None,
            incremental: Optional[Mapping[str, Any]] = None,
            router: Optional[Any] = None
    ) -> Row:
        """:meth:`execute_request` with per-stage spans and metrics.

        Control flow mirrors the untraced body exactly; the untraced
        version stays separate so the default-off path adds nothing to
        the request latency the paper's Figure 6 measures.
        """
        tracer = self._obs.tracer
        deadline = current_deadline()
        plan = compiled.plan
        validated = plan.table_schema.validate_row(request_row)
        counters = _RequestCounters()
        self._m_requests.inc()

        combined: List[Any] = [None] * compiled.combined_width
        combined[:len(validated)] = validated
        for join in compiled.joins:
            with tracer.span("index.seek",
                             table=join.plan.right_table) as span:
                matched = self._resolve_join(join, combined, counters)
                span.set_tag(hit=matched is not None)
            if matched is not None:
                combined[join.start_slot:
                         join.start_slot + join.right_width] = matched
        combined_tuple = tuple(combined)

        if compiled.where_fn is not None \
                and compiled.where_fn(combined_tuple) is not True:
            self.stats.apply(counters)
            raise ExecutionError(
                "request tuple filtered out by WHERE predicate")

        aggregate_values: List[Any] = [None] * compiled.aggregate_count
        fetched: Dict[str, List[List[Row]]] = {}
        for name, window in compiled.windows.items():
            if not window.aggregates:
                continue
            if deadline is not None:
                deadline.check("request")
            canonical = compiled.merged_windows.get(name, name)
            slots_src = preagg.get(name) if preagg is not None else None
            state = incremental.get(name) \
                if incremental is not None else None
            router_key = None
            if router is not None:
                router_key = window.partition_key(validated)
                router.note_request(name, router_key)
                if slots_src:
                    # The requested span informs bucket sizing whatever
                    # tier ends up serving this request.
                    router.observe_span(
                        name, window.plan.range_preceding_ms or 0)
                with tracer.span("router.decide", window=name) as span:
                    tier = router.decide(name, router_key,
                                         has_incremental=state is not None,
                                         has_preagg=bool(slots_src))
                    span.set_tag(tier=tier)
                if tier != "preagg":
                    slots_src = None
                if tier == "scan":
                    state = None
            # Empty path: alias the shared immutable map instead of
            # allocating a dict per window per request.
            preagg_slots: Mapping[int, PreAggregator] = \
                dict(slots_src) if slots_src else _NO_PREAGG
            raw_aggregates = [compiled_agg for compiled_agg
                              in window.aggregates
                              if compiled_agg.slot not in preagg_slots]
            if raw_aggregates or not preagg_slots:
                results = None
                if state is not None and not preagg_slots:
                    with tracer.span("incremental.lookup",
                                     window=name) as span:
                        if router is not None:
                            started = perf_counter()
                            results = state.compute(validated)
                            router.observe_incremental(
                                name,
                                (perf_counter() - started) * 1_000.0,
                                hit=results is not None)
                        else:
                            results = state.compute(validated)
                        span.set_tag(hit=results is not None)
                    if results is not None:
                        counters.incremental_hits += 1
                        counters.note_window(name, hit=True)
                        self._m_incr_hits.inc()
                    else:
                        counters.incremental_fallbacks += 1
                        counters.note_window(name, hit=False)
                        self._m_incr_fallbacks.inc()
                if results is None:
                    scan_started = perf_counter() \
                        if router is not None else 0.0
                    blocks_before = counters.scan_blocks
                    if canonical not in fetched:
                        scanned_before = counters.rows_scanned
                        with tracer.span("window.scan", window=name) as span:
                            fetched[canonical] = self._window_blocks(
                                compiled, window, validated, counters,
                                shared_fetch, canonical)
                            span.set_tag(rows=sum(
                                len(block)
                                for block in fetched[canonical]))
                        self._m_rows_scanned.inc(
                            counters.rows_scanned - scanned_before)
                        self._m_scan_blocks.inc(
                            counters.scan_blocks - blocks_before)
                    blocks = fetched[canonical]
                    with tracer.span("agg.fold", window=name,
                                     rows=sum(len(block)
                                              for block in blocks)):
                        results = self._fold_window(window, blocks)
                    if router is not None:
                        router.observe_scan(
                            name, router_key,
                            (perf_counter() - scan_started) * 1_000.0,
                            counters.scan_blocks - blocks_before)
                for slot, value in results.items():
                    if slot not in preagg_slots:
                        aggregate_values[slot] = value
            if preagg_slots:
                preagg_started = perf_counter() \
                    if router is not None else 0.0
                for slot, aggregator in preagg_slots.items():
                    merges_before = counters.preagg_bucket_merges
                    raw_before = counters.preagg_raw_rows
                    with tracer.span("preagg.lookup", window=name,
                                     func=aggregator.func_name) as span:
                        aggregate_values[slot] = self._preagg_value(
                            compiled, window, aggregator, validated,
                            counters)
                        span.set_tag(
                            bucket_merges=(counters.preagg_bucket_merges
                                           - merges_before),
                            raw_rows=counters.preagg_raw_rows - raw_before)
                    self._m_preagg_merges.inc(
                        counters.preagg_bucket_merges - merges_before)
                    self._m_preagg_raw.inc(
                        counters.preagg_raw_rows - raw_before)
                if router is not None:
                    router.observe_preagg(
                        name,
                        (perf_counter() - preagg_started) * 1_000.0)
        extended = combined_tuple + tuple(aggregate_values)
        with tracer.span("encode"):
            projected = compiled.project(extended)
        self._m_join_lookups.inc(len(compiled.joins))
        self.stats.apply(counters)
        if router is not None:
            router.after_request()
        return projected

    # ------------------------------------------------------------------
    # joins

    def _resolve_join(self, join: CompiledJoin, combined: List[Any],
                      counters: _RequestCounters) -> Optional[Row]:
        table = self._tables[join.plan.right_table]
        key_value = join.key_fn(tuple(combined))
        counters.join_lookups += 1
        if join.residual_fn is None:
            hit = table.last_join_lookup(join.key_columns, key_value)
            return hit[1] if hit is not None else None
        # Residual condition: walk candidates newest-first until one passes.
        index = table.find_index(join.key_columns)
        candidates = table.window_scan(join.key_columns, index.ts_column,
                                       key_value)
        for _ts, candidate in candidates:
            probe = list(combined)
            probe[join.start_slot:
                  join.start_slot + join.right_width] = candidate
            counters.rows_scanned += 1
            if join.residual_fn(tuple(probe)) is True:
                return candidate
        return None

    # ------------------------------------------------------------------
    # windows

    def _fold_window(self, window: CompiledWindow,
                     blocks: List[List[Row]]) -> Dict[int, Any]:
        if self._fused_fold:
            return window.compute_blocks(blocks)
        rows = [row for block in blocks for row in block]
        return window.compute_naive(rows)

    def _window_blocks(self, compiled: CompiledQuery,
                       window: CompiledWindow, request_row: Row,
                       counters: _RequestCounters,
                       shared: Optional[Dict[Any, List[List[Row]]]] = None,
                       cache_name: Optional[str] = None) -> List[List[Row]]:
        """Fetch a window's rows as newest-first blocks, request row first.

        With ``shared`` (one dict per micro-batch), the *stored* row
        blocks of a scan are cached under ``(window, partition key,
        anchor ts)`` and reused by later requests in the batch that
        resolve to the identical scan — the request row itself is
        prepended per request, so requests sharing a key/timestamp but
        carrying different payloads stay correct.
        """
        plan = window.plan
        primary = compiled.plan.table
        key = window.partition_key(request_row)
        anchor_ts = normalize_ts(window.order_value(request_row))
        if plan.is_range_frame:
            end_ts: Optional[int] = anchor_ts - plan.range_preceding_ms
            limit: Optional[int] = None
        elif plan.rows_preceding is not None:
            end_ts = None
            limit = plan.rows_preceding - 1  # preceding rows only
        else:
            end_ts = None
            limit = None

        cache_key = (cache_name, key, anchor_ts) \
            if shared is not None and cache_name is not None else None
        stored = shared.get(cache_key) if cache_key is not None else None
        if stored is None:
            # INSTANCE_NOT_IN_WINDOW: stored instance-table rows never
            # enter the window — only union-table rows (the request row
            # itself still participates unless EXCLUDE CURRENT_ROW).
            sources = [] if plan.instance_not_in_window \
                else [self._tables[primary]]
            sources.extend(self._tables[union_table]
                           for union_table in plan.union_tables)
            stored = self._fetch_stored_blocks(
                sources, plan, key, anchor_ts, end_ts, limit)
            counters.rows_scanned += sum(len(block) for block in stored)
            counters.scan_blocks += len(stored)
            if cache_key is not None:
                shared[cache_key] = stored
        else:
            counters.shared_scan_hits += 1
            self._m_shared_scans.inc()

        blocks: List[List[Row]] = [] if plan.exclude_current_row \
            else [[request_row]]
        blocks.extend(stored)
        if plan.maxsize is not None:
            blocks = _cap_blocks(blocks, plan.maxsize)
        return blocks

    def _fetch_stored_blocks(self, sources: List[Any], plan: Any, key: Any,
                             anchor_ts: int, end_ts: Optional[int],
                             limit: Optional[int]) -> List[List[Row]]:
        """Scan the window's sources into newest-first row blocks.

        Single-source windows stream the storage layer's blocks through
        unchanged (no merge step at all); unions fall back to a k-way
        merge over block cursors.  Storage objects without the chunked
        API (e.g. cluster table views, which merge partitions remotely)
        degrade to the per-row iterator path.
        """
        if limit is not None and limit <= 0:
            return []  # e.g. ROWS BETWEEN 0 PRECEDING: only the request row
        if self._block_scan:
            block_scans = [getattr(source, "window_scan_blocks", None)
                           for source in sources]
            if all(scan is not None for scan in block_scans):
                if len(block_scans) == 1:
                    return [[pair[1] for pair in block]
                            for block in block_scans[0](
                                plan.partition_columns, plan.order_column,
                                key, start_ts=anchor_ts, end_ts=end_ts,
                                limit=limit)]
                merged = _merge_blocks_newest_first(
                    [iter(scan(plan.partition_columns, plan.order_column,
                               key, start_ts=anchor_ts, end_ts=end_ts))
                     for scan in block_scans], limit=limit)
                return [merged] if merged else []
        iterators = [
            source.window_scan(plan.partition_columns, plan.order_column,
                               key, start_ts=anchor_ts, end_ts=end_ts)
            for source in sources
        ]
        merged_rows = [pair[1] for pair
                       in _merge_newest_first(iterators, limit=limit)]
        return [merged_rows] if merged_rows else []

    # ------------------------------------------------------------------
    # pre-aggregation path

    def _preagg_value(self, compiled: CompiledQuery, window: CompiledWindow,
                      aggregator: PreAggregator, request_row: Row,
                      counters: _RequestCounters) -> Any:
        """Answer one long-window aggregate via query refinement."""
        plan = window.plan
        if not plan.is_range_frame:
            raise ExecutionError(
                "long-window pre-aggregation requires a ROWS_RANGE frame")
        key = window.partition_key(request_row)
        anchor_ts = normalize_ts(window.order_value(request_row))
        lo = anchor_ts - plan.range_preceding_ms
        refined = aggregator.query(key, lo, anchor_ts)
        counters.preagg_bucket_merges += sum(
            refined.buckets_used.values())

        function = aggregator.function
        state = refined.state
        # Raw spans: head (oldest edge) merged *before* the bucket state,
        # tail (newest edge, includes the open bucket) merged after.
        head_state = self._raw_span_state(compiled, window, aggregator, key,
                                          refined.head_span, counters)
        tail_state = self._raw_span_state(compiled, window, aggregator, key,
                                          refined.tail_span, counters)
        merged = None
        for piece in (head_state, state, tail_state):
            if piece is None:
                continue
            merged = piece if merged is None else function.merge(
                merged, piece)
        # The request tuple itself is part of the window.
        if not plan.exclude_current_row:
            request_state = function.create()
            function.add(request_state, *aggregator.extract_args(request_row))
            merged = request_state if merged is None else function.merge(
                merged, request_state)
        if merged is None:
            merged = function.create()
        return function.result(merged)

    def _raw_span_state(self, compiled: CompiledQuery,
                        window: CompiledWindow,
                        aggregator: PreAggregator, key: Any,
                        span: Optional[Tuple[int, int]],
                        counters: _RequestCounters) -> Any:
        if span is None:
            return None
        plan = window.plan
        table = self._tables[compiled.plan.table]
        function = aggregator.function
        state = None
        add = function.add
        extract = aggregator.extract_args
        scan_blocks = getattr(table, "window_scan_blocks", None) \
            if self._block_scan else None
        if scan_blocks is not None:
            blocks = list(scan_blocks(plan.partition_columns,
                                      plan.order_column, key,
                                      start_ts=span[1], end_ts=span[0]))
            counters.preagg_raw_rows += sum(len(block) for block in blocks)
            for block_index in range(len(blocks) - 1, -1, -1):
                block = blocks[block_index]
                for pair_index in range(len(block) - 1, -1, -1):
                    if state is None:
                        state = function.create()
                    add(state, *extract(block[pair_index][1]))
            return state
        rows = list(table.window_scan(plan.partition_columns,
                                      plan.order_column, key,
                                      start_ts=span[1], end_ts=span[0]))
        counters.preagg_raw_rows += len(rows)
        for _ts, row in reversed(rows):  # oldest → newest
            if state is None:
                state = function.create()
            add(state, *extract(row))
        return state


def _cap_blocks(blocks: List[List[Row]], maxsize: int) -> List[List[Row]]:
    """Truncate a block list to at most ``maxsize`` total rows."""
    capped: List[List[Row]] = []
    remaining = maxsize
    for block in blocks:
        if remaining <= 0:
            break
        if len(block) <= remaining:
            capped.append(block)
            remaining -= len(block)
        else:
            capped.append(block[:remaining])
            remaining = 0
    return capped


def _merge_newest_first(iterators: List[Iterator[Tuple[int, Row]]],
                        limit: Optional[int]) -> List[Tuple[int, Row]]:
    """k-way merge of newest-first (ts, row) streams, optionally capped."""
    if limit is not None and limit <= 0:
        return []  # e.g. ROWS BETWEEN 0 PRECEDING: only the request row
    heads: List[Optional[Tuple[int, Row]]] = [
        next(iterator, None) for iterator in iterators]
    merged: List[Tuple[int, Row]] = []
    while True:
        best_slot = -1
        best_ts: Optional[int] = None
        for slot, head in enumerate(heads):
            if head is not None and (best_ts is None or head[0] > best_ts):
                best_ts = head[0]
                best_slot = slot
        if best_slot < 0:
            return merged
        merged.append(heads[best_slot])  # type: ignore[arg-type]
        if limit is not None and len(merged) >= limit:
            return merged
        heads[best_slot] = next(iterators[best_slot], None)


def _merge_blocks_newest_first(
        block_iterators: List[Iterator[List[Tuple[int, Row]]]],
        limit: Optional[int]) -> List[Row]:
    """k-way merge over *block* streams, producing one merged row list.

    Cursors advance by list indexing within each source's current block,
    so the per-row cost is a few tuple compares — no generator resumes
    until a source exhausts a block.  Ties keep the earlier source first
    (the primary table leads), matching :func:`_merge_newest_first`.
    """
    blocks: List[Optional[List[Tuple[int, Row]]]] = []
    positions: List[int] = []
    for iterator in block_iterators:
        blocks.append(next(iterator, None))
        positions.append(0)
    merged: List[Row] = []
    append = merged.append
    while True:
        best_slot = -1
        best_ts: Optional[int] = None
        for slot, block in enumerate(blocks):
            if block is None:
                continue
            ts = block[positions[slot]][0]
            if best_ts is None or ts > best_ts:
                best_ts = ts
                best_slot = slot
        if best_slot < 0:
            return merged
        block = blocks[best_slot]
        position = positions[best_slot]
        append(block[position][1])  # type: ignore[index]
        if limit is not None and len(merged) >= limit:
            return merged
        position += 1
        if position >= len(block):  # type: ignore[arg-type]
            blocks[best_slot] = next(block_iterators[best_slot], None)
            positions[best_slot] = 0
        else:
            positions[best_slot] = position
