"""Recovery accounting: what a crash-restart cost and what it rebuilt.

Recovery time is a first-class axis of the system (the follow-up
performance study of OpenMLDB treats it alongside throughput and
latency), so every restart produces a :class:`RecoveryReport` the tests
and the bench harness can assert on and record: how much state came
from the snapshot, how much from binlog-tail replay, and how long the
whole round trip took.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

__all__ = ["RecoveryReport"]


@dataclasses.dataclass
class RecoveryReport:
    """Outcome of one crash-restart recovery."""

    #: the recovered node ("tablet-1") or database ("db").
    node: str
    #: rows restored from snapshot images.
    snapshot_rows: int = 0
    #: binlog entries replayed past the snapshots.
    replayed_entries: int = 0
    #: wall-clock duration of the restart, in seconds.
    seconds: float = 0.0
    #: per-shard/table applied offset after recovery.
    applied_offsets: Dict[Tuple[str, int], int] = \
        dataclasses.field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return self.snapshot_rows + self.replayed_entries

    def describe(self) -> str:
        return (f"{self.node}: recovered {self.snapshot_rows} snapshot "
                f"row(s) + {self.replayed_entries} replayed binlog "
                f"entr(ies) in {self.seconds * 1_000:.1f} ms")
