"""Column types shared by the SQL front end and the storage engines.

The type system follows OpenMLDB's: fixed-width scalar types, a string
type, and a millisecond timestamp.  Each type knows its storage width in
the compact row encoding of the paper's Section 7.1 (``None`` width marks
variable-length types) and how to validate / coerce Python values.
"""

from __future__ import annotations

import datetime as _dt
import enum
import math
from typing import Any, Optional

from .errors import TypeMismatchError

__all__ = [
    "ColumnType",
    "coerce_value",
    "is_numeric",
    "python_type",
]


class ColumnType(enum.Enum):
    """Supported column types and their fixed storage widths in bytes."""

    BOOL = ("bool", 1)
    SMALLINT = ("smallint", 2)
    INT = ("int", 4)
    BIGINT = ("bigint", 8)
    FLOAT = ("float", 4)
    DOUBLE = ("double", 8)
    TIMESTAMP = ("timestamp", 8)
    DATE = ("date", 4)
    STRING = ("string", None)

    def __init__(self, sql_name: str, width: Optional[int]) -> None:
        self.sql_name = sql_name
        self.width = width

    @property
    def is_fixed_width(self) -> bool:
        """True for types with a fixed storage width (not strings)."""
        return self.width is not None

    @classmethod
    def from_sql_name(cls, name: str) -> "ColumnType":
        """Look up a type by its SQL spelling (case-insensitive).

        Common aliases (``int32``, ``int64``, ``varchar`` ...) are accepted.
        """
        normalized = name.strip().lower()
        aliases = {
            "int16": cls.SMALLINT,
            "int32": cls.INT,
            "integer": cls.INT,
            "int64": cls.BIGINT,
            "long": cls.BIGINT,
            "real": cls.FLOAT,
            "varchar": cls.STRING,
            "text": cls.STRING,
            "bool": cls.BOOL,
            "boolean": cls.BOOL,
        }
        if normalized in aliases:
            return aliases[normalized]
        for member in cls:
            if member.sql_name == normalized:
                return member
        raise TypeMismatchError(f"unknown column type: {name!r}")


_INT_RANGES = {
    ColumnType.SMALLINT: (-(2 ** 15), 2 ** 15 - 1),
    ColumnType.INT: (-(2 ** 31), 2 ** 31 - 1),
    ColumnType.BIGINT: (-(2 ** 63), 2 ** 63 - 1),
    ColumnType.TIMESTAMP: (0, 2 ** 63 - 1),
}


def python_type(column_type: ColumnType) -> type:
    """Return the Python type used to represent values of ``column_type``."""
    if column_type in (ColumnType.SMALLINT, ColumnType.INT, ColumnType.BIGINT,
                       ColumnType.TIMESTAMP):
        return int
    if column_type in (ColumnType.FLOAT, ColumnType.DOUBLE):
        return float
    if column_type is ColumnType.BOOL:
        return bool
    if column_type is ColumnType.DATE:
        return _dt.date
    return str


def is_numeric(column_type: ColumnType) -> bool:
    """True for types that participate in arithmetic aggregates."""
    return column_type in (
        ColumnType.SMALLINT,
        ColumnType.INT,
        ColumnType.BIGINT,
        ColumnType.FLOAT,
        ColumnType.DOUBLE,
        ColumnType.TIMESTAMP,
    )


def coerce_value(value: Any, column_type: ColumnType) -> Any:
    """Validate ``value`` against ``column_type``, coercing where lossless.

    ``None`` passes through (nullability is enforced by the schema, not the
    type).  Ints are accepted for float columns; bools are rejected for
    integer columns to avoid silently storing flags as numbers.

    Raises:
        TypeMismatchError: if the value cannot represent the column type.
    """
    if value is None:
        return None
    if column_type is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeMismatchError(f"expected bool, got {type(value).__name__}")
    if column_type in _INT_RANGES:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(
                f"expected {column_type.sql_name}, got {type(value).__name__}")
        low, high = _INT_RANGES[column_type]
        if not low <= value <= high:
            raise TypeMismatchError(
                f"value {value} out of range for {column_type.sql_name}")
        return value
    if column_type in (ColumnType.FLOAT, ColumnType.DOUBLE):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"expected {column_type.sql_name}, got {type(value).__name__}")
        result = float(value)
        if math.isnan(result):
            # NaN is representable but rejected on ingest: feature pipelines
            # treat missing values as NULL, never NaN.
            raise TypeMismatchError("NaN is not storable; use NULL instead")
        return result
    if column_type is ColumnType.DATE:
        if isinstance(value, _dt.datetime):
            return value.date()
        if isinstance(value, _dt.date):
            return value
        raise TypeMismatchError(f"expected date, got {type(value).__name__}")
    if column_type is ColumnType.STRING:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"expected string, got {type(value).__name__}")
    raise TypeMismatchError(f"unsupported column type: {column_type}")
