"""Tests for the in-memory table (storage/memtable)."""

import pytest

from repro.errors import IndexNotFoundError, SchemaError
from repro.schema import IndexDef, Schema, TTLKind, TTLSpec
from repro.storage.memtable import MemTable, normalize_ts


@pytest.fixture
def table(events_schema, events_index):
    return MemTable("events", events_schema, [events_index])


class TestConstruction:
    def test_requires_an_index(self, events_schema):
        with pytest.raises(SchemaError):
            MemTable("t", events_schema, [])

    def test_index_columns_validated(self, events_schema):
        with pytest.raises(SchemaError):
            MemTable("t", events_schema,
                     [IndexDef(("missing",), "ts")])

    def test_ts_column_must_be_time_typed(self, events_schema):
        with pytest.raises(SchemaError):
            MemTable("t", events_schema,
                     [IndexDef(("key",), "label")])

    def test_bigint_ts_accepted(self):
        schema = Schema.from_pairs([("k", "string"), ("seq", "bigint")])
        MemTable("t", schema, [IndexDef(("k",), "seq")])


class TestInsertAndScan:
    def test_insert_returns_offsets(self, table):
        assert table.insert(("a", 1, 1.0, "x")) == 0
        assert table.insert(("a", 2, 2.0, "y")) == 1
        assert table.row_count == 2

    def test_rows_in_insertion_order(self, table):
        table.insert(("a", 2, 1.0, "x"))
        table.insert(("a", 1, 2.0, "y"))
        assert [row[1] for row in table.rows()] == [2, 1]

    def test_window_scan_newest_first(self, table):
        for ts in (10, 30, 20):
            table.insert(("a", ts, float(ts), "x"))
        result = [ts for ts, _row in
                  table.window_scan(("key",), "ts", "a")]
        assert result == [30, 20, 10]

    def test_window_scan_bounds(self, table):
        for ts in range(0, 100, 10):
            table.insert(("a", ts, float(ts), "x"))
        result = [ts for ts, _row in table.window_scan(
            ("key",), "ts", "a", start_ts=50, end_ts=30)]
        assert result == [50, 40, 30]

    def test_window_scan_limit(self, table):
        for ts in range(10):
            table.insert(("a", ts, 0.0, "x"))
        result = list(table.window_scan(("key",), "ts", "a", limit=3))
        assert len(result) == 3

    def test_unknown_index_raises(self, table):
        with pytest.raises(IndexNotFoundError):
            table.window_scan(("label",), "ts", "x")

    def test_validation_on_insert(self, table):
        with pytest.raises(Exception):
            table.insert(("a", "not-a-ts", 1.0, "x"))


class TestLastJoinLookup:
    def test_latest_row(self, table):
        table.insert(("a", 10, 1.0, "x"))
        table.insert(("a", 20, 2.0, "y"))
        table.insert(("b", 99, 3.0, "z"))
        hit = table.last_join_lookup(("key",), "a")
        assert hit == (20, ("a", 20, 2.0, "y"))

    def test_before_ts(self, table):
        table.insert(("a", 10, 1.0, "x"))
        table.insert(("a", 20, 2.0, "y"))
        hit = table.last_join_lookup(("key",), "a", before_ts=15)
        assert hit[0] == 10

    def test_miss_returns_none(self, table):
        assert table.last_join_lookup(("key",), "nope") is None


class TestMultipleIndexes:
    def test_each_index_serves_its_keys(self, events_schema):
        table = MemTable("t", events_schema, [
            IndexDef(("key",), "ts"),
            IndexDef(("label",), "ts"),
        ])
        table.insert(("a", 1, 1.0, "red"))
        table.insert(("b", 2, 2.0, "red"))
        by_key = list(table.window_scan(("key",), "ts", "a"))
        by_label = list(table.window_scan(("label",), "ts", "red"))
        assert len(by_key) == 1
        assert len(by_label) == 2

    def test_composite_key(self, events_schema):
        table = MemTable("t", events_schema,
                         [IndexDef(("key", "label"), "ts")])
        table.insert(("a", 1, 1.0, "red"))
        table.insert(("a", 2, 2.0, "blue"))
        rows = list(table.window_scan(("key", "label"), "ts",
                                      ("a", "red")))
        assert len(rows) == 1


class TestSubscribersAndMemory:
    def test_subscriber_receives_offsets(self, table):
        seen = []
        table.subscribe(lambda name, row, offset: seen.append(
            (name, offset)))
        table.insert(("a", 1, 1.0, "x"))
        table.insert(("a", 2, 2.0, "y"))
        assert seen == [("events", 0), ("events", 1)]

    def test_memory_bytes_grow(self, table):
        before = table.memory_bytes
        table.insert(("a", 1, 1.0, "payload"))
        assert table.memory_bytes > before

    def test_key_cardinality(self, table):
        for key in ("a", "b", "a", "c"):
            table.insert((key, 1, 0.0, "x"))
        assert table.key_cardinality() == 3


class TestEviction:
    def test_evict_expired_frees_index_not_log(self, events_schema):
        ttl = TTLSpec(kind=TTLKind.ABSOLUTE, abs_ttl_ms=100)
        table = MemTable("t", events_schema,
                         [IndexDef(("key",), "ts", ttl=ttl)])
        for ts in (0, 50, 950):
            table.insert(("a", ts, 0.0, "x"))
        removed = table.evict_expired(now_ts=1000)
        assert removed == 2
        assert len(list(table.window_scan(("key",), "ts", "a"))) == 1
        assert table.row_count == 3  # the log backs offline scans


class TestNormalizeTs:
    def test_int_passthrough(self):
        assert normalize_ts(12345) == 12345

    def test_datetime(self):
        import datetime
        moment = datetime.datetime(2024, 1, 1, tzinfo=datetime.timezone.utc)
        assert normalize_ts(moment) == int(moment.timestamp() * 1000)

    def test_bad_type_raises(self):
        with pytest.raises(Exception):
            normalize_ts("noon")

    def test_naive_datetime_is_utc_regardless_of_local_tz(self):
        """Regression: a naive datetime used to go through the *local*
        timezone, so the same dataset bucketed differently per machine
        (train/serve skew).  Pin TZ to three zones and demand the same
        milliseconds — the UTC epoch — from all of them."""
        import datetime
        import os
        import time
        naive = datetime.datetime(2024, 1, 1, 12, 0, 0)
        expected = int(naive.replace(
            tzinfo=datetime.timezone.utc).timestamp() * 1000)
        original = os.environ.get("TZ")
        results = {}
        try:
            for zone in ("UTC", "America/New_York", "Asia/Tokyo"):
                os.environ["TZ"] = zone
                time.tzset()
                results[zone] = normalize_ts(naive)
        finally:
            if original is None:
                os.environ.pop("TZ", None)
            else:
                os.environ["TZ"] = original
            time.tzset()
        assert all(value == expected for value in results.values()), \
            results

    def test_aware_datetime_honors_its_own_offset(self):
        import datetime
        tokyo = datetime.timezone(datetime.timedelta(hours=9))
        moment = datetime.datetime(2024, 1, 1, 9, 0, tzinfo=tokyo)
        midnight_utc = datetime.datetime(
            2024, 1, 1, 0, 0, tzinfo=datetime.timezone.utc)
        assert normalize_ts(moment) == normalize_ts(midnight_utc)
