"""repro.adaptive — self-tuning execution driven by live measurements.

PR 4 left the online request path with three execution tiers
(ingest-time incremental state, fused block scan-fold, naive per-row
fold) plus the long-window pre-aggregation path, all selected by
hand-coded eligibility rules fixed at deploy time.  The observability
layer already measures exactly the signals needed to choose between
them — incremental hit/fallback counters, scan block counts, stage
timings, governor bytes — so this package closes the loop:

* :class:`ExecutionRouter` — a per-deployment router that (a) picks the
  execution tier per request from a calibrated cost model (estimated
  scan blocks × measured per-block cost vs measured incremental lookup
  cost), (b) auto-provisions incremental window state for keys whose
  observed request rate justifies the ingest cost and demotes cold ones
  under memory pressure, and (c) re-sizes pre-aggregation buckets from
  the live distribution of requested window spans instead of the fixed
  DDL value.
* :class:`RouterConfig` — the thresholds and half-lives.
* :data:`Tier` constants — ``INCREMENTAL`` / ``PREAGG`` / ``SCAN``.

Every adaptation is answer-invariant by construction: promotion
replays the table log in arrival order under the state lock, demotion
just reverts a key to the scan path, and bucket re-sizing swaps in a
freshly backfilled aggregator only when provably no row was lost or
duplicated.  ``tests/test_adaptive.py`` pins this with the same
differential oracle as ``tests/test_fused_fold.py``.

See docs/architecture.md §"Adaptive execution" for a walkthrough and
docs/observability.md for the ``online.router.*`` series and the
``router.decide`` span.
"""

from __future__ import annotations

from .router import ExecutionRouter, RouterConfig, Tier

__all__ = ["ExecutionRouter", "RouterConfig", "Tier"]
