"""Shared machinery for the baseline online engines.

Every baseline serves the *same* parsed feature script as OpenMLDB (one
SQL, many engines — the comparisons stay apples-to-apples) but executes
it with the storage layout and evaluation strategy characteristic of the
system it models.  :class:`BaselineOnlineEngine` centralises the common
request loop; subclasses override the storage hooks:

* ``_rows_for_key`` — how rows for a partition key are retrieved (full
  scan, hash index, remote fetch, ...);
* ``_order_rows`` — whether retrieval already provides time order or a
  per-request sort is needed (the paper's re-sort criticism).

Aggregates are evaluated by instantiating the aggregate per request and
folding the window rows through AST interpretation — no cycle binding,
no incremental state, no pre-aggregation — which is precisely the set of
optimisations the baselines lack.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..schema import Schema
from ..sql import ast
from ..sql.functions import get_aggregate
from ..sql.parser import parse_select
from ..sql.planner import QueryPlan, WindowPlan, build_plan
from ..storage.memtable import normalize_ts
from .interp import interpret_expr

__all__ = ["BaselineOnlineEngine", "BaselineStats"]


@dataclasses.dataclass
class BaselineStats:
    requests: int = 0
    rows_scanned: int = 0
    sorts: int = 0
    rpc_hops: int = 0
    bytes_moved: int = 0


class BaselineOnlineEngine:
    """Template for baseline request-mode engines.

    Args:
        sql: the feature script (same dialect as OpenMLDB).
        catalog: table name → schema.
    """

    name = "baseline"
    # Ad-hoc engines parse/plan every incoming query; they have no
    # deployed-compiled-plan concept (the paper's compilation cache).
    # Trino additionally analyses and distributes the plan across the
    # coordinator and workers, so its subclass raises this.
    plans_per_request = 1

    def __init__(self, sql: str, catalog: Mapping[str, Schema]) -> None:
        self.sql = sql
        self.statement = parse_select(sql)
        self.plan: QueryPlan = build_plan(self.statement, catalog)
        self.catalog = dict(catalog)
        self.stats = BaselineStats()

    # ------------------------------------------------------------------
    # storage hooks (subclasses override)

    def load(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-load rows into the baseline's storage."""
        raise NotImplementedError

    def _rows_for_key(self, table: str, key_column: str,
                      key_value: Any) -> List[Dict[str, Any]]:
        """Return the rows matching one partition key, as dicts."""
        raise NotImplementedError

    def _order_rows(self, rows: List[Dict[str, Any]],
                    ts_column: str) -> List[Dict[str, Any]]:
        """Time-order retrieved rows (newest first).

        Default: a per-request sort — none of the modelled systems keep
        time-ordered per-key state.
        """
        self.stats.sorts += 1
        return sorted(rows, key=lambda row: normalize_ts(row[ts_column]),
                      reverse=True)

    # ------------------------------------------------------------------
    # request loop

    def request(self, request_row: Sequence[Any]) -> Tuple[Any, ...]:
        """Serve one request tuple; returns the projected feature row."""
        self.stats.requests += 1
        # Fresh parse/plan per query — the cost a deployed compiled plan
        # avoids (Section 4.2's compilation cache).
        for _ in range(self.plans_per_request):
            build_plan(parse_select(self.sql), self.catalog)
        schema = self.plan.table_schema
        row_dict: Dict[str, Any] = dict(zip(schema.column_names,
                                            request_row))
        # LAST JOINs: fetch matches, sort by the join's order column, take
        # the newest (rank-and-filter, the paper's "additional rank and
        # filter operations in standard SQL").
        for join in self.plan.joins:
            right_schema = self.catalog[join.right_table]
            eq_values = {column: interpret_expr(expr, row_dict)
                         for expr, column in join.eq_keys}
            first_key = next(iter(eq_values))
            candidates = self._rows_for_key(join.right_table, first_key,
                                            eq_values[first_key])
            candidates = [candidate for candidate in candidates
                          if all(candidate.get(column) == value
                                 for column, value in eq_values.items())]
            if join.order_by:
                candidates = self._order_rows(candidates, join.order_by)
            matched = None
            for candidate in candidates:
                if join.residual is None:
                    matched = candidate
                    break
                probe = dict(row_dict)
                probe.update(candidate)
                if interpret_expr(join.residual, probe) is True:
                    matched = candidate
                    break
            for column in right_schema.column_names:
                row_dict.setdefault(
                    column, matched.get(column) if matched else None)
            if matched:
                row_dict.update(matched)

        # Windows: fetch, sort, slice, fold each aggregate independently.
        aggregate_values: Dict[ast.FuncCall, Any] = {}
        for window in self.plan.windows.values():
            if not window.aggregates:
                continue
            rows = self._window_rows(window, row_dict)
            for binding in window.aggregates:
                function = get_aggregate(binding.func_name,
                                         *binding.constants)
                state = function.create()
                for window_row in reversed(rows):  # oldest → newest
                    function.add(state, *(
                        interpret_expr(arg, window_row)
                        for arg in binding.value_args))
                aggregate_values[binding.call] = function.result(state)

        return tuple(self._project_item(item, row_dict, aggregate_values)
                     for item in self._scalar_items())

    def _scalar_items(self) -> List[ast.SelectItem]:
        items: List[ast.SelectItem] = []
        for item in self.statement.items:
            if isinstance(item.expr, ast.Star):
                table = item.expr.table or self.plan.table
                schema = self.catalog.get(table, self.plan.table_schema)
                items.extend(
                    ast.SelectItem(ast.ColumnRef(name))
                    for name in schema.column_names)
            else:
                items.append(item)
        return items

    def _project_item(self, item: ast.SelectItem,
                      row_dict: Mapping[str, Any],
                      aggregate_values: Mapping[ast.FuncCall, Any]) -> Any:
        expr = item.expr
        if isinstance(expr, ast.FuncCall) and expr in aggregate_values:
            return aggregate_values[expr]
        return interpret_expr(expr, row_dict)

    def _window_rows(self, window: WindowPlan,
                     request_dict: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Window rows newest-first, request row included (no indexes)."""
        key_column = window.partition_columns[0]
        key_value = request_dict[key_column]
        extra_keys = {column: request_dict[column]
                      for column in window.partition_columns[1:]}
        gathered: List[Dict[str, Any]] = []
        source_tables = window.union_tables if window.instance_not_in_window \
            else (self.plan.table, *window.union_tables)
        for table in source_tables:
            fetched = self._rows_for_key(table, key_column, key_value)
            if extra_keys:
                fetched = [row for row in fetched
                           if all(row.get(column) == value
                                  for column, value in extra_keys.items())]
            gathered.extend(fetched)
        anchor_ts = normalize_ts(request_dict[window.order_column])
        gathered = [row for row in gathered
                    if normalize_ts(row[window.order_column]) <= anchor_ts]
        ordered = self._order_rows(gathered, window.order_column)
        if window.range_preceding_ms is not None:
            horizon = anchor_ts - window.range_preceding_ms
            ordered = [row for row in ordered
                       if normalize_ts(row[window.order_column]) >= horizon]
        rows = [] if window.exclude_current_row else [dict(request_dict)]
        rows.extend(ordered)
        if window.rows_preceding is not None:
            rows = rows[:window.rows_preceding]
        if window.maxsize is not None:
            rows = rows[:window.maxsize]
        self.stats.rows_scanned += len(rows)
        return rows
