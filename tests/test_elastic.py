"""Elastic-data-plane smoke: split, migrate, and rebalance under
sustained closed-loop traffic with zero acknowledged-write loss.

`make elastic-smoke` runs this module with ``-k smoke``.
"""

import threading

import pytest

from repro.cluster import NameServer, RetryPolicy, TabletServer
from repro.ctlplane import (PartitionSplitter, Rebalancer, ShardMigrator,
                            TenantRegistry)
from repro.errors import OpenMLDBError, TenantBudgetError
from repro.obs import Observability
from repro.schema import IndexDef, Schema
from repro.serving import FrontendServer

FAST = RetryPolicy(attempts=4, base_delay_ms=0.1, multiplier=2.0,
                   max_delay_ms=2.0, rpc_timeout_ms=50.0)

SCHEMA = Schema.from_pairs([
    ("uid", "string"), ("ts", "timestamp"), ("amt", "double")])

FEATURE_SQL = ("SELECT uid, sum(amt) OVER w AS s FROM ev "
               "WINDOW w AS (PARTITION BY uid ORDER BY ts "
               "ROWS_RANGE BETWEEN 1000 PRECEDING AND CURRENT ROW)")


def make_cluster(n_tablets=4, obs=None):
    tablets = [TabletServer(f"t{i}") for i in range(n_tablets)]
    cluster = NameServer(tablets, retry_policy=FAST, obs=obs)
    cluster.create_table("ev", SCHEMA, [IndexDef(("uid",), "ts")],
                         partitions=2, replicas=2)
    cluster.deploy("feat", FEATURE_SQL)
    return cluster


def window_answers(cluster, uids):
    view = cluster._views["ev"]
    return {uid: list(view.window_scan(("uid",), "ts", uid))
            for uid in uids}


class TestElasticSmoke:
    def test_smoke_rebalance_under_traffic_loses_nothing(self):
        """The acceptance gate: run split -> migrate -> rebalance while
        closed-loop writers and readers hammer the cluster.  Every
        acknowledged write must survive, and post-move answers must be
        byte-identical to an untouched twin fed the same rows."""
        obs = Observability(enabled=True)
        cluster = make_cluster(obs=obs)
        twin = make_cluster()
        stop = threading.Event()
        acked = [[] for _ in range(3)]
        outcomes, errors = [], []
        outcome_lock = threading.Lock()

        def writer(slot):
            seq = 0
            while not stop.is_set():
                uid = f"w{slot}-user-{seq % 6}"
                row = (uid, 1_000 + seq * 10, float(seq % 9))
                try:
                    cluster.put("ev", row)
                except OpenMLDBError as exc:
                    errors.append(exc)
                else:
                    acked[slot].append(row)
                seq += 1

        def reader(frontend):
            seq = 0
            while not stop.is_set():
                uid = f"w{seq % 3}-user-{seq % 6}"
                try:
                    out = frontend.request("feat",
                                           (uid, 100_000, 0.0))
                except OpenMLDBError as exc:
                    out = exc
                with outcome_lock:
                    outcomes.append(out)
                seq += 1

        frontend = FrontendServer(cluster, workers=2, max_wait_ms=0,
                                  single_flight=False)
        threads = [threading.Thread(target=writer, args=(slot,))
                   for slot in range(3)]
        threads += [threading.Thread(target=reader, args=(frontend,))
                    for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            # The elastic triptych, live, no kill switches anywhere.
            splitter = PartitionSplitter(cluster, obs=obs)
            report = splitter.split("ev", 0)
            assert len(report.child_ids) == 2

            table = cluster.table_info("ev")
            pid = report.child_ids[0]
            source = table.assignment[pid][0]
            target = next(name for name in cluster.tablets
                          if name not in table.assignment[pid])
            ShardMigrator(cluster, obs=obs).migrate(
                "ev", pid, source, target)

            Rebalancer(cluster, splitter=splitter,
                       split_threshold_bytes=1 << 30,
                       imbalance_ratio=1.1, obs=obs).run_once()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            frontend.close()

        assert not errors, f"acknowledged-write path failed: {errors[:3]}"
        assert all(not thread.is_alive() for thread in threads)
        assert outcomes and all(
            isinstance(out, (dict, OpenMLDBError)) for out in outcomes)

        # Zero acknowledged-write loss: replay exactly the acked rows
        # into the untouched twin and demand identical window answers.
        uids = set()
        for slot_rows in acked:
            assert slot_rows  # every writer made progress
            for row in slot_rows:
                twin.put("ev", row)
                uids.add(row[0])
        assert window_answers(cluster, sorted(uids)) \
            == window_answers(twin, sorted(uids))
        for uid in sorted(uids):
            assert cluster.get_latest("ev", uid) \
                == twin.get_latest("ev", uid)
        cluster.close()
        twin.close()

    def test_smoke_tenant_shedding_preserves_neighbors(self):
        """A tenant blowing through its rate budget is shed with typed
        53xxx errors while an unthrottled neighbor sails through."""
        cluster = make_cluster()
        for k in range(5):
            cluster.put("ev", ("w0-user-0", 1_000 + k * 100, float(k)))
        tenants = TenantRegistry()
        tenants.register("noisy", rate_per_sec=1.0, burst=2)
        cluster.attach_tenants(tenants)
        frontend = FrontendServer(cluster, tenants=tenants, workers=2,
                                  max_wait_ms=0, single_flight=False)
        shed = quiet_ok = noisy_ok = 0
        try:
            for _ in range(20):
                try:
                    frontend.request("feat", ("w0-user-0", 1_500, 0.0),
                                     tenant="noisy")
                    noisy_ok += 1
                except TenantBudgetError as exc:
                    assert exc.reason == "tenant_rate"
                    assert exc.tenant == "noisy"
                    shed += 1
                frontend.request("feat", ("w0-user-0", 1_500, 0.0),
                                 tenant="quiet")
                quiet_ok += 1
        finally:
            frontend.close()
            cluster.close()
        assert noisy_ok >= 1       # the burst allowance was honored
        assert shed >= 10          # then the bucket ran dry
        assert quiet_ok == 20      # the neighbor never noticed


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
