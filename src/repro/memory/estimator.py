"""Empirical memory estimation model (paper Section 8.1).

Implements the paper's formula::

    mem_total = Σ_tables  n_replica_i × [
        Σ_indexes  n_pk_ij × (|pk_ij| + 156)
        + n_index_i × n_row_i × C
        + K × n_row_i × |row_i| ]

``C`` is 70 for "latest"/"absorlat" tables and 74 for
"absolute"/"absandlat"; ``K`` (data copies) ranges from 1 to the index
count.  The worked example — a "latest" table with 1 M rows, 300-byte
rows, two 16-byte-key indexes, two replicas, C=70, K=1 — comes out at
about 1.568 GB and is pinned by a unit test.

The estimator also recommends a storage engine per table: in-memory when
the estimate fits the budget and ~10 ms latency is required, disk-based
(≈80 % hardware saving, 20–30 ms) otherwise.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..errors import SchemaError
from ..schema import TTLKind

__all__ = ["IndexProfile", "TableProfile", "estimate_table_bytes",
           "estimate_total_bytes", "recommend_engine", "EngineChoice"]

_PK_OVERHEAD = 156  # per unique key: skiplist node + entry bookkeeping

_C_BY_KIND = {
    TTLKind.LATEST: 70,
    TTLKind.ABS_OR_LAT: 70,
    TTLKind.ABSOLUTE: 74,
    TTLKind.ABS_AND_LAT: 74,
}


@dataclasses.dataclass(frozen=True)
class IndexProfile:
    """Sizing inputs for one index: unique keys and their average length."""

    unique_keys: int
    avg_key_bytes: float


@dataclasses.dataclass(frozen=True)
class TableProfile:
    """Sizing inputs for one table."""

    rows: int
    avg_row_bytes: float
    indexes: Sequence[IndexProfile]
    replicas: int = 1
    ttl_kind: TTLKind = TTLKind.LATEST
    data_copies: int = 1  # K: 1 .. len(indexes)

    def __post_init__(self) -> None:
        if self.rows < 0 or self.avg_row_bytes < 0:
            raise SchemaError("rows/avg_row_bytes must be non-negative")
        if not self.indexes:
            raise SchemaError("a table profile needs at least one index")
        if self.replicas < 1:
            raise SchemaError("replicas must be >= 1")
        if not 1 <= self.data_copies <= len(self.indexes):
            raise SchemaError(
                "data_copies (K) must be between 1 and the index count")


def estimate_table_bytes(profile: TableProfile) -> float:
    """The paper's per-table estimate, in bytes."""
    c = _C_BY_KIND[profile.ttl_kind]
    index_term = sum(
        index.unique_keys * (index.avg_key_bytes + _PK_OVERHEAD)
        for index in profile.indexes)
    node_term = len(profile.indexes) * profile.rows * c
    data_term = profile.data_copies * profile.rows * profile.avg_row_bytes
    return profile.replicas * (index_term + node_term + data_term)


def estimate_total_bytes(profiles: Sequence[TableProfile]) -> float:
    """Sum of per-table estimates (the outer Σ of the formula)."""
    return sum(estimate_table_bytes(profile) for profile in profiles)


def measure_memtable_bytes(table) -> int:
    """Measured memory model of a live :class:`MemTable` (Table 2 side).

    Compact row payloads (exact, from the codec) plus the Section 8.1
    structural constants: ``C`` bytes of skiplist node per row per index
    and the per-unique-key entry overhead.
    """
    c = _C_BY_KIND[table.indexes[0].ttl.kind]
    node_bytes = len(table.indexes) * table.row_count * c
    key_bytes = 0
    for index in table.indexes:
        count = table.key_cardinality(index.name)
        key_bytes += count * (_PK_OVERHEAD + 16)  # 16 B average key
    return table.memory_bytes + node_bytes + key_bytes


@dataclasses.dataclass(frozen=True)
class EngineChoice:
    """A storage-engine recommendation with its expected latency band."""

    engine: str                 # "memory" | "disk"
    expected_latency_ms: Tuple[int, int]
    reason: str


def recommend_engine(profile: TableProfile, available_memory_bytes: float,
                     latency_budget_ms: Optional[int] = None
                     ) -> EngineChoice:
    """Section 8.1's engine assignment guidance.

    In-memory when the estimate fits and the latency budget demands it;
    disk-based when memory is short or a 20–30 ms budget allows the
    ~80 % hardware saving.
    """
    estimate = estimate_table_bytes(profile)
    fits = estimate <= available_memory_bytes
    needs_fast = latency_budget_ms is not None and latency_budget_ms < 20
    if fits and (needs_fast or latency_budget_ms is None):
        return EngineChoice(
            engine="memory", expected_latency_ms=(1, 10),
            reason=f"estimate {estimate / 1e9:.3f} GB fits available "
                   f"memory; ultra-low latency achievable")
    if not fits and needs_fast:
        return EngineChoice(
            engine="memory", expected_latency_ms=(1, 10),
            reason=f"estimate {estimate / 1e9:.3f} GB EXCEEDS available "
                   "memory but the latency budget requires the in-memory "
                   "engine: scale out or relax the budget")
    return EngineChoice(
        engine="disk", expected_latency_ms=(20, 30),
        reason=f"estimate {estimate / 1e9:.3f} GB; disk engine saves "
               "~80% hardware cost within a 20-30 ms budget")
