"""TalkingData-like click stream (paper Section 9.1, Table 2).

The real TalkingData AdTracking dataset (~200 M clicks over four days)
is ip-keyed, heavily skewed (bot ips generate enormous click counts), and
carries a mix of small ints, strings, and timestamps.  This generator
reproduces those statistical properties at configurable scale:

* ``ip`` follows a Zipf-like distribution so many tuples share hot keys
  (which is what makes the compact per-key layout matter for Table 2);
* columns mirror the Kaggle schema: ip, app, device, os, channel,
  click_time, is_attributed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator, List, Tuple

from ..schema import IndexDef, Schema

__all__ = ["TalkingDataConfig", "SCHEMA", "INDEX", "generate_clicks"]

SCHEMA = Schema.from_pairs([
    ("ip", "string"),
    ("app", "int"),
    ("device", "int"),
    ("os", "int"),
    ("channel", "int"),
    ("click_time", "timestamp"),
    ("is_attributed", "bool"),
])

INDEX = IndexDef(key_columns=("ip",), ts_column="click_time")


@dataclasses.dataclass(frozen=True)
class TalkingDataConfig:
    rows: int = 100_000
    distinct_ips: int = 5_000
    zipf_s: float = 1.2       # skew exponent; ~1.2 matches bot-heavy traffic
    seed: int = 7
    start_ts: int = 1_700_000_000_000
    span_ms: int = 4 * 86_400_000  # four days, like the Kaggle set


def _zipf_weights(n: int, s: float) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    return [weight / total for weight in weights]


def generate_clicks(config: TalkingDataConfig = TalkingDataConfig()
                    ) -> Iterator[Tuple]:
    """Yield click rows in time order."""
    rng = random.Random(config.seed)
    weights = _zipf_weights(config.distinct_ips, config.zipf_s)
    ips = [f"10.{index // 65536}.{(index // 256) % 256}.{index % 256}"
           for index in range(config.distinct_ips)]
    step = max(config.span_ms // max(config.rows, 1), 1)
    ts = config.start_ts
    for _ in range(config.rows):
        ip = rng.choices(ips, weights=weights, k=1)[0]
        yield (
            ip,
            rng.randrange(1, 400),        # app id
            rng.randrange(1, 100),        # device
            rng.randrange(1, 30),         # os
            rng.randrange(1, 500),        # channel
            ts,
            rng.random() < 0.002,         # conversions are rare
        )
        ts += rng.randrange(0, 2 * step)
