"""The DOC001 doc-reference rule in tools/lint.py.

``make verify-docs`` executes fenced code, but prose mentions of
``repro.*`` modules rot silently on a rename — DOC001 imports every
dotted reference found in README.md / docs/*.md and getattr-walks the
tail.  These tests pin that the repo's own docs are clean and that the
rule actually fires on a broken reference.
"""

import importlib.util
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "repro_tools_lint", ROOT / "tools" / "lint.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = _load_lint()


def test_repo_docs_have_no_dangling_references():
    findings = list(lint.check_doc_references(ROOT))
    assert findings == [], findings


def test_docs_actually_contain_references():
    # The rule is only meaningful if the sweep sees something: the
    # prose docs must mention repro modules (they always have).
    references = set()
    for doc in lint.doc_files(ROOT):
        references.update(
            lint._DOC_REFERENCE.findall(doc.read_text(encoding="utf-8")))
    assert len(references) >= 10
    assert "repro.netserve" in references


def test_resolution_walks_module_then_attributes():
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    assert lint._resolve_reference("repro.netserve.NetClient") is None
    assert lint._resolve_reference("repro.sql") is None
    assert lint._resolve_reference("repro.core.consistency") is None


def test_dangling_reference_is_a_finding(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "Uses `repro.no_such_module.Widget` heavily.\n")
    (tmp_path / "docs" / "page.md").write_text(
        "See `repro.netserve.NoSuchAttr` and the fine "
        "`repro.netserve.NetServer`.\n")
    findings = list(lint.check_doc_references(tmp_path))
    codes = {(path, code) for path, _, _, code, _ in findings}
    assert ("README.md", "DOC001") in codes
    assert ("docs/page.md", "DOC001") in codes
    # The resolvable reference on the same line is not flagged.
    assert sum(1 for f in findings if "NetServer" in f[4]) == 0
    assert len(findings) == 2


def test_docs_only_cli_mode(capsys):
    assert lint.main(["--docs"]) == 0


class TestAggregateMergeCoverage:
    """AGG001 — every registered aggregate has a merge route."""

    def test_repo_registry_is_fully_covered(self):
        findings = list(lint.check_aggregate_merge_coverage(ROOT))
        assert findings == [], findings

    def test_wrapper_names_read_from_partial_module(self):
        wrappers = lint._wrapper_partial_names(ROOT)
        assert {"ew_avg", "lag"} <= wrappers

    @staticmethod
    def _write_registry(root, *, wrapper_keys, extra_class=""):
        (root / "src/repro/sql").mkdir(parents=True)
        (root / "src/repro/offline").mkdir(parents=True)
        (root / "src/repro/sql/functions.py").write_text(
            "class AggregateFunction:\n"
            "    name = ''\n"
            "    def merge(self, a, b):\n"
            "        raise RuntimeError\n"
            "class SumAgg(AggregateFunction):\n"
            "    name = 'sum'\n"
            "    def merge(self, a, b):\n"
            "        return a\n"
            "class InheritingAgg(SumAgg):\n"
            "    name = 'inheriting'\n"
            "class WrappedAgg(AggregateFunction):\n"
            "    name = 'wrapped'\n"
            + extra_class +
            "_AGGREGATE_CLASSES = {cls.name: cls for cls in (\n"
            "    SumAgg, InheritingAgg, WrappedAgg, "
            + ("OrphanAgg," if extra_class else "") + ")}\n")
        wrappers = ", ".join(f"'{key}': object" for key in wrapper_keys)
        (root / "src/repro/offline/partial.py").write_text(
            "from typing import Dict\n"
            "_PARTIAL_WRAPPERS: Dict[str, type] = {%s}\n" % wrappers)

    def test_missing_merge_route_is_a_finding(self, tmp_path):
        self._write_registry(
            tmp_path, wrapper_keys=["wrapped"],
            extra_class=("class OrphanAgg(AggregateFunction):\n"
                         "    name = 'orphan'\n"))
        findings = list(lint.check_aggregate_merge_coverage(tmp_path))
        assert len(findings) == 1
        path, _line, _col, code, message = findings[0]
        assert code == "AGG001"
        assert "orphan" in message
        assert path == "src/repro/sql/functions.py"

    def test_merge_and_wrapper_routes_both_satisfy(self, tmp_path):
        # sum has its own merge, inheriting gets it from a base class,
        # wrapped is in _PARTIAL_WRAPPERS: nothing to report — the
        # abstract base's raising merge never counts as a route.
        self._write_registry(tmp_path, wrapper_keys=["wrapped"])
        assert list(lint.check_aggregate_merge_coverage(tmp_path)) == []

    def test_wrapper_removal_detected(self, tmp_path):
        self._write_registry(tmp_path, wrapper_keys=[])
        findings = list(lint.check_aggregate_merge_coverage(tmp_path))
        assert [f[3] for f in findings] == ["AGG001"]
        assert "wrapped" in findings[0][4]
