"""Task scheduling cost model for the simulated cluster.

The offline engine executes window/partition tasks once (really) and
records each task's measured wall time.  Parallel speed-ups are then
derived by scheduling those measured task times onto N workers with the
greedy longest-processing-time (LPT) rule — the standard makespan model
for distributed batch stages.  DESIGN.md documents this substitution for
the paper's 16-server cluster: the *work* is real, its placement is
modelled, so skew and parallelism effects show up exactly where the
paper's do (a straggler task bounds the makespan).
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

__all__ = ["lpt_makespan", "worker_loads"]


def worker_loads(task_seconds: Sequence[float],
                 workers: int) -> List[float]:
    """Greedy LPT assignment; returns per-worker total seconds."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    loads: List[Tuple[float, int]] = [(0.0, worker)
                                      for worker in range(workers)]
    heapq.heapify(loads)
    result = [0.0] * workers
    for seconds in sorted(task_seconds, reverse=True):
        load, worker = heapq.heappop(loads)
        load += seconds
        result[worker] = load
        heapq.heappush(loads, (load, worker))
    return result


def lpt_makespan(task_seconds: Sequence[float], workers: int) -> float:
    """Makespan (max worker load) of the LPT schedule."""
    if not task_seconds:
        return 0.0
    return max(worker_loads(task_seconds, workers))
