"""PostgreSQL wire-protocol (v3) framing.

Message *builders* (server→client and client→server) and *parsers*
shared by the asyncio server (:mod:`repro.netserve.server`) and the
bundled minimal client (:mod:`repro.netserve.client`).  Only the
protocol subset the feature-serving surface needs is implemented:
startup / trust auth, the simple query cycle, and the extended query
cycle (Parse / Bind / Describe / Execute / Close / Flush / Sync), all
values in **text format** plus binary format for the fixed-width
parameter types psycopg prefers once it knows an OID.

Docs: ``docs/network_protocol.md`` has the message-flow diagrams and
the SQLSTATE mapping table rendered from :func:`sqlstate_for`.
"""

from __future__ import annotations

import datetime
import struct
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import (DeadlineExceededError, DeploymentNotFoundError,
                      LexError, MemoryLimitExceededError, OpenMLDBError,
                      OverloadError, ParseError, PlanError, CompileError,
                      ProtocolError, SchemaError, StaleReadError,
                      StorageError, TableNotFoundError, TypeMismatchError)
from ..types import ColumnType

__all__ = [
    "PROTOCOL_VERSION_3", "SSL_REQUEST_CODE", "CANCEL_REQUEST_CODE",
    "GSSENC_REQUEST_CODE", "TYPE_OIDS", "TEXT_OID",
    "sqlstate_for", "encode_text", "decode_parameter",
    "authentication_ok", "parameter_status", "backend_key_data",
    "ready_for_query", "command_complete", "empty_query_response",
    "row_description", "data_row", "parse_complete", "bind_complete",
    "close_complete", "no_data", "parameter_description",
    "error_response", "Buffer", "startup_message", "simple_query",
    "parse_message", "bind_message", "describe_message",
    "execute_message", "close_message", "sync_message", "flush_message",
    "terminate_message",
]

PROTOCOL_VERSION_3 = 196608          # 3 << 16
SSL_REQUEST_CODE = 80877103
CANCEL_REQUEST_CODE = 80877102
GSSENC_REQUEST_CODE = 80877104

#: ColumnType → PostgreSQL type OID for RowDescription /
#: ParameterDescription.  Timestamps here are epoch *milliseconds*
#: (OpenMLDB semantics), so they travel as int8 — never as the PG
#: timestamp type, whose epoch and unit differ.
TYPE_OIDS = {
    ColumnType.BOOL: 16,
    ColumnType.SMALLINT: 21,
    ColumnType.INT: 23,
    ColumnType.BIGINT: 20,
    ColumnType.FLOAT: 700,
    ColumnType.DOUBLE: 701,
    ColumnType.TIMESTAMP: 20,
    ColumnType.DATE: 1082,
    ColumnType.STRING: 25,
}
TEXT_OID = 25

#: Fixed typlen per OID (RowDescription field); -1 = variable.
_TYPLEN = {16: 1, 21: 2, 23: 4, 20: 8, 700: 4, 701: 8, 1082: 4, 25: -1}

_POSTGRES_EPOCH_DATE = datetime.date(2000, 1, 1)


# ----------------------------------------------------------------------
# SQLSTATE mapping

#: Ordered (exception class → SQLSTATE); first match wins, so subclasses
#: precede their bases.  The table in docs/network_protocol.md mirrors
#: this structure.
_SQLSTATES: Tuple[Tuple[type, str], ...] = (
    (DeadlineExceededError, "57014"),   # query_canceled
    (ProtocolError, "08P01"),           # protocol_violation
    (LexError, "42601"),                # syntax_error
    (ParseError, "42601"),
    (PlanError, "42000"),               # syntax_error_or_access_rule
    (CompileError, "42000"),
    (TypeMismatchError, "22P02"),       # invalid_text_representation
    (SchemaError, "22000"),             # data_exception
    (DeploymentNotFoundError, "26000"), # invalid_sql_statement_name
    (TableNotFoundError, "42P01"),      # undefined_table
    (MemoryLimitExceededError, "53200"),# out_of_memory
    (StaleReadError, "58000"),          # system_error (storage family)
    (StorageError, "58000"),
    (OpenMLDBError, "XX000"),           # internal_error fallback
)


def sqlstate_for(error: BaseException) -> str:
    """Map an exception to its SQLSTATE code.

    :class:`~repro.errors.OverloadError` splits on its shed reason:
    the in-flight concurrency limiter reports ``53300``
    (too_many_connections — the bound is a connection-shaped limit),
    every other shed reason reports ``53400``
    (configuration_limit_exceeded).  Both are class 53 "insufficient
    resources", the retryable family clients should back off on.
    """
    if isinstance(error, OverloadError):
        return "53300" if error.reason == "inflight" else "53400"
    for klass, code in _SQLSTATES:
        if isinstance(error, klass):
            return code
    return "XX000"


# ----------------------------------------------------------------------
# value encoding (text format)

def encode_text(value: Any) -> Optional[bytes]:
    """Encode one feature value for a DataRow field (None = SQL NULL)."""
    if value is None:
        return None
    if value is True:
        return b"t"
    if value is False:
        return b"f"
    if isinstance(value, float):
        return repr(value).encode("ascii")
    if isinstance(value, datetime.date):
        return value.isoformat().encode("ascii")
    return str(value).encode("utf-8")


_TRUE_TEXT = {"t", "true", "1", "yes", "on"}
_FALSE_TEXT = {"f", "false", "0", "no", "off"}

_BINARY_UNPACK = {
    ColumnType.SMALLINT: ">h",
    ColumnType.INT: ">i",
    ColumnType.BIGINT: ">q",
    ColumnType.TIMESTAMP: ">q",
    ColumnType.FLOAT: ">f",
    ColumnType.DOUBLE: ">d",
}


def decode_parameter(raw: Optional[bytes], column_type: ColumnType,
                     binary: bool) -> Any:
    """Decode one Bind parameter into the request row's Python value.

    Text format covers every type; binary format is accepted for the
    fixed-width types (network byte order, as psycopg sends once it
    knows the OID).  Failures raise
    :class:`~repro.errors.TypeMismatchError` → SQLSTATE 22P02.
    """
    if raw is None:
        return None
    try:
        if binary:
            return _decode_binary(raw, column_type)
        return _decode_text(raw.decode("utf-8"), column_type)
    except (ValueError, struct.error) as exc:
        raise TypeMismatchError(
            f"cannot decode parameter {raw!r} as "
            f"{column_type.sql_name}: {exc}") from None


def _decode_text(text: str, column_type: ColumnType) -> Any:
    if column_type in (ColumnType.SMALLINT, ColumnType.INT,
                       ColumnType.BIGINT, ColumnType.TIMESTAMP):
        return int(text)
    if column_type in (ColumnType.FLOAT, ColumnType.DOUBLE):
        return float(text)
    if column_type is ColumnType.BOOL:
        lowered = text.strip().lower()
        if lowered in _TRUE_TEXT:
            return True
        if lowered in _FALSE_TEXT:
            return False
        raise ValueError(f"not a boolean: {text!r}")
    if column_type is ColumnType.DATE:
        return datetime.date.fromisoformat(text.strip())
    return text


def _decode_binary(raw: bytes, column_type: ColumnType) -> Any:
    fmt = _BINARY_UNPACK.get(column_type)
    if fmt is not None:
        if len(raw) != struct.calcsize(fmt):
            raise ValueError(f"expected {struct.calcsize(fmt)} bytes, "
                             f"got {len(raw)}")
        return struct.unpack(fmt, raw)[0]
    if column_type is ColumnType.BOOL:
        if len(raw) != 1:
            raise ValueError("boolean must be one byte")
        return raw != b"\x00"
    if column_type is ColumnType.DATE:
        (days,) = struct.unpack(">i", raw)
        return _POSTGRES_EPOCH_DATE + datetime.timedelta(days=days)
    return raw.decode("utf-8")        # STRING: binary == utf-8 text


# ----------------------------------------------------------------------
# low-level buffer reader

class Buffer:
    """Sequential reader over one message payload."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self.remaining < count:
            raise ProtocolError(
                f"truncated message: wanted {count} bytes, "
                f"have {self.remaining}")
        out = self._data[self._pos:self._pos + count]
        self._pos += count
        return out

    def read_int16(self) -> int:
        return struct.unpack(">h", self.read_bytes(2))[0]

    def read_int32(self) -> int:
        return struct.unpack(">i", self.read_bytes(4))[0]

    def read_byte(self) -> int:
        return self.read_bytes(1)[0]

    def read_cstr(self) -> str:
        end = self._data.find(b"\x00", self._pos)
        if end < 0:
            raise ProtocolError("unterminated string in message")
        out = self._data[self._pos:end].decode("utf-8")
        self._pos = end + 1
        return out


# ----------------------------------------------------------------------
# message assembly helpers

def _cstr(text: str) -> bytes:
    return text.encode("utf-8") + b"\x00"


def _frame(type_byte: bytes, payload: bytes) -> bytes:
    """One typed message: type byte + int32 length (incl. itself)."""
    return type_byte + struct.pack(">i", len(payload) + 4) + payload


# ---- backend (server → client) ----

def authentication_ok() -> bytes:
    return _frame(b"R", struct.pack(">i", 0))


def parameter_status(key: str, value: str) -> bytes:
    return _frame(b"S", _cstr(key) + _cstr(value))


def backend_key_data(pid: int, secret: int) -> bytes:
    return _frame(b"K", struct.pack(">ii", pid, secret))


def ready_for_query(status: bytes = b"I") -> bytes:
    return _frame(b"Z", status)


def command_complete(tag: str) -> bytes:
    return _frame(b"C", _cstr(tag))


def empty_query_response() -> bytes:
    return _frame(b"I", b"")


def parse_complete() -> bytes:
    return _frame(b"1", b"")


def bind_complete() -> bytes:
    return _frame(b"2", b"")


def close_complete() -> bytes:
    return _frame(b"3", b"")


def no_data() -> bytes:
    return _frame(b"n", b"")


def parameter_description(oids: Sequence[int]) -> bytes:
    payload = struct.pack(">h", len(oids))
    for oid in oids:
        payload += struct.pack(">i", oid)
    return _frame(b"t", payload)


def row_description(columns: Sequence[Tuple[str, int]]) -> bytes:
    """``columns`` is a sequence of (name, type OID) pairs."""
    parts = [struct.pack(">h", len(columns))]
    for name, oid in columns:
        parts.append(_cstr(name))
        parts.append(struct.pack(">ihihih", 0, 0, oid,
                                 _TYPLEN.get(oid, -1), -1, 0))
    return _frame(b"T", b"".join(parts))


def data_row(values: Sequence[Optional[bytes]]) -> bytes:
    parts = [struct.pack(">h", len(values))]
    for value in values:
        if value is None:
            parts.append(struct.pack(">i", -1))
        else:
            parts.append(struct.pack(">i", len(value)))
            parts.append(value)
    return _frame(b"D", b"".join(parts))


def error_response(sqlstate: str, message: str, *,
                   severity: str = "ERROR",
                   detail: Optional[str] = None) -> bytes:
    fields = [b"S" + _cstr(severity), b"V" + _cstr(severity),
              b"C" + _cstr(sqlstate), b"M" + _cstr(message)]
    if detail:
        fields.append(b"D" + _cstr(detail))
    return _frame(b"E", b"".join(fields) + b"\x00")


# ---- frontend (client → server) ----

def startup_message(user: str, database: str, **params: str) -> bytes:
    body = struct.pack(">i", PROTOCOL_VERSION_3)
    pairs = {"user": user, "database": database, **params}
    for key, value in pairs.items():
        body += _cstr(key) + _cstr(value)
    body += b"\x00"
    return struct.pack(">i", len(body) + 4) + body


def simple_query(sql: str) -> bytes:
    return _frame(b"Q", _cstr(sql))


def parse_message(statement: str, sql: str,
                  param_oids: Sequence[int] = ()) -> bytes:
    payload = _cstr(statement) + _cstr(sql) \
        + struct.pack(">h", len(param_oids))
    for oid in param_oids:
        payload += struct.pack(">i", oid)
    return _frame(b"P", payload)


def bind_message(portal: str, statement: str,
                 params: Sequence[Optional[bytes]],
                 param_formats: Sequence[int] = (),
                 result_formats: Sequence[int] = (0,)) -> bytes:
    payload = _cstr(portal) + _cstr(statement)
    payload += struct.pack(">h", len(param_formats))
    for fmt in param_formats:
        payload += struct.pack(">h", fmt)
    payload += struct.pack(">h", len(params))
    for value in params:
        if value is None:
            payload += struct.pack(">i", -1)
        else:
            payload += struct.pack(">i", len(value)) + value
    payload += struct.pack(">h", len(result_formats))
    for fmt in result_formats:
        payload += struct.pack(">h", fmt)
    return _frame(b"B", payload)


def describe_message(kind: str, name: str) -> bytes:
    return _frame(b"D", kind.encode("ascii") + _cstr(name))


def execute_message(portal: str, max_rows: int = 0) -> bytes:
    return _frame(b"E", _cstr(portal) + struct.pack(">i", max_rows))


def close_message(kind: str, name: str) -> bytes:
    return _frame(b"C", kind.encode("ascii") + _cstr(name))


def sync_message() -> bytes:
    return _frame(b"S", b"")


def flush_message() -> bytes:
    return _frame(b"H", b"")


def terminate_message() -> bytes:
    return _frame(b"X", b"")


# ----------------------------------------------------------------------
# client→server payload parsers (used by the server)

def parse_parse(payload: bytes) -> Tuple[str, str, List[int]]:
    buf = Buffer(payload)
    statement = buf.read_cstr()
    sql = buf.read_cstr()
    oids = [buf.read_int32() for _ in range(buf.read_int16())]
    return statement, sql, oids


def parse_bind(payload: bytes) -> Tuple[str, str, List[int],
                                        List[Optional[bytes]], List[int]]:
    buf = Buffer(payload)
    portal = buf.read_cstr()
    statement = buf.read_cstr()
    param_formats = [buf.read_int16() for _ in range(buf.read_int16())]
    params: List[Optional[bytes]] = []
    for _ in range(buf.read_int16()):
        length = buf.read_int32()
        params.append(None if length < 0 else buf.read_bytes(length))
    result_formats = [buf.read_int16() for _ in range(buf.read_int16())]
    return portal, statement, param_formats, params, result_formats


def parse_describe(payload: bytes) -> Tuple[str, str]:
    buf = Buffer(payload)
    kind = chr(buf.read_byte())
    return kind, buf.read_cstr()


def parse_execute(payload: bytes) -> Tuple[str, int]:
    buf = Buffer(payload)
    return buf.read_cstr(), buf.read_int32()


def parse_close(payload: bytes) -> Tuple[str, str]:
    return parse_describe(payload)


def parse_simple_query(payload: bytes) -> str:
    return Buffer(payload).read_cstr()
