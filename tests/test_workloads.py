"""Tests for the workload generators (Section 9.1)."""

import pytest

from repro.workloads.glq import (GLQConfig, GridGLQEngine, SparkGLQEngine,
                                 generate_points, radius_for_n)
from repro.workloads.microbench import (MicroBenchConfig, build_feature_sql,
                                        generate)
from repro.workloads.rtp import RTPConfig, generate_events
from repro.workloads.talkingdata import TalkingDataConfig, generate_clicks
from repro.errors import ExecutionError


class TestMicroBench:
    def test_deterministic(self):
        config = MicroBenchConfig(keys=5, rows_per_key=10, seed=1)
        first = generate(config)
        second = generate(config)
        assert first.rows == second.rows
        assert first.requests == second.requests

    def test_row_counts(self):
        config = MicroBenchConfig(keys=5, rows_per_key=12, union_tables=2)
        data = generate(config)
        stream_total = sum(
            len(rows) for name, rows in data.rows.items()
            if name.startswith("mb_main") or name.startswith("mb_stream"))
        assert stream_total == 60

    def test_join_tables_one_row_per_key(self):
        config = MicroBenchConfig(keys=7, rows_per_key=4, joins=2)
        data = generate(config)
        assert len(data.rows["mb_dim0"]) == 7
        assert len(data.rows["mb_dim1"]) == 7

    def test_sql_scales_with_config(self):
        small = build_feature_sql(MicroBenchConfig(windows=1, joins=0,
                                                   value_columns=1))
        large = build_feature_sql(MicroBenchConfig(windows=4, joins=2,
                                                   value_columns=3))
        assert small.count("OVER") == 1
        assert large.count("OVER") == 12
        assert large.count("LAST JOIN") == 2

    def test_sql_parses_and_plans(self):
        from repro.sql.parser import parse_select
        from repro.sql.planner import build_plan
        config = MicroBenchConfig(keys=3, rows_per_key=5, windows=3,
                                  joins=2)
        data = generate(config)
        plan = build_plan(parse_select(build_feature_sql(config)),
                          data.schemas)
        assert len(plan.windows) == 3

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            MicroBenchConfig(union_tables=5)
        with pytest.raises(ValueError):
            MicroBenchConfig(windows=0)


class TestTalkingData:
    def test_schema_shape(self):
        rows = list(generate_clicks(TalkingDataConfig(rows=100)))
        assert len(rows) == 100
        ip, app, device, os_v, channel, ts, attributed = rows[0]
        assert isinstance(ip, str)
        assert isinstance(ts, int)
        assert isinstance(attributed, bool)

    def test_time_ordered(self):
        rows = list(generate_clicks(TalkingDataConfig(rows=500)))
        stamps = [row[5] for row in rows]
        assert stamps == sorted(stamps)

    def test_zipf_skew(self):
        from collections import Counter
        rows = list(generate_clicks(TalkingDataConfig(
            rows=20_000, distinct_ips=1000)))
        counts = Counter(row[0] for row in rows)
        top_share = sum(count for _ip, count
                        in counts.most_common(10)) / len(rows)
        assert top_share > 0.15  # hot ips dominate

    def test_deterministic(self):
        config = TalkingDataConfig(rows=50)
        assert list(generate_clicks(config)) \
            == list(generate_clicks(config))


class TestRTP:
    def test_event_shape(self):
        events = list(generate_events(RTPConfig(events=100)))
        assert len(events) == 100
        user, ts, item, score = events[0]
        assert user.startswith("u")
        assert 0.0 <= score <= 1.0

    def test_time_monotone(self):
        events = list(generate_events(RTPConfig(events=500)))
        stamps = [event[1] for event in events]
        assert stamps == sorted(stamps)


class TestGLQ:
    def test_points_deterministic(self):
        config = GLQConfig(points=200)
        assert list(generate_points(config)) \
            == list(generate_points(config))

    def test_radius_doubles_per_n(self):
        assert radius_for_n(8) == 2 * radius_for_n(7)
        assert radius_for_n(10) == 8 * radius_for_n(7)

    def test_grid_and_spark_agree(self):
        points = list(generate_points(GLQConfig(points=3000)))
        grid = GridGLQEngine(cell=0.05)
        spark = SparkGLQEngine()
        for point in points:
            grid.insert(point)
            spark.insert(point)
        centre = points[0]
        for n in (7, 8, 9):
            radius = radius_for_n(n)
            left = grid.query(centre, radius)
            right = spark.query(centre, radius)
            assert left.count == right.count
            assert left.mean_distance == pytest.approx(
                right.mean_distance)
            assert left.nearest == right.nearest

    def test_spark_oom_on_full_table(self):
        points = list(generate_points(GLQConfig(points=2000)))
        spark = SparkGLQEngine(memory_limit_rows=500)
        for point in points:
            spark.insert(point)
        with pytest.raises(ExecutionError, match="OOM"):
            spark.query(points[0], radius=1e9)  # full-table query

    def test_grid_handles_full_table(self):
        points = list(generate_points(GLQConfig(points=2000)))
        grid = GridGLQEngine(cell=1.0)
        for point in points:
            grid.insert(point)
        result = grid.query(points[0], radius=400.0)
        assert result.count == 2000

    def test_empty_result(self):
        grid = GridGLQEngine()
        result = grid.query((0.0, 0.0), 1.0)
        assert result.count == 0
        assert result.nearest is None
