"""Tests for the baseline engines: they must be *correct* (agree with
OpenMLDB) while keeping their modelled inefficiencies observable."""

import pytest

from tests.conftest import values_close
from repro import OpenMLDB
from repro.baselines import (DuckDBEngine, FlinkTopNEngine,
                             GreenplumTopNEngine, MySQLMemoryEngine,
                             SparkBatchEngine, TrinoRedisEngine)
from repro.workloads.microbench import (MicroBenchConfig, build_feature_sql,
                                        generate)


@pytest.fixture(scope="module")
def workload():
    config = MicroBenchConfig(keys=12, rows_per_key=24, windows=2,
                              joins=1, union_tables=2, seed=9)
    data = generate(config, request_count=25)
    sql = build_feature_sql(config)
    db = OpenMLDB()
    for name, schema in data.schemas.items():
        db.create_table(name, schema, indexes=data.indexes[name])
    for name, rows in data.rows.items():
        db.insert_many(name, rows)
    db.deploy("mb", sql)
    return data, sql, db


ONLINE_ENGINES = [MySQLMemoryEngine, DuckDBEngine, TrinoRedisEngine]


class TestOnlineBaselineCorrectness:
    @pytest.mark.parametrize("engine_cls", ONLINE_ENGINES,
                             ids=lambda cls: cls.name)
    def test_requests_match_openmldb(self, workload, engine_cls):
        data, sql, db = workload
        engine = engine_cls(sql, dict(data.schemas))
        for name, rows in data.rows.items():
            engine.load(name, rows)
        for request in data.requests[:10]:
            expected = db.request_row("mb", request)
            got = engine.request(request)
            assert len(got) == len(expected)
            for left, right in zip(expected, got):
                assert values_close(left, right, rel_tol=1e-9), \
                    (engine_cls.name, left, right)


class TestBaselineInefficiencies:
    def test_mysql_sorts_per_request(self, workload):
        data, sql, _db = workload
        engine = MySQLMemoryEngine(sql, dict(data.schemas))
        for name, rows in data.rows.items():
            engine.load(name, rows)
        engine.request(data.requests[0])
        first = engine.stats.sorts
        engine.request(data.requests[1])
        assert engine.stats.sorts > first  # no retained time order

    def test_duckdb_scans_full_column(self, workload):
        data, sql, _db = workload
        engine = DuckDBEngine(sql, dict(data.schemas))
        for name, rows in data.rows.items():
            engine.load(name, rows)
        before = engine.stats.rows_scanned
        engine.request(data.requests[0])
        total_rows = sum(len(rows) for rows in data.rows.values())
        # Every request touches at least one full key-column scan.
        assert engine.stats.rows_scanned - before >= total_rows / 2

    def test_trino_redis_pays_rpc_and_serde(self, workload):
        data, sql, _db = workload
        engine = TrinoRedisEngine(sql, dict(data.schemas))
        for name, rows in data.rows.items():
            engine.load(name, rows)
        engine.request(data.requests[0])
        assert engine.stats.rpc_hops >= 3
        assert engine.stats.bytes_moved > 0
        assert engine.memory_bytes > 0


class TestSparkBatch:
    def test_matches_openmldb_offline(self, workload):
        data, sql, db = workload
        spark = SparkBatchEngine(sql, dict(data.schemas), workers=4)
        for name, rows in data.rows.items():
            spark.load(name, rows)
        spark_rows, stats = spark.run()
        openmldb_rows, _ = db.offline_query(sql)
        assert len(spark_rows) == len(openmldb_rows)
        for left_row, right_row in zip(openmldb_rows, spark_rows):
            for left, right in zip(left_row, right_row):
                assert values_close(left, right, rel_tol=1e-9)

    def test_serial_stages_and_shuffle_accounted(self, workload):
        data, sql, _db = workload
        spark = SparkBatchEngine(sql, dict(data.schemas))
        for name, rows in data.rows.items():
            spark.load(name, rows)
        _rows, stats = spark.run()
        assert stats.shuffled_bytes > 0
        assert len(stats.stage_seconds) >= 3  # join + 2 windows (+project)
        assert stats.serial_seconds > 0


class TestTopNEngines:
    def _events(self):
        import random
        rng = random.Random(1)
        return [(f"u{rng.randrange(5)}", index,
                 f"item{rng.randrange(30)}", rng.random())
                for index in range(500)]

    def test_flink_and_greenplum_agree(self):
        flink = FlinkTopNEngine()
        greenplum = GreenplumTopNEngine()
        for key, ts, item, score in self._events():
            flink.insert(key, ts, item, score)
            greenplum.insert(key, ts, item, score)
        for key in (f"u{i}" for i in range(5)):
            assert flink.top_n(key, 4) == greenplum.top_n(key, 4)

    def test_openmldb_topn_agrees(self):
        from repro.workloads.rtp import OpenMLDBTopN
        ours = OpenMLDBTopN()
        greenplum = GreenplumTopNEngine()
        for key, ts, item, score in self._events():
            ours.insert(key, ts, item, score)
            greenplum.insert(key, ts, item, score)
        for key in (f"u{i}" for i in range(5)):
            expected = greenplum.top_n(key, 3)
            got = ours.top_n(key, 3)
            assert [item for item, _ in got] == [item for item, _
                                                 in expected]

    def test_flink_windowed_eviction(self):
        flink = FlinkTopNEngine(window_ms=100)
        flink.insert("k", 0, "old", 0.9)
        flink.insert("k", 200, "new", 0.5)
        assert flink.top_n("k", 2) == [("new", 0.5)]

    def test_greenplum_full_scans_counted(self):
        greenplum = GreenplumTopNEngine()
        greenplum.insert("k", 0, "a", 1.0)
        greenplum.top_n("k", 1)
        greenplum.top_n("k", 1)
        assert greenplum.full_scans == 2

    def test_topn_deduplicates_items(self):
        flink = FlinkTopNEngine()
        flink.insert("k", 0, "same", 0.5)
        flink.insert("k", 1, "same", 0.9)
        assert flink.top_n("k", 5) == [("same", 0.9)]
