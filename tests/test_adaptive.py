"""Tests for adaptive execution (repro.adaptive) — ISSUE 9.

Four layers of coverage:

1. **Router unit tests** with an injected deterministic clock and a
   fake host: cost-model tier choice, promotion/demotion thresholds,
   governor budget rollback, pressure sweeps, re-bucket hysteresis,
   snapshot/restore warm start.
2. **Engine satellites**: per-window incremental attribution, and the
   empty-preagg fast path staying answer-identical in both the traced
   and untraced bodies.
3. **Differential invariance** (the tentpole's safety contract):
   a Hypothesis-driven schedule randomly promotes/demotes incremental
   keys and re-sizes preagg buckets *mid-stream*, and every answer must
   stay byte-identical to an untouched static twin — integer-valued
   data, exact ``==``, same contract as ``tests/test_fused_fold.py``.
   Includes a durable crash (snapshot + recover) and a cluster
   ``FaultInjector.crash_restart`` with router-state survival.
4. **Smoke tests** (``-k smoke`` → ``make adaptive-smoke``): compact
   end-to-end runs of the promotion and re-bucketing loops.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OpenMLDB
from repro.adaptive import ExecutionRouter, RouterConfig, Tier
from repro.cluster import FaultInjector, NameServer, TabletServer
from repro.cluster.failover import RetryPolicy
from repro.ctlplane import ShardMigrator
from repro.memory.governor import MemoryGovernor
from repro.schema import IndexDef, Schema

KEYS = ("u1", "u2", "u3", "u4")

FEATURE_SQL = (
    "SELECT k, sum(a) OVER w AS s_a, count(a) OVER w AS c_a, "
    "min(a) OVER w AS mn_a, max(a) OVER w AS mx_a "
    "FROM t WINDOW w AS (PARTITION BY k ORDER BY ts "
    "ROWS_RANGE BETWEEN 2000 PRECEDING AND CURRENT ROW)")

FAST = RetryPolicy(attempts=2, base_delay_ms=0.1, multiplier=2.0,
                   max_delay_ms=1.0, rpc_timeout_ms=20.0)


def make_db(adaptive=False, config=None, **kwargs):
    db = OpenMLDB(observability=True, **kwargs)
    db.execute("CREATE TABLE t (k string, ts timestamp, a int, "
               "INDEX(KEY=k, TS=ts))")
    deployment = db.deploy("feat", FEATURE_SQL, adaptive=adaptive,
                           router_config=config)
    return db, deployment


# ----------------------------------------------------------------------
# 1. router unit tests (fake clock, fake host)


class FakeState:
    """Stands in for a selective IncrementalWindowState."""

    selective = True

    def __init__(self, rows_per_key=4, refuse=()):
        self.keys = {}
        self.rows_per_key = rows_per_key
        self.refuse = set(refuse)

    @property
    def key_count(self):
        return len(self.keys)

    def provision_key(self, key):
        if key in self.refuse:
            return None
        if key in self.keys:
            return 0
        self.keys[key] = True
        return self.rows_per_key

    def retire_key(self, key):
        return self.rows_per_key if self.keys.pop(key, None) else 0

    def tracked_keys(self):
        return list(self.keys)


class FakeHost:
    def __init__(self, state=None):
        self.incrementals = {"w": state or FakeState()}
        self.preaggs = {}
        self.rebucketed = []

    def rebucket_preagg(self, window, bucket_ms):
        self.rebucketed.append((window, bucket_ms))
        return True


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_router(config=None, state=None, governor=None):
    clock = FakeClock()
    router = ExecutionRouter(config=config or RouterConfig(),
                             clock=clock)
    host = FakeHost(state)
    router.bind_host(host)
    if governor is not None:
        router.bind_governor(governor)
    return router, host, clock


class TestDecide:
    def test_unmeasured_tiers_tie_break_incremental_first(self):
        router, _host, _clock = make_router()
        assert router.decide("w", "u1", has_incremental=True,
                             has_preagg=True) == Tier.INCREMENTAL
        assert router.decide("w", "u1", has_incremental=False,
                             has_preagg=True) == Tier.PREAGG
        assert router.decide("w", "u1", has_incremental=False,
                             has_preagg=False) == Tier.SCAN

    def test_measured_costs_pick_the_argmin(self):
        router, _host, _clock = make_router()
        router.note_request("w", "u1")
        # scan: 10 blocks × 0.1 ms = 1.0 ms; incremental: 0.02 ms.
        router.observe_scan("w", "u1", ms=1.0, blocks=10)
        router.observe_incremental("w", ms=0.02, hit=True)
        router.observe_preagg("w", ms=0.5)
        assert router.decide("w", "u1", True, True) == Tier.INCREMENTAL
        # Incremental gone (e.g. key demoted): preagg beats the scan.
        assert router.decide("w", "u1", False, True) == Tier.PREAGG

    def test_expensive_incremental_loses_to_cheap_scan(self):
        router, _host, _clock = make_router()
        router.note_request("w", "u1")
        router.observe_scan("w", "u1", ms=0.01, blocks=1)
        router.observe_incremental("w", ms=5.0, hit=True)
        assert router.decide("w", "u1", True, False) == Tier.SCAN

    def test_per_key_block_estimate_overrides_window_average(self):
        router, _host, _clock = make_router()
        router.note_request("w", "big")
        router.note_request("w", "small")
        router.observe_scan("w", "big", ms=10.0, blocks=100)
        router.observe_scan("w", "small", ms=0.01, blocks=1)
        # Blended per-block EWMA ≈ 0.082 ms: the 100-block key scans at
        # ≈ 8.2 ms, the 1-block key at ≈ 0.082 ms.
        router.observe_incremental("w", ms=0.2, hit=True)
        assert router.decide("w", "big", True, False) == Tier.INCREMENTAL
        assert router.decide("w", "small", True, False) == Tier.SCAN

    def test_decisions_counted(self):
        router, _host, _clock = make_router()
        for _ in range(3):
            router.decide("w", "u1", True, False)
        assert router.stats()["decisions"][Tier.INCREMENTAL] == 3


class TestPromotionDemotion:
    def hot_setup(self, config=None, state=None, governor=None):
        router, host, clock = make_router(config=config, state=state,
                                          governor=governor)
        # u1 hot (10 req/s for 60 s), u2 one lone request.
        for tick in range(600):
            clock.now = tick * 0.1
            router.note_request("w", "u1")
        router.note_request("w", "u2")
        router.observe_scan("w", "u1", ms=1.0, blocks=10)
        router.observe_incremental("w", ms=0.05, hit=True)
        return router, host, clock

    def test_hot_key_promoted_cold_left_alone(self):
        router, host, _clock = self.hot_setup()
        router.tick()
        assert "u1" in host.incrementals["w"].keys
        assert "u2" not in host.incrementals["w"].keys
        assert router.promotions == 1

    def test_promotion_needs_rate_and_saving(self):
        config = RouterConfig(promote_min_saved_ms_per_s=10_000.0)
        router, host, _clock = self.hot_setup(config=config)
        router.tick()
        assert host.incrementals["w"].keys == {}

    def test_declined_reservation_rolls_back(self):
        governor = MemoryGovernor("t", max_memory_mb=1)
        governor.charge(1024 * 1024 - 10)  # budget exhausted
        router, host, _clock = self.hot_setup(governor=governor)
        router.tick()
        assert host.incrementals["w"].keys == {}
        assert router.promotions == 0
        assert router.stats()["reserved_bytes"] == 0
        governor.release(governor.used_bytes)

    def test_refused_provision_retries_later(self):
        state = FakeState(refuse={"u1"})
        router, host, _clock = self.hot_setup(state=state)
        router.tick()
        assert host.incrementals["w"].keys == {}
        state.refuse.clear()
        router.tick()
        assert "u1" in host.incrementals["w"].keys

    def test_cold_key_demoted_and_reservation_released(self):
        governor = MemoryGovernor("t", max_memory_mb=8)
        router, host, clock = self.hot_setup(governor=governor)
        router.tick()
        reserved = router.stats()["reserved_bytes"]
        assert reserved > 0
        assert governor.used_bytes == reserved
        clock.now += 3600.0  # decay far past the demotion threshold
        router.tick()
        assert host.incrementals["w"].keys == {}
        assert router.demotions == 1
        assert governor.used_bytes == 0

    def test_pressure_sweeps_coldest_fraction(self):
        governor = MemoryGovernor("t", max_memory_mb=8)
        config = RouterConfig(demote_min_rate=0.0,
                              pressure_demote_fraction=1.0)
        router, host, clock = make_router(config=config,
                                          governor=governor)
        for tick in range(600):
            clock.now = tick * 0.1
            router.note_request("w", "u1")
            router.note_request("w", "u2")
        router.observe_scan("w", "u1", ms=1.0, blocks=10)
        router.tick()
        assert len(host.incrementals["w"].keys) == 2
        # Crossing the pressure fraction schedules a sweep of every
        # tracked key (fraction 1.0) on the next tick.
        governor.charge(int(8 * 1024 * 1024 * 0.95))
        assert router._pressure_pending
        clock.now += 0.1
        router.tick()
        assert host.incrementals["w"].keys == {}
        assert router.demotions == 2


class TestRebucket:
    def make(self, bucket_ms=86_400_000):
        class Slot:
            def __init__(self, width):
                self.bucket_ms = width

        config = RouterConfig(min_span_samples=4, target_bucket_merges=16,
                              min_bucket_ms=1_000)
        router, host, clock = make_router(config=config)
        host.preaggs = {"w": {0: Slot(bucket_ms)}}
        return router, host, clock

    def test_wildly_oversized_bucket_resized_to_span_p50(self):
        router, host, _clock = self.make(bucket_ms=86_400_000)
        for _ in range(8):
            router.observe_span("w", 3_600_000)
        router.tick()
        assert host.rebucketed == [("w", 3_600_000 // 16)]
        assert router.rebuckets == 1

    def test_hysteresis_leaves_close_widths_alone(self):
        router, host, _clock = self.make(bucket_ms=300_000)
        for _ in range(8):
            router.observe_span("w", 3_600_000)
        router.tick()  # desired 225 000 vs current 300 000: within 4×
        assert host.rebucketed == []

    def test_no_rebucket_before_min_samples(self):
        router, host, _clock = self.make(bucket_ms=86_400_000)
        for _ in range(3):
            router.observe_span("w", 3_600_000)
        router.tick()
        assert host.rebucketed == []
        assert router.desired_bucket_ms("w") is None

    def test_floor_applies(self):
        router, host, _clock = self.make(bucket_ms=86_400_000)
        for _ in range(8):
            router.observe_span("w", 2_000)
        router.tick()
        assert host.rebucketed == [("w", 1_000)]


class TestSnapshotRestore:
    def test_round_trip_requeues_hot_keys_and_costs(self):
        router, host, clock = make_router()
        for tick in range(600):
            clock.now = tick * 0.1
            router.note_request("w", "u1")
        router.observe_scan("w", "u1", ms=1.0, blocks=10)
        router.observe_incremental("w", ms=0.05, hit=True)
        router.tick()
        assert "u1" in host.incrementals["w"].keys
        snapshot = router.state_snapshot()
        assert snapshot["hot_keys"]["w"] == ["u1"]

        fresh, fresh_host, _fresh_clock = make_router()
        fresh.restore_state(snapshot)
        # Costs applied immediately: the restored model still knows the
        # incremental tier is cheaper than a 10-block scan.
        assert fresh.decide("w", "u1", True, False) == Tier.INCREMENTAL
        fresh.tick()  # warm keys re-provision on the first tick
        assert "u1" in fresh_host.incrementals["w"].keys

    def test_snapshot_is_plain_data(self):
        import json

        router, _host, clock = make_router()
        clock.now = 1.0
        router.note_request("w", "u1")
        router.observe_scan("w", "u1", ms=1.0, blocks=10)
        json.dumps(router.state_snapshot())  # no custom objects inside


# ----------------------------------------------------------------------
# 2. engine satellites


class TestEngineSatellites:
    def test_per_window_incremental_attribution(self):
        # Selective state makes hit/fallback deterministic: untracked
        # keys always fall back, provisioned keys always hit.
        config = RouterConfig(tick_interval=10 ** 9)  # router inert
        db, deployment = make_db(adaptive=True, config=config)
        for i in range(20):
            db.insert("t", (KEYS[i % 2], 1_000 + i * 10, i))
        db.flush_preagg()
        db.request_row("feat", ("u1", 2_000, 0))  # untracked: fallback
        assert deployment.incrementals["w"].provision_key("u1") \
            is not None
        db.request_row("feat", ("u1", 2_000, 0))  # tracked: hit
        stats = db.online_engine.stats.incremental_window_stats()
        assert stats["w"]["hits"] == 1
        assert stats["w"]["fallbacks"] == 1
        # Engine-wide counters still agree with the breakdown.
        assert db.online_engine.stats.incremental_hits == 1
        assert db.online_engine.stats.incremental_fallbacks == 1

    def test_attribution_without_observability(self):
        db = OpenMLDB()  # untraced body
        db.execute("CREATE TABLE t (k string, ts timestamp, a int, "
                   "INDEX(KEY=k, TS=ts))")
        db.deploy("feat", FEATURE_SQL)
        db.insert("t", ("u1", 1_000, 1))
        db.flush_preagg()
        db.request_row("feat", ("u1", 2_000, 0))
        stats = db.online_engine.stats.incremental_window_stats()
        assert stats == {"w": {"hits": 1, "fallbacks": 0}}

    @pytest.mark.parametrize("observability", [False, True])
    def test_empty_preagg_mapping_matches_none(self, observability):
        """Satellite 1: the empty-preagg fast path (no per-request dict
        copy) must answer identically to passing no preagg at all, in
        both the traced and the untraced body."""
        db = OpenMLDB(observability=observability)
        db.execute("CREATE TABLE t (k string, ts timestamp, a int, "
                   "INDEX(KEY=k, TS=ts))")
        deployment = db.deploy("feat", FEATURE_SQL)
        for i in range(10):
            db.insert("t", ("u1", 1_000 + i * 10, i))
        db.flush_preagg()
        request = ("u1", 2_000, 0)
        baseline = db.online_engine.execute_request(
            deployment.compiled, request, preagg=None)
        empty = db.online_engine.execute_request(
            deployment.compiled, request, preagg={"w": {}})
        assert empty == baseline


# ----------------------------------------------------------------------
# 3. differential invariance (the tentpole's safety contract)


def _twin_dbs(events, config=None):
    adaptive_db, adaptive_dep = make_db(adaptive=True, config=config)
    static_db, _static_dep = make_db(adaptive=False)
    for key, ts, value in events:
        adaptive_db.insert("t", (key, ts, value))
        static_db.insert("t", (key, ts, value))
    adaptive_db.flush_preagg()
    static_db.flush_preagg()
    return adaptive_db, adaptive_dep, static_db


_events = st.lists(
    st.tuples(st.sampled_from(KEYS), st.integers(0, 3000),
              st.integers(-50, 50)),
    min_size=1, max_size=60)
_actions = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from(KEYS),
                  st.integers(0, 4000), st.integers(-50, 50)),
        st.tuples(st.just("request"), st.sampled_from(KEYS + ("cold",)),
                  st.integers(0, 5000)),
        st.tuples(st.just("promote"), st.sampled_from(KEYS)),
        st.tuples(st.just("demote"), st.sampled_from(KEYS)),
    ),
    min_size=4, max_size=40)


class TestAnswerInvariance:
    @settings(max_examples=40, deadline=None)
    @given(events=_events, actions=_actions)
    def test_random_promote_demote_mid_stream_byte_identical(
            self, events, actions):
        """Promotions/demotions at arbitrary schedule points never
        change an answer: the adaptive instance stays ``==`` a static
        twin request-for-request (integer data → exact equality)."""
        adaptive_db, adaptive_dep, static_db = _twin_dbs(events)
        state = adaptive_dep.incrementals["w"]
        for action in actions:
            if action[0] == "insert":
                _, key, ts, value = action
                adaptive_db.insert("t", (key, ts, value))
                static_db.insert("t", (key, ts, value))
                adaptive_db.flush_preagg()
                static_db.flush_preagg()
            elif action[0] == "request":
                _, key, ts = action
                request = (key, ts, 0)
                assert adaptive_db.request_row("feat", request) \
                    == static_db.request_row("feat", request)
            elif action[0] == "promote":
                state.provision_key(action[1])
            else:
                state.retire_key(action[1])

    @settings(max_examples=25, deadline=None)
    @given(events=_events,
           widths=st.lists(st.integers(1, 4000), min_size=1, max_size=4),
           anchors=st.lists(st.integers(0, 5000), min_size=1,
                            max_size=6))
    def test_rebucket_mid_stream_byte_identical(self, events, widths,
                                                anchors):
        """Live bucket re-sizing (the rebucket_preagg swap protocol)
        never changes an answer, whatever width sequence is applied."""
        adaptive_db, adaptive_dep, _static = _twin_dbs(events)
        static_db, _dep = make_db(adaptive=False)
        # The static twin serves the same script WITHOUT preagg, so the
        # comparison crosses tiers as well as widths.
        for key, ts, value in events:
            static_db.insert("t", (key, ts, value))
        static_db.flush_preagg()
        preagg_db = OpenMLDB(observability=True)
        preagg_db.execute("CREATE TABLE t (k string, ts timestamp, "
                          "a int, INDEX(KEY=k, TS=ts))")
        preagg_dep = preagg_db.deploy("feat", FEATURE_SQL,
                                      long_windows="w:1s",
                                      adaptive=True)
        for key, ts, value in events:
            preagg_db.insert("t", (key, ts, value))
        preagg_db.flush_preagg()
        for width in widths:
            preagg_db.flush_preagg()
            preagg_dep.rebucket_preagg("w", width)
            for anchor in anchors:
                for key in KEYS:
                    request = (key, anchor, 0)
                    assert preagg_db.request_row("feat", request) \
                        == static_db.request_row("feat", request)

    def test_invariance_across_durable_crash(self, tmp_path):
        """Adaptive state adapts, crashes, recovers — answers stay
        byte-identical to a never-crashed static twin, and the router
        snapshot warm-starts the recovered instance's hot set."""
        config = RouterConfig(tick_interval=8, promote_min_rate=0.0,
                              promote_min_saved_ms_per_s=-1e9,
                              demote_min_rate=-1.0)
        data_dir = str(tmp_path / "dur")
        db = OpenMLDB(observability=True, data_dir=data_dir)
        db.execute("CREATE TABLE t (k string, ts timestamp, a int, "
                   "INDEX(KEY=k, TS=ts))")
        deployment = db.deploy("feat", FEATURE_SQL, adaptive=True,
                               router_config=config)
        static_db, _dep = make_db(adaptive=False)
        rng = random.Random(5)
        for i in range(120):
            row = (KEYS[rng.randrange(len(KEYS))], 1_000 + i * 7,
                   rng.randrange(-50, 51))
            db.insert("t", row)
            static_db.insert("t", row)
        db.flush_preagg()
        static_db.flush_preagg()
        for i in range(40):  # heat up u1 → promoted by the router
            db.request_row("feat", ("u1", 2_500 + i, 0))
        assert deployment.router.promotions > 0
        router_snapshot = deployment.router_snapshot()
        db.snapshot()
        db.close()

        recovered = OpenMLDB(observability=True, data_dir=data_dir)
        recovered.execute("CREATE TABLE t (k string, ts timestamp, "
                          "a int, INDEX(KEY=k, TS=ts))")
        recovered_dep = recovered.deploy("feat", FEATURE_SQL,
                                         adaptive=True,
                                         router_config=config)
        recovered.recover()
        recovered_dep.restore_router(router_snapshot)
        for i in range(40):
            for key in KEYS + ("cold",):
                request = (key, 3_000 + i, 0)
                assert recovered.request_row("feat", request) \
                    == static_db.request_row("feat", request)
        # The warm keys re-provisioned on the first post-restore tick.
        assert recovered_dep.incrementals["w"].key_count > 0

    def test_router_state_survives_cluster_crash_restart(self, tmp_path):
        """Tablet-hosted router snapshots live outside the wiped stores:
        a full crash_restart keeps them, and a fresh router restored
        from one re-promotes the hot set — while the served answers
        stay identical across the crash."""
        schema = Schema.from_pairs([
            ("uid", "int"), ("ts", "timestamp"), ("v", "double")])
        servers = [TabletServer(f"tablet-{i}") for i in range(3)]
        cluster = NameServer(servers, retry_policy=FAST,
                             data_dir=str(tmp_path / "cluster"))
        cluster.create_table("t", schema, [IndexDef(("uid",), "ts")],
                             partitions=2, replicas=2)
        faults = FaultInjector(cluster)
        for i in range(120):
            cluster.put("t", (i % 7, 1_000 + i, float(i % 13)))
        cluster.replication_barrier()
        cluster.snapshot("t")
        cluster.deploy(
            "feat",
            "SELECT uid, sum(v) OVER w AS s FROM t "
            "WINDOW w AS (PARTITION BY uid ORDER BY ts "
            "ROWS_RANGE BETWEEN 1000 PRECEDING AND CURRENT ROW)")
        before = {uid: cluster.request("feat", (uid, 2_000, 0.0))
                  for uid in range(7)}

        # A router calibrated on this tablet's traffic checkpoints here.
        victim = cluster.leader_of("t", 0).name
        router, _host, clock = make_router()
        for tick in range(600):
            clock.now = tick * 0.1
            router.note_request("w", "u1")
        router.observe_scan("w", "u1", ms=1.0, blocks=10)
        router.tick()
        cluster.tablets[victim].save_router_state(
            "feat", router.state_snapshot())

        report = faults.crash_restart(victim)
        assert report.node == victim

        saved = cluster.tablets[victim].load_router_state("feat")
        assert saved is not None and saved["hot_keys"]["w"] == ["u1"]
        fresh, fresh_host, _clock = make_router()
        fresh.restore_state(saved)
        fresh.tick()
        assert "u1" in fresh_host.incrementals["w"].keys
        for uid in range(7):
            assert cluster.request("feat", (uid, 2_000, 0.0)) \
                == before[uid]

    def test_migration_carries_router_state(self, tmp_path):
        schema = Schema.from_pairs([
            ("uid", "int"), ("ts", "timestamp"), ("v", "double")])
        servers = [TabletServer(f"tablet-{i}") for i in range(3)]
        cluster = NameServer(servers, retry_policy=FAST)
        cluster.create_table("t", schema, [IndexDef(("uid",), "ts")],
                             partitions=1, replicas=2)
        for i in range(50):
            cluster.put("t", (i % 5, 1_000 + i, float(i)))
        cluster.replication_barrier()
        placement = cluster.tables["t"].assignment[0]
        source = placement[0]
        target = next(name for name in cluster.tablets
                      if name not in placement)
        snapshot = {"windows": {}, "hot_keys": {"w": ["u1"]}}
        cluster.tablets[source].save_router_state("feat", snapshot)
        ShardMigrator(cluster).migrate("t", 0, source, target)
        assert cluster.tablets[target].load_router_state("feat") \
            == snapshot


# ----------------------------------------------------------------------
# 4. smoke (make adaptive-smoke)


class TestAdaptiveSmoke:
    def test_smoke_router_promotes_and_matches_static_twin(self):
        """The cheap end-to-end gate: a skewed request stream drives
        real promotions through the full deploy/request path, answers
        stay byte-identical to a static twin throughout, and the
        decision mix shifts onto the incremental tier."""
        config = RouterConfig(tick_interval=16, promote_min_rate=0.1,
                              promote_min_saved_ms_per_s=-1e9,
                              demote_min_rate=-1.0)
        rng = random.Random(7)
        events = [(KEYS[rng.randrange(len(KEYS))], 1_000 + i * 3,
                   rng.randrange(-50, 51)) for i in range(400)]
        adaptive_db, adaptive_dep, static_db = _twin_dbs(events, config)
        for i in range(200):
            key = "u1" if i % 4 else KEYS[rng.randrange(len(KEYS))]
            request = (key, 3_000 + i, 0)
            assert adaptive_db.request_row("feat", request) \
                == static_db.request_row("feat", request)
        stats = adaptive_dep.router.stats()
        assert stats["ticks"] > 0
        assert stats["promotions"] > 0
        assert stats["decisions"][Tier.INCREMENTAL] > 0
        assert adaptive_dep.adaptive_stats()["tracked_keys"]["w"] > 0
        registry = adaptive_db.obs.registry
        assert registry.get("online.router.ticks").value > 0
        assert registry.get("online.router.decisions",
                            tier="incremental").value > 0

    def test_smoke_rebucket_converges_and_stays_exact(self):
        """1-day DDL buckets vs ~1-hour observed spans: the router
        re-buckets to span_p50/target and every answer stays identical
        to an un-preagged twin."""
        config = RouterConfig(tick_interval=16, min_span_samples=8,
                              promote_min_rate=1e9)
        sql = ("SELECT k, sum(a) OVER w AS s FROM t WINDOW w AS ("
               "PARTITION BY k ORDER BY ts "
               "ROWS_RANGE BETWEEN 3600000 PRECEDING AND CURRENT ROW)")
        adaptive_db = OpenMLDB(observability=True)
        plain_db = OpenMLDB()
        for db in (adaptive_db, plain_db):
            db.execute("CREATE TABLE t (k string, ts timestamp, a int, "
                       "INDEX(KEY=k, TS=ts))")
        deployment = adaptive_db.deploy("feat", sql, long_windows="w:1d",
                                        adaptive=True,
                                        router_config=config)
        plain_db.deploy("feat", sql)
        rng = random.Random(3)
        ts0 = 1_650_000_000_000
        for i in range(1500):
            row = (f"u{rng.randrange(8)}", ts0 + i * 60_000,
                   rng.randrange(-50, 51))
            adaptive_db.insert("t", row)
            plain_db.insert("t", row)
        adaptive_db.flush_preagg()
        plain_db.flush_preagg()
        assert deployment.adaptive_stats()["bucket_ms"]["w"] \
            == 86_400_000
        for i in range(200):
            request = (f"u{rng.randrange(8)}", ts0 + 1_500 * 60_000 + i,
                       0)
            assert adaptive_db.request_row("feat", request) \
                == plain_db.request_row("feat", request)
        assert deployment.router.rebuckets >= 1
        assert deployment.adaptive_stats()["bucket_ms"]["w"] \
            == 3_600_000 // config.target_bucket_merges
