"""SLO-driven closed-loop benchmark — highest sustained QPS in budget.

The operator's question: how much bid-request traffic can the serving
path sustain while p99 stays inside a fixed latency budget?  Paced
clients offer a *target* rate (latency measured from scheduled start,
so backlog is charged to the system — the coordinated-omission
correction), and :func:`~repro.bench.slo_search` ramps then binary
searches the highest rate that still meets the SLO.

The backend is the full serving stack from PR 3: a simulated cluster
behind a :class:`~repro.serving.FrontendServer` whose
``default_timeout_ms`` equals the budget, so past saturation requests
shed typed errors (``OverloadError`` / ``DeadlineExceededError``)
instead of queueing — the search reads the error rate as "over
capacity" rather than waiting for the tail to blow out.

Recorded as ``fig_slo`` in ``BENCH_online.json``.
"""

from __future__ import annotations

import pytest

from _util import record_bench
from repro.bench import slo_search
from repro.cluster import NameServer, TabletServer
from repro.serving import FrontendServer
from repro.workloads import adctr

BUDGET_P99_MS = 50.0

CONFIG = adctr.AdCTRConfig(campaigns=120, heavy_hitters=4,
                           hot_fraction=0.7, events=6_000)


@pytest.fixture(scope="module")
def ctr_cluster():
    cluster = NameServer([TabletServer(f"tablet-{i}") for i in range(2)])
    cluster.create_table(adctr.TABLE, adctr.SCHEMA, [adctr.INDEX],
                         partitions=2, replicas=1)
    for row in adctr.generate_impressions(CONFIG):
        cluster.put(adctr.TABLE, row)
    cluster.deploy("ctr", adctr.feature_sql())
    yield cluster
    cluster.close()


@pytest.mark.benchmark(group="fig_slo")
def test_fig_slo_sustained_qps(benchmark, ctr_cluster):
    requests = list(adctr.generate_requests(CONFIG, requests=512))

    with FrontendServer(ctr_cluster, workers=2, max_batch=8,
                        max_wait_ms=0.5, max_queue=64,
                        default_timeout_ms=BUDGET_P99_MS) as frontend:
        report = slo_search(
            lambda context, index: frontend.request(
                "ctr", requests[index % len(requests)]),
            budget_p99_ms=BUDGET_P99_MS, clients=4, duration=0.4,
            start_qps=50.0, growth=2.0, refine_rounds=2,
            max_steps=8)

    print(f"\nSLO search (p99 budget {BUDGET_P99_MS:g} ms):")
    for step in report.steps:
        print(f"  target {step.target_qps:8,.0f} qps -> achieved "
              f"{step.achieved_qps:8,.0f}, p99 {step.p99_ms:8.2f} ms, "
              f"errors {step.error_rate:6.1%}  "
              f"[{'MET' if step.met else step.reason}]")

    best = report.best
    assert best is not None, \
        f"no rung met the SLO: {[s.reason for s in report.steps]}"
    assert report.sustained_qps > 25.0
    # The search must have found the edge, not just run out of steps.
    assert any(not step.met for step in report.steps)
    print(f"  sustained: {report.sustained_qps:,.0f} qps inside "
          f"{BUDGET_P99_MS:g} ms")

    benchmark.extra_info["sustained_qps"] = report.sustained_qps
    benchmark.extra_info["budget_p99_ms"] = BUDGET_P99_MS
    record_bench("fig_slo", sustained_qps=report.sustained_qps,
                 budget_p99_ms=BUDGET_P99_MS,
                 best_target_qps=best.target_qps,
                 best_p99_ms=best.p99_ms, steps=len(report.steps))
    benchmark.pedantic(ctr_cluster.request, args=("ctr", requests[0]),
                       rounds=10, iterations=1)
