"""Table schemas: named, typed, nullable columns plus index definitions.

A :class:`Schema` is an ordered collection of :class:`Column` objects.
Rows are plain tuples positionally aligned with the schema; the schema
provides name→position resolution, value validation, and helpers to merge
schemas (used by window unions and joins).

Index definitions (:class:`IndexDef`) describe the stream-focused access
paths of the paper's Section 7.2: a key column set, a timestamp column to
order by, and a TTL specification governing eviction.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import SchemaError, TypeMismatchError
from .types import ColumnType, coerce_value

__all__ = ["Column", "Schema", "IndexDef", "TTLKind", "TTLSpec", "Row"]

# Rows are plain tuples aligned with their schema; the alias documents intent.
Row = Tuple[Any, ...]


@dataclasses.dataclass(frozen=True)
class Column:
    """A single named, typed column.

    Attributes:
        name: column name, unique within a schema (case-sensitive).
        type: the declared :class:`~repro.types.ColumnType`.
        nullable: whether NULL values are accepted on ingest.
    """

    name: str
    type: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.type.sql_name}{null}"


class TTLKind(enum.Enum):
    """Eviction policies from the paper's memory model (Section 8.1).

    ``LATEST`` keeps the most recent N rows per key; ``ABSOLUTE`` keeps rows
    newer than an absolute time horizon; ``ABS_OR_LAT`` evicts once *either*
    bound is exceeded; ``ABS_AND_LAT`` only once *both* are.
    """

    LATEST = "latest"
    ABSOLUTE = "absolute"
    ABS_OR_LAT = "absorlat"
    ABS_AND_LAT = "absandlat"


@dataclasses.dataclass(frozen=True)
class TTLSpec:
    """TTL bounds attached to an index.

    Attributes:
        kind: which eviction policy applies.
        abs_ttl_ms: absolute horizon in milliseconds (0 = unbounded).
        lat_ttl: number of latest rows per key to retain (0 = unbounded).
    """

    kind: TTLKind = TTLKind.ABSOLUTE
    abs_ttl_ms: int = 0
    lat_ttl: int = 0

    def __post_init__(self) -> None:
        if self.abs_ttl_ms < 0 or self.lat_ttl < 0:
            raise SchemaError("TTL bounds must be non-negative")

    @property
    def unbounded(self) -> bool:
        """True when neither TTL bound is set (nothing ever expires)."""
        return self.abs_ttl_ms == 0 and self.lat_ttl == 0


@dataclasses.dataclass(frozen=True)
class IndexDef:
    """A stream-focused index: key columns + timestamp column + TTL.

    This is the access path the online engine uses for ``PARTITION BY key
    ORDER BY ts`` windows and ``LAST JOIN``: rows sharing the key are kept
    ordered by ``ts_column`` descending so the newest match is O(1).
    """

    key_columns: Tuple[str, ...]
    ts_column: str
    ttl: TTLSpec = TTLSpec()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise SchemaError("index requires at least one key column")
        if not self.ts_column:
            raise SchemaError("index requires a timestamp column")
        if self.name is None:
            generated = "idx_{}_{}".format("_".join(self.key_columns),
                                           self.ts_column)
            object.__setattr__(self, "name", generated)

    def matches(self, keys: Sequence[str], ts: Optional[str] = None) -> bool:
        """True if this index serves a lookup on ``keys`` ordered by ``ts``."""
        if tuple(keys) != self.key_columns:
            return False
        return ts is None or ts == self.ts_column


class Schema:
    """An ordered, immutable collection of columns.

    Provides positional access, name resolution, row validation, and
    structural merging for unions/joins.
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: Tuple[Column, ...] = tuple(columns)
        if not self._columns:
            raise SchemaError("schema must have at least one column")
        self._positions: Dict[str, int] = {}
        for position, column in enumerate(self._columns):
            if column.name in self._positions:
                raise SchemaError(f"duplicate column name: {column.name!r}")
            self._positions[column.name] = position

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[str, str]]) -> "Schema":
        """Build a schema from ``(name, sql_type_name)`` pairs.

        Convenience for tests and examples::

            Schema.from_pairs([("userid", "string"), ("ts", "timestamp")])
        """
        return cls(Column(name, ColumnType.from_sql_name(type_name))
                   for name, type_name in pairs)

    @property
    def columns(self) -> Tuple[Column, ...]:
        """The ordered column definitions."""
        return self._columns

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(str(column) for column in self._columns)
        return f"Schema({cols})"

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def position(self, name: str) -> int:
        """Return the position of column ``name``.

        Raises:
            SchemaError: if no such column exists.
        """
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have {list(self._positions)}"
            ) from None

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``."""
        return self._columns[self.position(name)]

    def validate_row(self, row: Sequence[Any]) -> Row:
        """Validate and coerce a row against this schema.

        Returns the coerced row as a tuple.

        Raises:
            SchemaError: on arity mismatch or NULL in a NOT NULL column.
            TypeMismatchError: if a value has the wrong type.
        """
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self._columns)}")
        coerced: List[Any] = []
        for value, column in zip(row, self._columns):
            if value is None and not column.nullable:
                raise SchemaError(
                    f"NULL in NOT NULL column {column.name!r}")
            try:
                coerced.append(coerce_value(value, column.type))
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"column {column.name!r}: {exc}") from None
        return tuple(coerced)

    def row_dict(self, row: Sequence[Any]) -> Dict[str, Any]:
        """Return ``row`` as a name→value mapping (for display/tests)."""
        return dict(zip(self.column_names, row))

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema containing only ``names`` (in given order)."""
        return Schema(self.column(name) for name in names)

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """Concatenate two schemas, optionally prefixing ``other``'s names.

        Used for join outputs.  Name collisions raise unless a prefix
        disambiguates them.
        """
        renamed = [
            Column(f"{prefix}{column.name}", column.type, column.nullable)
            for column in other.columns
        ]
        return Schema(list(self._columns) + renamed)

    def union_compatible(self, other: "Schema") -> bool:
        """True if ``other`` has the same column types in the same order.

        Window unions (Section 5.2) require positional type compatibility;
        names may differ between the union sources.
        """
        if len(self) != len(other):
            return False
        return all(a.type == b.type
                   for a, b in zip(self._columns, other.columns))
