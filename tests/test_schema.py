"""Tests for schemas, columns, indexes, and TTL specs."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.schema import Column, IndexDef, Schema, TTLKind, TTLSpec
from repro.types import ColumnType


class TestColumn:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)

    def test_str_rendering(self):
        column = Column("price", ColumnType.DOUBLE, nullable=False)
        assert "price" in str(column)
        assert "NOT NULL" in str(column)


class TestSchema:
    def test_from_pairs(self, events_schema):
        assert events_schema.column_names == ("key", "ts", "value", "label")
        assert events_schema.column("ts").type is ColumnType.TIMESTAMP

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_pairs([("a", "int"), ("a", "int")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_position_lookup(self, events_schema):
        assert events_schema.position("value") == 2
        with pytest.raises(SchemaError):
            events_schema.position("missing")

    def test_contains(self, events_schema):
        assert "key" in events_schema
        assert "nope" not in events_schema

    def test_equality_and_hash(self, events_schema):
        clone = Schema.from_pairs([
            ("key", "string"), ("ts", "timestamp"), ("value", "double"),
            ("label", "string"),
        ])
        assert clone == events_schema
        assert hash(clone) == hash(events_schema)

    def test_validate_row_coerces(self, events_schema):
        row = events_schema.validate_row(("k", 100, 5, "x"))
        assert row == ("k", 100, 5.0, "x")
        assert isinstance(row[2], float)

    def test_validate_row_arity(self, events_schema):
        with pytest.raises(SchemaError):
            events_schema.validate_row(("k", 100))

    def test_validate_row_type_error_names_column(self, events_schema):
        with pytest.raises(TypeMismatchError, match="value"):
            events_schema.validate_row(("k", 100, "not-a-number", "x"))

    def test_not_null_enforced(self):
        schema = Schema([Column("a", ColumnType.INT, nullable=False)])
        with pytest.raises(SchemaError):
            schema.validate_row((None,))

    def test_row_dict(self, events_schema):
        mapping = events_schema.row_dict(("k", 1, 2.0, "x"))
        assert mapping == {"key": "k", "ts": 1, "value": 2.0, "label": "x"}

    def test_project(self, events_schema):
        projected = events_schema.project(["value", "key"])
        assert projected.column_names == ("value", "key")

    def test_concat_with_prefix(self, events_schema):
        other = Schema.from_pairs([("key", "string")])
        merged = events_schema.concat(other, prefix="r_")
        assert merged.column_names[-1] == "r_key"

    def test_concat_collision_raises(self, events_schema):
        with pytest.raises(SchemaError):
            events_schema.concat(events_schema)

    def test_union_compatibility_by_type_not_name(self, events_schema):
        other = Schema.from_pairs([
            ("k2", "string"), ("time", "timestamp"), ("v2", "double"),
            ("tag", "string"),
        ])
        assert events_schema.union_compatible(other)
        incompatible = Schema.from_pairs([("a", "int")])
        assert not events_schema.union_compatible(incompatible)


class TestIndexDef:
    def test_requires_keys_and_ts(self):
        with pytest.raises(SchemaError):
            IndexDef(key_columns=(), ts_column="ts")
        with pytest.raises(SchemaError):
            IndexDef(key_columns=("k",), ts_column="")

    def test_generated_name(self):
        index = IndexDef(key_columns=("user", "city"), ts_column="ts")
        assert index.name == "idx_user_city_ts"

    def test_matches(self):
        index = IndexDef(key_columns=("user",), ts_column="ts")
        assert index.matches(("user",))
        assert index.matches(("user",), "ts")
        assert not index.matches(("user",), "other_ts")
        assert not index.matches(("city",))


class TestTTLSpec:
    def test_defaults_unbounded(self):
        assert TTLSpec().unbounded

    def test_negative_rejected(self):
        with pytest.raises(SchemaError):
            TTLSpec(abs_ttl_ms=-1)
        with pytest.raises(SchemaError):
            TTLSpec(lat_ttl=-5)

    def test_kinds_cover_paper_table_types(self):
        assert {kind.value for kind in TTLKind} == {
            "latest", "absolute", "absorlat", "absandlat"}
