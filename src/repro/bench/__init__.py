"""Benchmark harness utilities (percentiles, throughput, printing)."""

from .harness import (ClosedLoopResult, LatencyStats, closed_loop,
                      measure_latencies, measure_throughput,
                      print_series, print_stage_breakdown, print_table,
                      speedup, stage_breakdown)
from .slo import PacedResult, SLOReport, SLOStep, paced_loop, slo_search

__all__ = [
    "LatencyStats", "measure_latencies", "measure_throughput",
    "print_table", "print_series", "speedup",
    "stage_breakdown", "print_stage_breakdown",
    "ClosedLoopResult", "closed_loop",
    "PacedResult", "paced_loop", "SLOStep", "SLOReport", "slo_search",
]
