"""Shared fixtures for the benchmark suite.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (Section 9); DESIGN.md carries the experiment index.
Scales are laptop-sized — the assertions check the *shape* of each result
(who wins, roughly by what factor), not the paper's absolute numbers.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `from tests.conftest import ...`-style helpers unnecessary here;
# benchmarks only need the library itself.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _util import build_openmldb  # noqa: E402
from repro.workloads.microbench import (MicroBenchConfig, build_feature_sql,
                                        generate)


@pytest.fixture(scope="session")
def microbench_online():
    """Mid-scale MicroBench shared by the online figures."""
    config = MicroBenchConfig(keys=120, rows_per_key=100, windows=2,
                              joins=1, union_tables=2, value_columns=3,
                              seed=17)
    data = generate(config, request_count=160)
    sql = build_feature_sql(config)
    db = build_openmldb(data, sql)
    return config, data, sql, db
