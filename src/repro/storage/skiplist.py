"""Refined two-level skiplist for time-series data (paper Section 7.2).

The first level is a skiplist ordered by **key** (e.g. user id); each key
node points to a second-level structure holding all tuples for that key
ordered by **timestamp descending**.  Newest-first ordering makes the two
hot online operations cheap:

* ``LAST JOIN`` — fetching the single most recent tuple for a key is O(1)
  once the key node is found.
* ``PARTITION BY key ORDER BY ts ROWS BETWEEN ... PRECEDING`` — a window
  scan walks the per-key list from its head and stops at the window bound.

Concurrency follows the paper's lock-free discipline: pointer updates go
through :class:`AtomicReference.compare_and_set` retry loops rather than a
structure-wide lock.  (CPython's GIL makes individual pointer writes atomic
anyway; the CAS loops keep the *algorithm* faithful and are exercised by the
concurrency tests.)

Out-of-date data removal (TTL) exploits the timestamp ordering: expired
tuples are contiguous at the tail of each per-key list, so eviction is a
single truncation (batch deletion).
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..schema import TTLKind, TTLSpec

__all__ = ["AtomicReference", "SkipList", "TimeSeriesIndex"]

_MAX_LEVEL = 16
_BRANCHING = 4  # expected nodes per level step, as in LevelDB/OpenMLDB


class AtomicReference:
    """A mutable slot updated via compare-and-set.

    Models the atomic pointer cells of the paper's lock-free skiplist.  The
    internal lock only guards the compare step itself (the moral equivalent
    of a hardware CAS); callers are expected to retry on failure.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = None) -> None:
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> Any:
        return self._value

    def compare_and_set(self, expected: Any, new: Any) -> bool:
        """Atomically set to ``new`` iff the current value is ``expected``."""
        with self._lock:
            if self._value is expected:
                self._value = new
                return True
            return False

    def set(self, value: Any) -> None:
        """Unconditional store (used only on unpublished nodes)."""
        self._value = value


class _SkipNode:
    __slots__ = ("key", "value", "forwards")

    def __init__(self, key: Any, value: Any, height: int) -> None:
        self.key = key
        self.value = value
        self.forwards: List[AtomicReference] = [
            AtomicReference(None) for _ in range(height)
        ]

    @property
    def height(self) -> int:
        return len(self.forwards)


class SkipList:
    """A probabilistic skiplist mapping ordered keys to values.

    Insertions use per-pointer CAS retry loops; reads are wait-free walks.
    ``seed`` pins the level-generation RNG so structures are reproducible
    in tests and benchmarks.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._head = _SkipNode(None, None, _MAX_LEVEL)
        self._rng = random.Random(seed)
        self._height = 1
        self._size = 0
        self._size_lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while (height < _MAX_LEVEL
               and self._rng.randrange(_BRANCHING) == 0):
            height += 1
        return height

    def _find_predecessors(self, key: Any) -> List[_SkipNode]:
        """Return, per level, the last node with a key strictly < ``key``."""
        predecessors = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._height - 1, -1, -1):
            next_node = node.forwards[level].get()
            while next_node is not None and next_node.key < key:
                node = next_node
                next_node = node.forwards[level].get()
            predecessors[level] = node
        return predecessors

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        node = self._find_predecessors(key)[0].forwards[0].get()
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any) -> bool:
        """Insert ``key`` → ``value``.  Returns False if the key exists.

        The new node is linked bottom-up: once the level-0 CAS succeeds the
        node is visible to readers, matching the published-when-linked
        semantics of lock-free skiplists.
        """
        while True:
            predecessors = self._find_predecessors(key)
            candidate = predecessors[0].forwards[0].get()
            if candidate is not None and candidate.key == key:
                return False
            height = self._random_height()
            if height > self._height:
                self._height = height
            node = _SkipNode(key, value, height)
            for level in range(height):
                node.forwards[level].set(
                    predecessors[level].forwards[level].get())
            # Publish at level 0 first; on contention restart the search.
            if not predecessors[0].forwards[0].compare_and_set(
                    node.forwards[0].get(), node):
                continue
            for level in range(1, height):
                while True:
                    expected = node.forwards[level].get()
                    if predecessors[level].forwards[level].compare_and_set(
                            expected, node):
                        break
                    predecessors = self._find_predecessors(key)
                    node.forwards[level].set(
                        predecessors[level].forwards[level].get())
            with self._size_lock:
                self._size += 1
            return True

    def get_or_insert(self, key: Any,
                      factory: Callable[[], Any]) -> Any:
        """Return the value for ``key``, creating it with ``factory``.

        The common path for the first-level structure: most inserts hit an
        existing key node and only append to its second-level list.
        """
        existing = self.get(key, None)
        if existing is not None:
            return existing
        value = factory()
        if self.insert(key, value):
            return value
        return self.get(key)

    def remove(self, key: Any) -> bool:
        """Unlink ``key`` from every level.  Returns False if absent."""
        removed = False
        while True:
            predecessors = self._find_predecessors(key)
            node = predecessors[0].forwards[0].get()
            if node is None or node.key != key:
                return removed
            success = True
            for level in range(node.height - 1, -1, -1):
                predecessor = predecessors[level]
                if predecessor.forwards[level].get() is node:
                    if not predecessor.forwards[level].compare_and_set(
                            node, node.forwards[level].get()):
                        success = False
                        break
            if success:
                with self._size_lock:
                    self._size -= 1
                return True
            removed = False  # retry from a fresh search

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        node = self._head.forwards[0].get()
        while node is not None:
            yield node.key, node.value
            node = node.forwards[0].get()

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def first_at_or_after(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the smallest ``(key, value)`` with key >= ``key``."""
        node = self._find_predecessors(key)[0].forwards[0].get()
        if node is None:
            return None
        return node.key, node.value

    def items_from(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` ascending, starting at the first
        key >= ``key`` — an O(log n) seek instead of a scan."""
        node = self._find_predecessors(key)[0].forwards[0].get()
        while node is not None:
            yield node.key, node.value
            node = node.forwards[0].get()

    def truncate_from(self, key: Any) -> int:
        """Unlink every entry with key >= ``key``; returns removed count.

        A tail truncation: at each level the predecessor's forward
        pointer is cut, so the whole suffix detaches in O(log n) pointer
        swings — the batch-deletion primitive TTL eviction relies on.
        """
        predecessors = self._find_predecessors(key)
        first_removed = predecessors[0].forwards[0].get()
        if first_removed is None:
            return 0
        removed = 0
        node = first_removed
        while node is not None:
            removed += 1
            node = node.forwards[0].get()
        for level in range(self._height - 1, -1, -1):
            target = predecessors[level].forwards[level].get()
            if target is not None and target.key >= key:
                predecessors[level].forwards[level].set(None)
        with self._size_lock:
            self._size -= removed
        return removed


class _TimeList:
    """Per-key second level: a *secondary skiplist* of (ts, row).

    Entries are keyed by ``(-ts, seq)`` so ascending skiplist order is
    newest-first time order; ``seq`` keeps duplicate timestamps distinct
    (newer insertions first, matching stream arrival).  The skiplist form
    — the paper's "linked list (or a secondary skiplist)" — makes seeking
    into the middle of a long history O(log n), which is what keeps
    long-window raw-edge scans off the O(n) path.
    """

    __slots__ = ("_list", "_seq")

    def __init__(self) -> None:
        self._list = SkipList()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._list)

    def insert(self, ts: int, row: Any) -> None:
        self._seq += 1
        # Negated seq: among equal timestamps, later arrivals sort first
        # (a fresh insert lands at the head, like a stream buffer).
        self._list.insert((-ts, -self._seq), row)

    def newest(self) -> Optional[Tuple[int, Any]]:
        """The most recent ``(ts, row)`` — the LAST JOIN fast path."""
        first = self._list.first_at_or_after((-(2 ** 63), -(2 ** 63)))
        if first is None:
            return None
        (neg_ts, _seq), row = first
        return -neg_ts, row

    def iter_desc(self) -> Iterator[Tuple[int, Any]]:
        for (neg_ts, _seq), row in self._list.items():
            yield -neg_ts, row

    def scan(self, start_ts: Optional[int] = None,
             end_ts: Optional[int] = None,
             limit: Optional[int] = None) -> Iterator[Tuple[int, Any]]:
        """Yield ``(ts, row)`` newest-first within ``[end_ts, start_ts]``.

        ``start_ts`` is the *newest* bound (inclusive), ``end_ts`` the
        oldest (inclusive) — mirroring ``ROWS_RANGE BETWEEN x PRECEDING
        AND CURRENT ROW`` semantics.  The start bound is an O(log n)
        seek, not a scan from the head.
        """
        if start_ts is None:
            items = self._list.items()
        else:
            items = self._list.items_from((-start_ts, -(2 ** 63)))
        count = 0
        for (neg_ts, _seq), row in items:
            ts = -neg_ts
            if end_ts is not None and ts < end_ts:
                break  # ordered: everything further is older
            yield ts, row
            count += 1
            if limit is not None and count >= limit:
                break

    def scan_blocks(self, start_ts: Optional[int] = None,
                    end_ts: Optional[int] = None,
                    limit: Optional[int] = None,
                    block_rows: int = 256
                    ) -> Iterator[List[Tuple[int, Any]]]:
        """Like :meth:`scan`, but yields *blocks* (lists) of ``(ts, row)``.

        The per-row iterator protocol dominates scan cost for long
        windows — every tuple pays a generator resume plus an
        ``AtomicReference.get`` call.  Here the level-0 walk runs inside
        one frame, touching ``_value`` directly (reads of a published
        pointer are wait-free; see :class:`AtomicReference`), and hands
        the caller ``block_rows``-sized lists it can fold with tight
        loops.
        """
        lst = self._list
        if start_ts is None:
            node = lst._head.forwards[0]._value
        else:
            node = lst._find_predecessors(
                (-start_ts, -(2 ** 63)))[0].forwards[0]._value
        remaining = limit
        block: List[Tuple[int, Any]] = []
        append = block.append
        while node is not None:
            ts = -node.key[0]
            if end_ts is not None and ts < end_ts:
                break  # ordered: everything further is older
            append((ts, node.value))
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    break
            if len(block) >= block_rows:
                yield block
                block = []
                append = block.append
            node = node.forwards[0]._value
        if block:
            yield block

    def truncate_before(self, horizon_ts: int) -> int:
        """Drop all tuples with ts < ``horizon_ts``; return removed count.

        Expired tuples are contiguous at the tail (oldest end), so this
        is one batched suffix truncation.
        """
        return self._list.truncate_from((-horizon_ts + 1, -(2 ** 63)))

    def truncate_to_count(self, keep: int) -> int:
        """Keep only the ``keep`` newest tuples; return removed count."""
        if keep <= 0:
            return self._list.truncate_from((-(2 ** 63), -(2 ** 63)))
        walked = 0
        for key, _row in self._list.items():
            walked += 1
            if walked == keep + 1:
                return self._list.truncate_from(key)
        return 0

    def truncate_from_key(self, key: Tuple[int, int]) -> int:
        """Truncate everything at or after an internal key (evictor use)."""
        return self._list.truncate_from(key)


class TimeSeriesIndex:
    """The full two-level structure behind one table index.

    ``put`` routes a row to its key's time list; ``scan``/``latest`` serve
    window reads and LAST JOIN; ``evict`` applies the index's TTL spec.
    """

    def __init__(self, ttl: TTLSpec = TTLSpec(),
                 seed: Optional[int] = None) -> None:
        self._keys = SkipList(seed=seed)
        self.ttl = ttl
        self._rows = 0

    def __len__(self) -> int:
        return self._rows

    @property
    def key_count(self) -> int:
        return len(self._keys)

    def put(self, key: Any, ts: int, row: Any) -> None:
        """Insert one tuple under ``key`` ordered by ``ts``."""
        time_list = self._keys.get_or_insert(key, _TimeList)
        time_list.insert(ts, row)
        self._rows += 1

    def latest(self, key: Any) -> Optional[Tuple[int, Any]]:
        """Return the newest ``(ts, row)`` for ``key`` (LAST JOIN path)."""
        time_list = self._keys.get(key)
        if time_list is None:
            return None
        return time_list.newest()

    def scan(self, key: Any, start_ts: Optional[int] = None,
             end_ts: Optional[int] = None,
             limit: Optional[int] = None) -> Iterator[Tuple[int, Any]]:
        """Yield ``(ts, row)`` newest-first for ``key`` within the bounds."""
        time_list = self._keys.get(key)
        if time_list is None:
            return iter(())
        return time_list.scan(start_ts=start_ts, end_ts=end_ts, limit=limit)

    def scan_blocks(self, key: Any, start_ts: Optional[int] = None,
                    end_ts: Optional[int] = None,
                    limit: Optional[int] = None,
                    block_rows: int = 256
                    ) -> Iterator[List[Tuple[int, Any]]]:
        """Yield newest-first blocks of ``(ts, row)`` for ``key``.

        The chunked counterpart of :meth:`scan` — see
        :meth:`_TimeList.scan_blocks` for why blocks beat per-row hops.
        """
        time_list = self._keys.get(key)
        if time_list is None:
            return iter(())
        return time_list.scan_blocks(start_ts=start_ts, end_ts=end_ts,
                                     limit=limit, block_rows=block_rows)

    def scan_all(self) -> Iterator[Tuple[Any, int, Any]]:
        """Yield every ``(key, ts, row)``, keys ascending, ts descending."""
        for key, time_list in self._keys.items():
            for ts, row in time_list.iter_desc():
                yield key, ts, row

    def evict(self, now_ts: int) -> int:
        """Apply this index's TTL policy relative to ``now_ts``.

        Returns the number of tuples removed.  ``ABS_OR_LAT`` applies the
        stricter of the two bounds, ``ABS_AND_LAT`` the looser, matching
        the table types of Section 8.1.
        """
        spec = self.ttl
        if spec.unbounded:
            return 0
        horizon = (now_ts - spec.abs_ttl_ms) if spec.abs_ttl_ms else None
        removed = 0
        for _key, time_list in self._keys.items():
            removed += self._evict_list(time_list, spec, horizon)
        self._rows -= removed
        return removed

    @staticmethod
    def _evict_list(time_list: _TimeList, spec: TTLSpec,
                    horizon: Optional[int]) -> int:
        if spec.kind is TTLKind.ABSOLUTE:
            return time_list.truncate_before(horizon) if horizon else 0
        if spec.kind is TTLKind.LATEST:
            return (time_list.truncate_to_count(spec.lat_ttl)
                    if spec.lat_ttl else 0)
        if spec.kind is TTLKind.ABS_OR_LAT:
            removed = 0
            if horizon is not None:
                removed += time_list.truncate_before(horizon)
            if spec.lat_ttl:
                removed += time_list.truncate_to_count(spec.lat_ttl)
            return removed
        # ABS_AND_LAT: a tuple must violate both bounds to be evicted,
        # i.e. keep anything inside the horizon OR inside the latest-N
        # prefix.  Both protections are prefixes of the newest-first
        # order, so the first unprotected entry starts the evictable
        # suffix.
        if horizon is None or not spec.lat_ttl:
            return 0
        keep = spec.lat_ttl
        index = 0
        for key, _row in time_list._list.items():
            if index >= keep and -key[0] < horizon:
                return time_list.truncate_from_key(key)
            index += 1
        return 0
