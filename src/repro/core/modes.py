"""Execution modes (paper Section 3.2, Figure 3).

All three modes share one SQL dialect and one compiled plan; they differ
only in what data they see and what they return:

* **OFFLINE** — batch computation over full table history; every stored
  row of the primary table yields one feature row.
* **ONLINE_PREVIEW** — the same batch semantics restricted to a small
  limit, answered from a result cache where possible, with query
  complexity constraints so exploratory runs cannot disturb serving.
* **ONLINE_REQUEST** — one request tuple in, one feature row out; the
  tuple is treated as virtually inserted.
"""

from __future__ import annotations

import enum

__all__ = ["ExecutionMode", "PreviewConstraints"]


class ExecutionMode(enum.Enum):
    OFFLINE = "offline"
    ONLINE_PREVIEW = "online_preview"
    ONLINE_REQUEST = "online_request"


class PreviewConstraints:
    """Complexity limits enforced in online-preview mode.

    The paper: preview "constrains query complexity (e.g., limiting the
    number of key columns)" to protect the serving path.
    """

    MAX_WINDOWS = 8
    MAX_JOINS = 4
    MAX_PARTITION_COLUMNS = 4
    MAX_ROWS = 100
