"""Figure 7 — RTP real-time TopN: OpenMLDB vs Flink vs GreenPlum.

Paper shape: OpenMLDB scales nearly linearly in N (~0.98 ms Top1 →
~5 ms Top8), Flink sits in the sub-100 ms band (per-query re-ranking of
keyed state), GreenPlum is worst (full recomputation per query).
"""

from __future__ import annotations

import pytest

from repro.baselines import FlinkTopNEngine, GreenplumTopNEngine
from repro.bench import measure_latencies, print_series
from repro.workloads.rtp import OpenMLDBTopN, RTPConfig, generate_events


@pytest.fixture(scope="module")
def rtp_engines():
    events = list(generate_events(RTPConfig(users=100, items=400,
                                            events=30_000)))
    ours = OpenMLDBTopN()
    flink = FlinkTopNEngine()
    greenplum = GreenplumTopNEngine()
    for key, ts, item, score in events:
        ours.insert(key, ts, item, score)
        flink.insert(key, ts, item, score)
        greenplum.insert(key, ts, item, score)
    users = sorted({event[0] for event in events})[:40]
    return {"openmldb": ours, "flink": flink,
            "greenplum": greenplum}, users


@pytest.mark.benchmark(group="fig7")
def test_fig7_rtp_topn(benchmark, rtp_engines):
    engines, users = rtp_engines
    ns = [1, 2, 4, 8]
    series = {name: [] for name in engines}
    for n in ns:
        for name, engine in engines.items():
            stats = measure_latencies(
                lambda user, engine=engine, n=n: engine.top_n(user, n),
                users, warmup=4)
            series[name].append(stats.mean)
    print_series("Figure 7: RTP TopN latency (ms)", "TopN", ns, series)

    for index in range(len(ns)):
        assert series["openmldb"][index] < series["flink"][index]
        assert series["flink"][index] < series["greenplum"][index]
    # OpenMLDB scales near-linearly: Top8 stays within ~20× of Top1
    # while GreenPlum's absolute cost dwarfs it at every N.
    assert series["greenplum"][-1] / series["openmldb"][-1] > 20

    benchmark.extra_info["top8_speedup_vs_flink"] = (
        series["flink"][-1] / series["openmldb"][-1])
    benchmark.pedantic(engines["openmldb"].top_n, args=(users[0], 8),
                       rounds=100, iterations=5)
