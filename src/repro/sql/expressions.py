"""Compilation of scalar expressions into Python closures.

This is the reproduction's stand-in for the paper's LLVM code generation
(Section 4.2): instead of interpreting the AST per row, every expression is
compiled *once* into a tree of small closures with column references bound
to **positional slots** in a flat row tuple.  The per-row cost is then a
chain of direct calls — the same specialise-once / run-many structure the
paper gets from JIT, within one runtime.

NULL semantics follow SQL: arithmetic and comparisons propagate NULL;
``AND``/``OR`` use three-valued logic; ``WHERE`` treats NULL as false.
"""

from __future__ import annotations

import operator
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CompileError, PlanError
from . import ast

__all__ = ["Scope", "compile_expr"]

RowFn = Callable[[Tuple[Any, ...]], Any]


class Scope:
    """Maps (qualifier, column) names onto slots of a flat row tuple.

    A scope is built by the planner: the primary table's columns first,
    then each LAST JOIN's columns, so one tuple carries the full join row.
    Unqualified names resolve when unambiguous; ambiguity is a plan error,
    matching the strictness of the paper's plan generator.
    """

    def __init__(self) -> None:
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self._by_name: Dict[str, List[int]] = {}
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def add(self, qualifier: Optional[str], name: str) -> int:
        """Register a column under ``qualifier`` and return its slot."""
        slot = self._size
        self._size += 1
        if qualifier is not None:
            key = (qualifier, name)
            if key in self._by_qualified:
                raise PlanError(f"duplicate column {qualifier}.{name}")
            self._by_qualified[key] = slot
        self._by_name.setdefault(name, []).append(slot)
        return slot

    def add_namespace(self, qualifier: Optional[str],
                      names: Sequence[str]) -> List[int]:
        return [self.add(qualifier, name) for name in names]

    def add_alias(self, qualifier: str, alias_for: str) -> None:
        """Make ``qualifier`` resolve to the same slots as ``alias_for``.

        Lets queries reference a table by either its name or its alias
        (``FROM actions a`` → both ``a.price`` and ``actions.price``).
        """
        for (existing, name), slot in list(self._by_qualified.items()):
            if existing == alias_for:
                self._by_qualified[(qualifier, name)] = slot

    def resolve(self, ref: ast.ColumnRef) -> int:
        if ref.table is not None:
            try:
                return self._by_qualified[(ref.table, ref.name)]
            except KeyError:
                raise PlanError(
                    f"unknown column {ref.table}.{ref.name}") from None
        slots = self._by_name.get(ref.name)
        if not slots:
            raise PlanError(f"unknown column {ref.name!r}")
        if len(slots) > 1:
            raise PlanError(
                f"ambiguous column {ref.name!r}; qualify it with a table")
        return slots[0]

    def namespace_slots(self, qualifier: str) -> List[Tuple[str, int]]:
        """All (name, slot) pairs registered under ``qualifier``."""
        return [(name, slot)
                for (qual, name), slot in sorted(self._by_qualified.items(),
                                                 key=lambda item: item[1])
                if qual == qualifier]


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    pieces = ["^"]
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    pieces.append("$")
    return re.compile("".join(pieces), re.DOTALL)


def _compile_binary(op: str, left: RowFn, right: RowFn) -> RowFn:
    if op == "AND":
        def and_fn(row):
            left_value = left(row)
            if left_value is False:
                return False
            right_value = right(row)
            if right_value is False:
                return False
            if left_value is None or right_value is None:
                return None
            return True
        return and_fn
    if op == "OR":
        def or_fn(row):
            left_value = left(row)
            if left_value is True:
                return True
            right_value = right(row)
            if right_value is True:
                return True
            if left_value is None or right_value is None:
                return None
            return False
        return or_fn

    def guarded(fn):
        def wrapper(row):
            left_value = left(row)
            if left_value is None:
                return None
            right_value = right(row)
            if right_value is None:
                return None
            return fn(left_value, right_value)
        return wrapper

    simple = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "||": lambda a, b: f"{a}{b}",
    }
    if op in simple:
        return guarded(simple[op])
    if op == "/":
        def divide(a, b):
            if b == 0:
                return None  # SQL: division by zero yields NULL
            return a / b
        return guarded(divide)
    if op == "%":
        def modulo(a, b):
            if b == 0:
                return None  # same contract as "/": zero divisor → NULL
            return a % b
        return guarded(modulo)
    if op == "LIKE":
        def like(a, b):
            return bool(_like_to_regex(b).match(a))
        return guarded(like)
    raise CompileError(f"unsupported binary operator {op!r}")


def compile_expr(expr: ast.Expr, scope: Scope,
                 aggregate_slots: Optional[Dict[ast.FuncCall, int]] = None
                 ) -> RowFn:
    """Compile ``expr`` into a closure over flat row tuples.

    ``aggregate_slots`` maps windowed :class:`~repro.sql.ast.FuncCall`
    nodes to slots in an *extended* row (base row + computed aggregate
    results); the planner uses this to splice window features into the
    final projection.  Scalar compilation refuses aggregates it has no
    slot for — they must have been extracted first.
    """
    from .functions import get_scalar, is_aggregate  # local: avoid cycle

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        # itemgetter is a C-level callable: driving it with ``map`` over a
        # row block keeps the whole extraction loop out of the interpreter,
        # which the fused fold kernels rely on.
        return operator.itemgetter(scope.resolve(expr))
    if isinstance(expr, ast.BinaryOp):
        left = compile_expr(expr.left, scope, aggregate_slots)
        right = compile_expr(expr.right, scope, aggregate_slots)
        return _compile_binary(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, scope, aggregate_slots)
        if expr.op == "-":
            return lambda row: (None if (value := operand(row)) is None
                                else -value)
        if expr.op == "NOT":
            def not_fn(row):
                value = operand(row)
                return None if value is None else (not value)
            return not_fn
        if expr.op == "IS NULL":
            return lambda row: operand(row) is None
        if expr.op == "IS NOT NULL":
            return lambda row: operand(row) is not None
        raise CompileError(f"unsupported unary operator {expr.op!r}")
    if isinstance(expr, ast.CaseWhen):
        branches = [(compile_expr(cond, scope, aggregate_slots),
                     compile_expr(value, scope, aggregate_slots))
                    for cond, value in expr.branches]
        default = (compile_expr(expr.default, scope, aggregate_slots)
                   if expr.default is not None else (lambda row: None))

        def case_fn(row):
            for condition, value in branches:
                if condition(row) is True:
                    return value(row)
            return default(row)
        return case_fn
    if isinstance(expr, ast.FuncCall):
        if aggregate_slots is not None and expr in aggregate_slots:
            slot = aggregate_slots[expr]
            return lambda row: row[slot]
        if expr.over is not None or is_aggregate(expr.name):
            raise CompileError(
                f"aggregate {expr.name!r} must be bound to a window before "
                "scalar compilation")
        fn = get_scalar(expr.name)
        arg_fns = [compile_expr(arg, scope, aggregate_slots)
                   for arg in expr.args]
        if len(arg_fns) == 1:
            only = arg_fns[0]
            return lambda row: fn(only(row))
        if len(arg_fns) == 2:
            first, second = arg_fns
            return lambda row: fn(first(row), second(row))
        return lambda row: fn(*(arg(row) for arg in arg_fns))
    if isinstance(expr, ast.Star):
        raise CompileError("* is only valid directly in a select list")
    raise CompileError(f"cannot compile expression {expr!r}")
