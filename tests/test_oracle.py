"""Oracle tests: engines vs a brute-force reference implementation.

The reference implementation below is deliberately naive — O(n²) scans,
no indexes, no incremental state — making it easy to audit by eye.
Hypothesis then drives random workloads and window frames through both
the offline engine and the online request path, asserting exact
agreement with the oracle.  This pins the window semantics themselves,
independent of any engine optimisation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro import OpenMLDB
from repro.schema import IndexDef, Schema


def oracle_features(rows: List[Tuple[str, int, float]],
                    rows_preceding: Optional[int],
                    range_ms: Optional[int]) -> List[Tuple[float, int]]:
    """Brute-force (sum, count) per anchor, replay semantics.

    Anchor i's window = anchor + earlier-arriving rows of the same key
    within the frame, where "earlier" is position in the list (arrival
    order), matching the engines' replay ordering for in-ts-order input.
    """
    output = []
    for position, (key, ts, _value) in enumerate(rows):
        window = [(t, v) for k, t, v in rows[:position]
                  if k == key and t <= ts
                  and (range_ms is None or t >= ts - range_ms)]
        window.sort(key=lambda pair: -pair[0])
        if rows_preceding is not None:
            window = window[:rows_preceding - 1]
        values = [v for _t, v in window] + [rows[position][2]]
        output.append((sum(values), len(values)))
    return output


def build_db(rows):
    db = OpenMLDB()
    schema = Schema.from_pairs([
        ("k", "string"), ("ts", "timestamp"), ("v", "double")])
    db.create_table("t", schema, indexes=[IndexDef(("k",), "ts")])
    for row in rows:
        db.insert("t", row)
    return db


def frame_sql(rows_preceding, range_ms):
    if range_ms is not None:
        frame = f"ROWS_RANGE BETWEEN {range_ms} PRECEDING AND CURRENT ROW"
    else:
        frame = (f"ROWS BETWEEN {rows_preceding - 1} PRECEDING "
                 "AND CURRENT ROW")
    return ("SELECT k, sum(v) OVER w AS s, count(v) OVER w AS c FROM t "
            f"WINDOW w AS (PARTITION BY k ORDER BY ts {frame})")


@st.composite
def workload(draw):
    count = draw(st.integers(1, 60))
    keys = draw(st.integers(1, 4))
    rows = []
    ts = 0
    for _ in range(count):
        ts += draw(st.integers(1, 50))
        rows.append((f"k{draw(st.integers(0, keys - 1))}", ts,
                     float(draw(st.integers(-50, 50)))))
    use_range = draw(st.booleans())
    if use_range:
        return rows, None, draw(st.integers(1, 200))
    return rows, draw(st.integers(1, 10)), None


@settings(max_examples=40, deadline=None)
@given(workload())
def test_offline_matches_oracle(case):
    rows, rows_preceding, range_ms = case
    db = build_db(rows)
    got, _stats = db.offline_query(frame_sql(rows_preceding, range_ms))
    expected = oracle_features(rows, rows_preceding, range_ms)
    for (key, got_sum, got_count), (exp_sum, exp_count), row in zip(
            got, expected, rows):
        assert key == row[0]
        assert got_count == exp_count
        assert got_sum == pytest.approx(exp_sum)


@settings(max_examples=25, deadline=None)
@given(workload(), st.integers(0, 3), st.integers(1, 500))
def test_online_request_matches_oracle(case, key_index, ts_gap):
    rows, rows_preceding, range_ms = case
    db = build_db(rows)
    db.deploy("d", frame_sql(rows_preceding, range_ms))
    anchor_ts = rows[-1][1] + ts_gap
    request = (f"k{key_index}", anchor_ts, 7.0)
    got = db.request_row("d", request)
    expected = oracle_features(rows + [request], rows_preceding,
                               range_ms)[-1]
    assert got[1] == pytest.approx(expected[0])
    assert got[2] == expected[1]
