"""repro.ctlplane — the elastic control plane.

The data plane (``repro.cluster``) serves a *fixed* topology: tables
are partitioned at ``CREATE TABLE`` time and replicas live where the
nameserver first placed them.  This package makes the topology a
run-time variable while the cluster keeps serving:

* :mod:`~repro.ctlplane.split` — online partition split/merge over a
  linear-hashing routing directory (:class:`HashRouter`), plus the
  PYTHONHASHSEED-independent :func:`stable_hash` the whole routing
  stack shares;
* :mod:`~repro.ctlplane.migrate` — live shard migration
  (:class:`ShardMigrator`): snapshot bulk-load, binlog tail chase,
  brief write-pause handoff, zero acknowledged-write loss;
* :mod:`~repro.ctlplane.rebalance` — a load-driven
  :class:`Rebalancer` that turns the ``repro.obs`` gauges into
  bounded split/migrate plans;
* :mod:`~repro.ctlplane.registry` — the :class:`TenantRegistry`
  enforcing per-tenant rate and memory budgets at the serving
  frontend, shed as typed class-53 errors.

See docs/architecture.md § "Elastic data plane" for a runnable
walkthrough and docs/observability.md for the ``ctl.*``,
``cluster.migration.*``, and ``tenant.*`` series these emit.
"""

from __future__ import annotations

from .migrate import MigrationReport, ShardMigrator
from .rebalance import MigrateAction, Rebalancer, SplitAction
from .registry import TenantBudget, TenantRegistry
from .split import (HashRouter, MergePlan, PartitionSplitter, SplitPlan,
                    SplitReport, stable_hash)

__all__ = [
    "HashRouter", "MergePlan", "SplitPlan", "SplitReport",
    "PartitionSplitter", "stable_hash",
    "MigrationReport", "ShardMigrator",
    "Rebalancer", "SplitAction", "MigrateAction",
    "TenantBudget", "TenantRegistry",
]
