"""Tests for the LSM bloom filters."""

from hypothesis import given, settings, strategies as st

from repro.schema import IndexDef, Schema
from repro.storage.disk import BloomFilter, DiskTable


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"key-{index}" for index in range(500)]
        bloom = BloomFilter(keys)
        assert all(bloom.may_contain(key) for key in keys)

    def test_mostly_rules_out_absent_keys(self):
        bloom = BloomFilter([f"present-{index}" for index in range(1000)])
        false_positives = sum(
            1 for index in range(1000)
            if bloom.may_contain(f"absent-{index}"))
        assert false_positives < 50  # ≈1% expected at 10 bits/key

    def test_empty_filter(self):
        bloom = BloomFilter([])
        # Tiny filters may alias, but construction must work.
        bloom.may_contain("anything")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1,
                    max_size=100))
    def test_membership_property(self, keys):
        bloom = BloomFilter(keys)
        assert all(bloom.may_contain(key) for key in keys)


class TestBloomInLSM:
    def test_point_reads_skip_irrelevant_runs(self):
        schema = Schema.from_pairs([
            ("k", "string"), ("ts", "timestamp"), ("v", "double")])
        table = DiskTable("t", schema, [IndexDef(("k",), "ts")],
                          flush_threshold=10)
        # Two flushed runs with disjoint key populations.
        for index in range(10):
            table.insert((f"alpha{index}", index, 0.0))
        for index in range(10):
            table.insert((f"beta{index}", index, 0.0))
        assert table.flushes == 2
        table.bloom_skips = 0
        list(table.window_scan(("k",), "ts", "alpha3"))
        # The beta run was (almost certainly) skipped via its filter.
        assert table.bloom_skips >= 1

    def test_results_identical_with_filters(self):
        schema = Schema.from_pairs([
            ("k", "string"), ("ts", "timestamp"), ("v", "double")])
        table = DiskTable("t", schema, [IndexDef(("k",), "ts")],
                          flush_threshold=5)
        for index in range(25):
            table.insert((f"k{index % 4}", index, float(index)))
        scanned = [ts for ts, _ in table.window_scan(("k",), "ts", "k1")]
        assert scanned == sorted(
            (index for index in range(25) if index % 4 == 1),
            reverse=True)
