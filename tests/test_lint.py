"""The DOC001 doc-reference rule in tools/lint.py.

``make verify-docs`` executes fenced code, but prose mentions of
``repro.*`` modules rot silently on a rename — DOC001 imports every
dotted reference found in README.md / docs/*.md and getattr-walks the
tail.  These tests pin that the repo's own docs are clean and that the
rule actually fires on a broken reference.
"""

import importlib.util
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "repro_tools_lint", ROOT / "tools" / "lint.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = _load_lint()


def test_repo_docs_have_no_dangling_references():
    findings = list(lint.check_doc_references(ROOT))
    assert findings == [], findings


def test_docs_actually_contain_references():
    # The rule is only meaningful if the sweep sees something: the
    # prose docs must mention repro modules (they always have).
    references = set()
    for doc in lint.doc_files(ROOT):
        references.update(
            lint._DOC_REFERENCE.findall(doc.read_text(encoding="utf-8")))
    assert len(references) >= 10
    assert "repro.netserve" in references


def test_resolution_walks_module_then_attributes():
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    assert lint._resolve_reference("repro.netserve.NetClient") is None
    assert lint._resolve_reference("repro.sql") is None
    assert lint._resolve_reference("repro.core.consistency") is None


def test_dangling_reference_is_a_finding(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "Uses `repro.no_such_module.Widget` heavily.\n")
    (tmp_path / "docs" / "page.md").write_text(
        "See `repro.netserve.NoSuchAttr` and the fine "
        "`repro.netserve.NetServer`.\n")
    findings = list(lint.check_doc_references(tmp_path))
    codes = {(path, code) for path, _, _, code, _ in findings}
    assert ("README.md", "DOC001") in codes
    assert ("docs/page.md", "DOC001") in codes
    # The resolvable reference on the same line is not flagged.
    assert sum(1 for f in findings if "NetServer" in f[4]) == 0
    assert len(findings) == 2


def test_docs_only_cli_mode(capsys):
    assert lint.main(["--docs"]) == 0
