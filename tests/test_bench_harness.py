"""Tests for the benchmark harness utilities."""

import threading
import time

import pytest

from repro.bench import harness
from repro.bench.harness import (ClosedLoopResult, LatencyStats,
                                 closed_loop, measure_latencies,
                                 measure_throughput, print_series,
                                 print_table, speedup)


class TestLatencyStats:
    def test_percentiles_on_known_data(self):
        # 100 samples: 1ms..100ms.
        seconds = [i / 1000 for i in range(1, 101)]
        stats = LatencyStats.from_seconds(seconds)
        assert stats.samples == 100
        assert stats.tp50 == pytest.approx(50.0)
        assert stats.tp90 == pytest.approx(90.0)
        assert stats.tp99 == pytest.approx(99.0)
        assert stats.tp999 == pytest.approx(100.0)
        assert stats.mean == pytest.approx(50.5)

    def test_single_sample(self):
        stats = LatencyStats.from_seconds([0.002])
        assert stats.tp50 == stats.tp999 == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_seconds([])

    def test_row_shape(self):
        stats = LatencyStats.from_seconds([0.001])
        assert set(stats.row()) == {"TP50", "TP90", "TP95", "TP99",
                                    "TP999"}


class TestMeasurement:
    def test_warmup_excluded(self):
        calls = []
        stats = measure_latencies(calls.append, range(10), warmup=3)
        assert len(calls) == 10        # all executed
        assert stats.samples == 7      # warmup not recorded

    def test_warmup_exceeding_inputs_rejected(self):
        with pytest.raises(ValueError):
            measure_latencies(lambda x: x, range(2), warmup=5)

    def test_throughput_positive(self):
        assert measure_throughput(lambda x: x, range(100)) > 0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")


class TestClosedLoop:
    def test_completed_run_not_timed_out(self):
        result = closed_loop(4, 5, lambda cid, i: None)
        assert not result.timed_out
        assert not result.errors
        assert result.completed == 20

    def test_call_errors_recorded_not_timed_out(self):
        def call(cid, i):
            if i == 0:
                raise ValueError("boom")

        result = closed_loop(2, 3, call)
        assert not result.timed_out
        assert len(result.errors) == 2
        assert result.completed == 4

    def test_straggler_marks_timed_out(self):
        # Regression: a thread outliving join_timeout used to return
        # partial latencies silently — it must be loud.
        release = threading.Event()

        def call(cid, i):
            if cid == 0:
                release.wait(timeout=30)

        result = closed_loop(3, 1, call, join_timeout=0.2)
        try:
            assert result.timed_out
            assert any(isinstance(e, TimeoutError) for e in result.errors)
            assert result.completed < 3  # partial, and marked as such
        finally:
            release.set()
            time.sleep(0.05)

    def test_join_timeout_is_a_shared_deadline(self):
        # All stragglers are bounded by ONE deadline, not timeout each.
        release = threading.Event()

        def call(cid, i):
            release.wait(timeout=30)

        started = time.perf_counter()
        result = closed_loop(4, 1, call, join_timeout=0.3)
        elapsed = time.perf_counter() - started
        release.set()
        assert result.timed_out
        assert elapsed < 0.3 * 4  # far below per-thread accumulation
        time.sleep(0.05)

    def test_failing_setup_surfaces_immediately(self):
        # Regression: a raising setup used to leave the other clients
        # parked on the start barrier until join_timeout — a silent
        # multi-minute stall.  Now the barrier is aborted, the run
        # returns at once, and the exception is in ``errors``.
        started = time.perf_counter()

        def bad_setup(cid):
            if cid == 1:
                raise RuntimeError("connection refused")
            return cid

        result = closed_loop(4, 1_000, lambda ctx, i: None,
                             setup=bad_setup, join_timeout=60.0)
        assert time.perf_counter() - started < 2.0  # not 60s
        assert not result.timed_out
        assert any("connection refused" in str(e) for e in result.errors)
        # No client got past the barrier, so no work was measured.
        assert result.completed == 0

    def test_teardown_only_for_created_contexts(self):
        # Clients whose setup raised must NOT be torn down (their
        # context was never created); clients whose setup succeeded
        # before the abort must be.
        torn = []

        def setup(cid):
            if cid == 0:
                return "ctx0"
            raise RuntimeError("boom")

        closed_loop(2, 10, lambda ctx, i: None,
                    setup=setup, teardown=torn.append)
        assert torn in ([], ["ctx0"])  # never a raw cid / None
        assert "boom" not in torn

    def test_teardown_errors_are_recorded(self):
        def bad_teardown(ctx):
            raise RuntimeError("cleanup failed")

        result = closed_loop(2, 2, lambda ctx, i: None,
                             setup=lambda cid: cid,
                             teardown=bad_teardown)
        assert not result.timed_out
        assert sum("cleanup failed" in str(e)
                   for e in result.errors) == 2
        assert result.completed == 4  # the measured work still counts

    def test_wall_seconds_excludes_straggler_join_idle(self):
        # Regression: wall_seconds was stamped after the join loop, so
        # a straggler blocked on something external inflated the
        # denominator and deflated qps.  It must now cover barrier
        # release → last *finished* client only.
        release = threading.Event()

        def call(cid, i):
            if cid == 0:
                release.wait(timeout=30)  # never finishes in time
            # others return instantly

        result = closed_loop(4, 1, call, join_timeout=0.5)
        release.set()
        assert result.timed_out
        # Three clients finished within milliseconds; the 0.5s the
        # harness then spent waiting on the straggler must not count.
        assert result.wall_seconds < 0.4
        time.sleep(0.05)

    def test_qps_rejects_zero_wall(self):
        result = ClosedLoopResult(wall_seconds=0.0, latencies=[],
                                  errors=[])
        with pytest.raises(ValueError, match="qps undefined"):
            result.qps

    def test_measure_throughput_rejects_zero_elapsed(self, monkeypatch):
        # Regression: a frozen clock used to yield a silent
        # float("inf") rate that poisoned downstream speedup tables.
        monkeypatch.setattr(harness.time, "perf_counter", lambda: 5.0)
        with pytest.raises(ValueError, match="non-positive elapsed"):
            measure_throughput(lambda item: None, [1, 2, 3])

    def test_result_observers_see_every_result(self):
        seen = []
        harness.result_observers.append(seen.append)
        try:
            result = closed_loop(2, 3, lambda ctx, i: None)
        finally:
            harness.result_observers.remove(seen.append)
        assert seen == [result]


class TestPrinting:
    def test_print_table(self, capsys):
        print_table("demo", ["a", "b"], [[1, 2.5], ["x", 1_000_000.0]])
        output = capsys.readouterr().out
        assert "demo" in output
        assert "a" in output and "b" in output
        assert "1.000e+06" in output  # large floats in scientific form

    def test_print_series(self, capsys):
        print_series("s", "x", [1, 2], {"sys": [10, 20]})
        output = capsys.readouterr().out
        assert "sys" in output
        assert output.count("\n") >= 4
