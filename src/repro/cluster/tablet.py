"""Tablet servers: the storage/serving nodes of the simulated cluster.

Production OpenMLDB shards each table into partitions hosted by tablet
servers, with per-partition replica groups; ZooKeeper coordinates
membership and the nameserver assigns leadership.  This in-process
simulation keeps the same structure — shards, replicas, leader/follower
roles, heartbeat liveness, per-tablet memory governance — so cluster
behaviours (failover, replica reads, memory isolation per Section 8.2)
are testable without a network.

Every serving method passes through one RPC guard: a dead tablet raises
:class:`~repro.errors.StorageError`, and an attached
:class:`~repro.cluster.faults.FaultInjector` can turn the call into a
timeout (partitioned tablet) or delay it (slow tablet) against the
caller's per-RPC timeout.  Replication applies binlog entries through
:meth:`TabletServer.replicate`, which enforces offset contiguity — a
follower never silently skips an entry, so ``applied_offset`` is always
the length of the prefix it truly holds (what leader election relies
on).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..errors import DeadlineExceededError, StorageError
from ..memory.governor import MemoryGovernor
from ..obs import NULL_OBS, Observability
from ..schema import IndexDef, Row, Schema
from ..serving.deadline import current_deadline
from ..storage.memtable import MemTable
from ..storage.persist import SnapshotStore

__all__ = ["Shard", "TabletServer"]


@dataclasses.dataclass
class Shard:
    """One partition replica of a table hosted on a tablet.

    ``is_leader`` marks the replica accepting writes; followers apply
    replicated rows and serve reads.  ``applied_offset`` is the highest
    *contiguously* applied binlog offset — the replica holds exactly the
    entries ``0..applied_offset``.
    """

    table: str
    partition_id: int
    store: MemTable
    is_leader: bool = False
    applied_offset: int = -1


class TabletServer:
    """One simulated tablet server.

    Args:
        name: tablet id (e.g. ``"tablet-0"``).
        max_memory_mb: per-tablet write limit (Section 8.2).
        obs: observability handle; RPC counters are labelled
            ``tablet=<name>`` so per-node series merge cleanly.
    """

    def __init__(self, name: str,
                 max_memory_mb: Optional[int] = None,
                 obs: Optional[Observability] = None) -> None:
        self.name = name
        self.governor = MemoryGovernor(name, max_memory_mb=max_memory_mb)
        self._shards: Dict[Tuple[str, int], Shard] = {}
        self._lock = threading.Lock()
        self.alive = True
        self.faults = None  # set via NameServer.attach_faults
        self.snapshots: Optional[SnapshotStore] = None
        #: deployment name → adaptive-router snapshot.  Small calibrated
        #: cost/heat state, kept OUTSIDE the wiped stores so a restarted
        #: or migrated-to tablet warm-starts its routers instead of
        #: re-learning costs from scratch (see repro.adaptive).
        self.router_state: Dict[str, Dict[str, Any]] = {}
        self.bind_obs(obs or NULL_OBS)

    def attach_snapshots(self, store: SnapshotStore) -> None:
        """Give this tablet a durable snapshot directory (the nameserver
        wires one per tablet when built with ``data_dir``)."""
        self.snapshots = store

    def bind_obs(self, obs: Observability) -> None:
        """(Re)attach observability — the nameserver calls this on join."""
        self._obs = obs
        metrics = obs.registry.labels(tablet=self.name)
        self._m_writes = metrics.counter("tablet.rpc.writes")
        self._m_reads = metrics.counter("tablet.rpc.reads")
        self._m_scans = metrics.counter("tablet.rpc.scans")
        self._m_replicated = metrics.counter("tablet.rpc.replicated")

    # ------------------------------------------------------------------
    # the simulated RPC guard

    def _check_serving(self, timeout_ms: Optional[float] = None) -> None:
        """Reject the call if this tablet is down, partitioned, or slow.

        The guard is deadline-aware: an RPC whose ambient request
        deadline (see :mod:`repro.serving.deadline`) already expired is
        rejected before any work — a server should not spend cycles on
        an answer the caller stopped waiting for.

        Raises:
            DeadlineExceededError: the request's deadline budget ran
                out before this RPC was dispatched.
            StorageError: the tablet crashed (is not ``alive``).
            RpcTimeoutError: an injected partition/slow fault exceeds the
                caller's per-RPC timeout.
        """
        deadline = current_deadline()
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                f"{self.name}: request deadline expired before RPC "
                f"dispatch")
        if not self.alive:
            raise StorageError(f"{self.name} is down")
        if self.faults is not None:
            self.faults.on_rpc(self.name, timeout_ms)

    def heartbeat(self) -> bool:
        """One liveness probe: True iff the beat reaches the nameserver.

        A dead tablet sends nothing; a partitioned one sends beats that
        never arrive — both look identical to the monitor, which is the
        point: failover keys off *silence*, not cause of death.
        """
        if not self.alive:
            return False
        if self.faults is not None and not self.faults.heartbeat_ok(
                self.name):
            return False
        return True

    # ------------------------------------------------------------------
    # shard hosting

    def host_shard(self, table: str, partition_id: int, schema: Schema,
                   indexes: Sequence[IndexDef],
                   is_leader: bool) -> Shard:
        key = (table, partition_id)
        with self._lock:
            if key in self._shards:
                raise StorageError(
                    f"{self.name} already hosts {table}[{partition_id}]")
            shard = Shard(
                table=table, partition_id=partition_id,
                store=MemTable(f"{table}#{partition_id}@{self.name}",
                               schema, indexes, obs=self._obs),
                is_leader=is_leader)
            self._shards[key] = shard
            return shard

    def drop_shard(self, table: str, partition_id: int) -> Shard:
        """Stop hosting a shard, returning the memory it held.

        Raises:
            StorageError: if the shard is not hosted here (e.g. a
                concurrent drop won the race).
        """
        key = (table, partition_id)
        with self._lock:
            try:
                shard = self._shards.pop(key)
            except KeyError:
                raise StorageError(
                    f"{self.name} does not host {table}[{partition_id}]"
                ) from None
        self.governor.release(shard.store.memory_bytes)
        return shard

    def install_shard_image(self, table: str, partition_id: int,
                            payloads: Sequence[bytes],
                            applied_offset: int) -> int:
        """Bulk-load a snapshot image into a freshly hosted shard.

        The migration transfer's bulk phase: decode each snapshot
        payload through the shard codec, charge the memory governor,
        and resume the shard at the image's pinned ``applied_offset``
        so the binlog tail chase starts exactly where the image ends.
        Returns rows installed.

        Raises:
            StorageError: the tablet is down, the shard is not hosted,
                or the shard already applied entries (an image may only
                land on a fresh shard — anything else would double-apply
                rows the chase will replay).
        """
        if not self.alive:
            raise StorageError(f"{self.name} is down")
        shard = self.shard(table, partition_id)
        if shard.applied_offset != -1:
            raise StorageError(
                f"{self.name}: {table}[{partition_id}] already applied "
                f"offset {shard.applied_offset}; images install on "
                f"fresh shards only")
        codec = shard.store.codec
        for payload in payloads:
            row = codec.decode(payload)
            self.governor.charge(codec.encoded_size(row))
            shard.store.insert(row)
        shard.applied_offset = applied_offset
        return len(payloads)

    def shard(self, table: str, partition_id: int) -> Shard:
        try:
            return self._shards[(table, partition_id)]
        except KeyError:
            raise StorageError(
                f"{self.name} does not host {table}[{partition_id}]"
            ) from None

    def has_shard(self, table: str, partition_id: int) -> bool:
        return (table, partition_id) in self._shards

    def shards(self) -> Iterator[Shard]:
        return iter(list(self._shards.values()))

    # ------------------------------------------------------------------
    # write path

    def write(self, table: str, partition_id: int, row: Row,
              offset: int, timeout_ms: Optional[float] = None) -> None:
        """Apply one row to a hosted shard (the leader write path).

        Raises:
            StorageError: if the tablet is down.
            RpcTimeoutError: if a fault makes the RPC exceed its timeout.
            MemoryLimitExceededError: past the tablet's memory limit
                (reads keep working — the isolation contract).
        """
        self._check_serving(timeout_ms)
        shard = self.shard(table, partition_id)
        self.governor.charge(shard.store.codec.encoded_size(
            shard.store.schema.validate_row(row)))
        shard.store.insert(row)
        shard.applied_offset = offset
        self._m_writes.inc()

    def replicate(self, table: str, partition_id: int, row: Row,
                  offset: int, timeout_ms: Optional[float] = None) -> int:
        """Apply one replicated binlog entry; returns ``applied_offset``.

        Delivery is idempotent (a duplicate offset is a no-op) and
        contiguous: an entry past ``applied_offset + 1`` is rejected, so
        a dropped entry shows up as lag rather than a silent gap — the
        catch-up path then replays the missing suffix in order.

        Raises:
            StorageError: tablet down, shard not hosted, or a replication
                gap (``offset > applied_offset + 1``).
            RpcTimeoutError: injected partition/slow fault.
            MemoryLimitExceededError: past the tablet's memory limit.
        """
        self._check_serving(timeout_ms)
        shard = self.shard(table, partition_id)
        if offset <= shard.applied_offset:
            return shard.applied_offset
        if offset != shard.applied_offset + 1:
            raise StorageError(
                f"{self.name}: replication gap on {table}[{partition_id}] "
                f"(offset {offset}, applied {shard.applied_offset})")
        self.governor.charge(shard.store.codec.encoded_size(
            shard.store.schema.validate_row(row)))
        shard.store.insert(row)
        shard.applied_offset = offset
        self._m_replicated.inc()
        return shard.applied_offset

    def read_latest(self, table: str, partition_id: int,
                    keys: Sequence[str], key_value: Any,
                    timeout_ms: Optional[float] = None
                    ) -> Optional[Tuple[int, Row]]:
        self._check_serving(timeout_ms)
        self._m_reads.inc()
        return self.shard(table, partition_id).store.last_join_lookup(
            keys, key_value)

    # ------------------------------------------------------------------
    # serving-path reads (trace-context aware — the simulated RPC surface)

    def window_scan(self, table: str, partition_id: int,
                    keys: Sequence[str], ts_column: str, key_value: Any,
                    start_ts: Optional[int] = None,
                    end_ts: Optional[int] = None,
                    limit: Optional[int] = None,
                    trace_ctx: Optional[Dict[str, int]] = None,
                    timeout_ms: Optional[float] = None
                    ) -> list:
        """Scan one partition's window rows, resuming the caller's trace.

        ``trace_ctx`` is what the nameserver's :meth:`Tracer.inject`
        produced — the same trace-context propagation a real RPC carries,
        which stitches the tablet-side spans into the request trace.
        """
        self._check_serving(timeout_ms)
        self._m_scans.inc()
        store = self.shard(table, partition_id).store
        tracer = self._obs.tracer
        with tracer.start_from(trace_ctx, "index.seek", tablet=self.name,
                               table=table, partition=partition_id) as seek:
            index = store.find_index(keys, ts_column)
            seek.set_tag(index=index.name)
        with tracer.start_from(trace_ctx, "window.scan", tablet=self.name,
                               table=table, partition=partition_id) as span:
            rows = list(store.window_scan(
                keys, ts_column, key_value, start_ts=start_ts,
                end_ts=end_ts, limit=limit))
            span.set_tag(rows=len(rows))
        return rows

    def last_join_lookup(self, table: str, partition_id: int,
                         keys: Sequence[str], key_value: Any,
                         before_ts: Optional[int] = None,
                         trace_ctx: Optional[Dict[str, int]] = None,
                         timeout_ms: Optional[float] = None
                         ) -> Optional[Tuple[int, Row]]:
        """LAST JOIN point lookup on one partition, trace-context aware."""
        self._check_serving(timeout_ms)
        self._m_reads.inc()
        store = self.shard(table, partition_id).store
        with self._obs.tracer.start_from(
                trace_ctx, "index.seek", tablet=self.name, table=table,
                partition=partition_id) as span:
            hit = store.last_join_lookup(keys, key_value,
                                         before_ts=before_ts)
            span.set_tag(hit=hit is not None)
        return hit

    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Simulate a crash: the tablet stops serving."""
        self.alive = False

    def recover(self) -> None:
        """Restart after a crash.  Rejoining a cluster should go through
        :meth:`NameServer.reintegrate` so hosted shards catch up."""
        self.alive = True

    # ------------------------------------------------------------------
    # durability: snapshots and crash-restart

    def _snapshot_name(self, table: str, partition_id: int) -> str:
        return f"{table}-p{partition_id}"

    def snapshot_shard(self, table: str, partition_id: int) -> int:
        """Write one shard's snapshot image; returns rows written.

        The image pins the shard's rows to its ``applied_offset``, so
        restart replays only the binlog frames past it.
        """
        if self.snapshots is None:
            raise StorageError(f"{self.name} has no snapshot store")
        shard = self.shard(table, partition_id)
        codec = shard.store.codec
        payloads = [codec.encode(row) for row in shard.store.rows()]
        self.snapshots.write(self._snapshot_name(table, partition_id),
                             payloads, shard.applied_offset)
        return len(payloads)

    def snapshot_shards(self) -> int:
        """Snapshot every hosted shard; returns total rows written."""
        return sum(self.snapshot_shard(shard.table, shard.partition_id)
                   for shard in self.shards())

    def wipe(self) -> None:
        """Lose all in-memory state — the process-death half of a crash.

        Every shard keeps its hosting slot but drops to an empty store
        at ``applied_offset = -1``; :meth:`restart` rebuilds from the
        snapshot store and the nameserver replays the binlog tail.
        """
        with self._lock:
            for shard in self._shards.values():
                self.governor.release(shard.store.memory_bytes)
                old = shard.store
                shard.store = MemTable(old.name, old.schema, old.indexes,
                                       replicas=old.replicas,
                                       obs=self._obs)
                shard.applied_offset = -1

    def restart(self) -> int:
        """Cold-start a crashed tablet from its snapshot images.

        Every hosted shard loads its newest intact snapshot (if any) and
        resumes at that image's ``applied_offset``; the caller — see
        :meth:`NameServer.restart_tablet` — then replays the per-
        partition binlog tail so the shard catches up to the
        acknowledged prefix.  Returns the number of snapshot rows
        loaded.

        Raises:
            StorageError: the tablet is still alive (a restart models a
                dead process coming back, not a live one resetting).
        """
        if self.alive:
            raise StorageError(
                f"{self.name} is alive; restart() models a crashed "
                f"process coming back")
        self.wipe()
        loaded = 0
        if self.snapshots is not None:
            with self._lock:
                for shard in self._shards.values():
                    snapshot = self.snapshots.load_latest(
                        self._snapshot_name(shard.table,
                                            shard.partition_id))
                    if snapshot is None:
                        continue
                    codec = shard.store.codec
                    for payload in snapshot.rows:
                        row = codec.decode(payload)
                        self.governor.charge(codec.encoded_size(row))
                        shard.store.insert(row)
                    shard.applied_offset = snapshot.applied_offset
                    loaded += len(snapshot.rows)
        self.alive = True
        return loaded

    def promote(self, table: str, partition_id: int) -> None:
        self.shard(table, partition_id).is_leader = True

    def demote(self, table: str, partition_id: int) -> None:
        self.shard(table, partition_id).is_leader = False

    # ------------------------------------------------------------------
    # adaptive-router state (survives wipe/restart; copied on migration)

    def save_router_state(self, deployment: str,
                          snapshot: Dict[str, Any]) -> None:
        """Persist one deployment's router calibration on this tablet.

        Routers checkpoint here the same way shards snapshot to the
        snapshot store; :meth:`wipe`/:meth:`restart` deliberately leave
        this map alone, so the state plays the role of the durable
        sidecar metadata production OpenMLDB keeps in ZooKeeper.
        """
        with self._lock:
            self.router_state[deployment] = snapshot

    def load_router_state(self, deployment: str
                          ) -> Optional[Dict[str, Any]]:
        """Fetch a previously saved router snapshot (None if absent)."""
        with self._lock:
            return self.router_state.get(deployment)
