"""IoT telemetry workload — sparse long windows, pre-agg on vs off.

Fleet-health features ask day-long questions about devices that report
a few times an hour; without pre-aggregation every request re-scans a
day of telemetry per device, with it the day window is answered from
hour-wide bucket merges (``long_windows="w1d:1h"``).  Same data, same
script, two deployments — the figure is the latency gap, the guard is
that both deployments return identical vectors.
"""

from __future__ import annotations

import pytest

from _util import record_bench
from repro.bench import measure_latencies, print_table
from repro import OpenMLDB
from repro.workloads import iot

# Much denser than the default fleet: a small device pool with deep
# history, so the 1-day window holds thousands of rows per device and
# the per-request scan cost dominates the bucket-merge overhead (at the
# default sparsity a 150-row window scans faster than it merges).
CONFIG = iot.IoTConfig(devices=8, readings=40_000)


@pytest.mark.benchmark(group="fig_iot")
def test_fig_iot_telemetry(benchmark):
    db = OpenMLDB()
    db.create_table(iot.TABLE, iot.SCHEMA, indexes=[iot.INDEX])
    db.deploy("scan", iot.feature_sql())
    deployment = db.deploy("preagg", iot.feature_sql(),
                           long_windows=iot.LONG_WINDOWS)
    try:
        for row in iot.generate_readings(CONFIG):
            db.insert(iot.TABLE, row)
        db.flush_preagg()

        requests = list(iot.generate_requests(CONFIG, requests=40))
        raw = measure_latencies(
            lambda row: db.request_row("scan", row), requests, warmup=4)
        fast = measure_latencies(
            lambda row: db.request_row("preagg", row), requests,
            warmup=4)

        # Both deployments must agree exactly (integer telemetry).
        for row in requests[:10]:
            assert db.request_row("scan", row) \
                == db.request_row("preagg", row)

        reduction = raw.mean / fast.mean
        print_table("IoT telemetry: 1-day window, dense-history fleet",
                    ["deployment", "mean ms", "TP99 ms"],
                    [["scan (no long_windows)", raw.mean, raw.tp99],
                     ["preagg (w1d:1h)", fast.mean, fast.tp99],
                     ["reduction", f"{reduction:.1f}x", ""]])

        # The sparse long window is the pre-agg sweet spot.
        assert reduction > 1.5
        assert deployment.backfill_seconds < 60

        benchmark.extra_info["reduction"] = reduction
        record_bench("fig_iot_telemetry", scan_mean_ms=raw.mean,
                     preagg_mean_ms=fast.mean, reduction=reduction)
        benchmark.pedantic(db.request_row,
                           args=("preagg", requests[0]),
                           rounds=20, iterations=2)
    finally:
        db.close()
