"""Logical planning: from a parsed SELECT to a structured query plan.

The planner resolves tables against a catalog, validates window/union/join
references, extracts windowed aggregate calls from the select list, and
normalises frames.  Its output, :class:`QueryPlan`, is shared by both
execution engines — the concrete mechanism behind the paper's *unified
query plan generator* (Section 4): one plan, two runtimes, identical
feature semantics.

The plan also carries an explicit operator tree (:class:`PlanNode`) that
the offline engine walks and the multi-window parallel optimisation of
Section 6.1 rewrites (inserting ``SimpleProject`` / ``ConcatJoin`` nodes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import PlanError
from ..schema import Schema
from . import ast
from .functions import is_aggregate

__all__ = [
    "AggregateBinding", "WindowPlan", "JoinPlan", "QueryPlan",
    "PlanNode", "DataProviderNode", "LastJoinNode", "WindowAggNode",
    "SimpleProjectNode", "ConcatJoinNode", "ProjectNode", "build_plan",
]


# ----------------------------------------------------------------------
# plan operator tree (used by EXPLAIN and the offline engine)


@dataclasses.dataclass
class PlanNode:
    """Base operator node; children execute before their parent."""

    children: Tuple["PlanNode", ...] = ()

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


@dataclasses.dataclass
class DataProviderNode(PlanNode):
    """Scan of one table (the paper's DATA_PROVIDER)."""

    table: str = ""

    def label(self) -> str:
        return f"DataProvider({self.table})"


@dataclasses.dataclass
class LastJoinNode(PlanNode):
    join: Optional["JoinPlan"] = None

    def label(self) -> str:
        assert self.join is not None
        return f"LastJoin({self.join.right_table})"


@dataclasses.dataclass
class WindowAggNode(PlanNode):
    window: str = ""

    def label(self) -> str:
        return f"WindowAgg({self.window})"


@dataclasses.dataclass
class SimpleProjectNode(PlanNode):
    """Pass-through projection; marks the start of a parallel segment and
    the point where the hidden index column is added (Section 6.1)."""

    add_index_column: bool = False

    def label(self) -> str:
        suffix = "+index" if self.add_index_column else ""
        return f"SimpleProject({suffix})"


@dataclasses.dataclass
class ConcatJoinNode(PlanNode):
    """Concatenates window outputs on the hidden index column, marking the
    end of a parallel segment (Section 6.1)."""

    windows: Tuple[str, ...] = ()

    def label(self) -> str:
        return f"ConcatJoin({', '.join(self.windows)})"


@dataclasses.dataclass
class ProjectNode(PlanNode):
    def label(self) -> str:
        return "Project"


# ----------------------------------------------------------------------
# flat plan descriptors


@dataclasses.dataclass(frozen=True)
class AggregateBinding:
    """One windowed aggregate call extracted from the select list.

    ``value_args`` are the per-row argument expressions (evaluated against
    window source rows); ``constants`` the trailing literal arguments
    (e.g. the N of ``topn_frequency``); ``slot`` indexes the aggregate
    result vector appended to the row before final projection.
    """

    call: ast.FuncCall
    window: str
    func_name: str
    value_args: Tuple[ast.Expr, ...]
    constants: Tuple[object, ...]
    slot: int


@dataclasses.dataclass(frozen=True)
class WindowPlan:
    """A normalised window definition plus the aggregates bound to it."""

    spec: ast.WindowSpec
    partition_columns: Tuple[str, ...]
    order_column: str
    union_tables: Tuple[str, ...]
    rows_preceding: Optional[int]   # ROWS frame: row count (incl. current)
    range_preceding_ms: Optional[int]  # ROWS_RANGE frame: ms lookback
    exclude_current_row: bool
    instance_not_in_window: bool
    maxsize: Optional[int]
    aggregates: Tuple[AggregateBinding, ...]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_range_frame(self) -> bool:
        return self.range_preceding_ms is not None


@dataclasses.dataclass(frozen=True)
class JoinPlan:
    """A LAST JOIN with its equi-key split out for index lookups.

    ``eq_keys`` pairs a left-side expression with a right-side column; the
    optimizer requires the right table to have a matching index (the
    "index optimizations to critical information ... in LAST JOIN" of
    Section 4.2).  ``residual`` holds whatever condition remains.
    """

    clause: ast.LastJoinClause
    right_table: str
    right_alias: str
    order_by: Optional[str]
    eq_keys: Tuple[Tuple[ast.Expr, str], ...]
    residual: Optional[ast.Expr]


@dataclasses.dataclass
class QueryPlan:
    """The unified logical plan consumed by both engines."""

    statement: ast.SelectStatement
    table: str
    table_alias: str
    table_schema: Schema
    joins: Tuple[JoinPlan, ...]
    windows: Dict[str, WindowPlan]
    output_names: Tuple[str, ...]
    tree: PlanNode

    def explain(self) -> str:
        """Human-readable operator tree (stable across engines)."""
        return self.tree.explain()


# ----------------------------------------------------------------------
# plan construction


def _collect_windowed_calls(expr: ast.Expr,
                            found: List[ast.FuncCall]) -> None:
    """Depth-first collection of aggregate FuncCalls inside ``expr``."""
    if isinstance(expr, ast.FuncCall):
        if expr.over is not None or is_aggregate(expr.name):
            found.append(expr)
            return  # aggregates never nest in this dialect
        for arg in expr.args:
            _collect_windowed_calls(arg, found)
    elif isinstance(expr, ast.BinaryOp):
        _collect_windowed_calls(expr.left, found)
        _collect_windowed_calls(expr.right, found)
    elif isinstance(expr, ast.UnaryOp):
        _collect_windowed_calls(expr.operand, found)
    elif isinstance(expr, ast.CaseWhen):
        for condition, value in expr.branches:
            _collect_windowed_calls(condition, found)
            _collect_windowed_calls(value, found)
        if expr.default is not None:
            _collect_windowed_calls(expr.default, found)


def _split_constants(call: ast.FuncCall) -> Tuple[Tuple[ast.Expr, ...],
                                                  Tuple[object, ...]]:
    """Split a call's args into per-row expressions and trailing literals.

    Uses the aggregate's declared arity (``value_args``/``extra_args``)
    so e.g. ``topn_frequency(col, 3)`` yields ``((col,), (3,))``.
    """
    from ..errors import CompileError
    from .functions import aggregate_arity  # local: avoid import cycle

    try:
        value_count, extra_count = aggregate_arity(call.name)
    except CompileError:
        # Only the registry's unknown-name signal; anything else (an
        # ImportError in functions.py, a buggy aggregate class) must
        # propagate rather than masquerade as "unknown aggregate".
        raise PlanError(f"unknown aggregate {call.name!r}") from None
    if len(call.args) != value_count + extra_count:
        raise PlanError(
            f"{call.name} expects {value_count + extra_count} argument(s), "
            f"got {len(call.args)}")
    value_args = call.args[:value_count]
    constants: List[object] = []
    for arg in call.args[value_count:]:
        if not isinstance(arg, ast.Literal):
            raise PlanError(
                f"{call.name}: trailing argument must be a literal")
        constants.append(arg.value)
    return tuple(value_args), tuple(constants)


def _normalise_frame(spec: ast.WindowSpec) -> Tuple[Optional[int],
                                                    Optional[int]]:
    """Return (rows_preceding, range_preceding_ms); exactly one is set.

    ``rows_preceding`` counts rows *including* the current one, so a
    ``ROWS BETWEEN 2 PRECEDING AND CURRENT ROW`` frame holds ≤ 3 rows.
    Unbounded frames map to ``None`` lookback inside a range frame.
    """
    if not spec.end.current_row:
        raise PlanError(
            f"window {spec.name!r}: only frames ending at CURRENT ROW are "
            "supported (the online request model anchors windows at the "
            "request tuple)")
    if spec.frame_type == ast.FrameType.ROWS:
        if spec.start.unbounded:
            return None, None  # unbounded ROWS == unbounded range
        return int(spec.start.offset) + 1, None
    if spec.start.unbounded:
        return None, None
    return None, int(spec.start.offset)


def build_plan(statement: ast.SelectStatement,
               catalog: Mapping[str, Schema]) -> QueryPlan:
    """Build the unified logical plan for ``statement``.

    Args:
        statement: parsed SELECT.
        catalog: table name → schema for every referenced table.

    Raises:
        PlanError: for unknown tables/windows, union-incompatible schemas,
            non-equi LAST JOIN conditions without any equality key, or
            unsupported frames.
    """
    if statement.table not in catalog:
        raise PlanError(f"unknown table {statement.table!r}")
    table_schema = catalog[statement.table]
    alias = statement.table_alias or statement.table

    joins = tuple(_plan_join(join, catalog) for join in statement.joins)

    # Extract every windowed aggregate call, preserving select-list order,
    # and merge identical calls (the "identical column references ...
    # merged into a unified code block" parsing optimisation, Section 4.2).
    calls: List[ast.FuncCall] = []
    for item in statement.items:
        _collect_windowed_calls(item.expr, calls)
    if statement.where is not None:
        where_calls: List[ast.FuncCall] = []
        _collect_windowed_calls(statement.where, where_calls)
        if where_calls:
            raise PlanError("aggregates are not allowed in WHERE")

    window_names = {spec.name for spec in statement.windows}
    bindings: Dict[ast.FuncCall, AggregateBinding] = {}
    per_window: Dict[str, List[AggregateBinding]] = {
        name: [] for name in window_names}
    for call in calls:
        if call in bindings:
            continue  # merged: one computation feeds every reference
        if call.over is None:
            raise PlanError(
                f"aggregate {call.name!r} requires OVER <window>")
        if call.over not in window_names:
            raise PlanError(
                f"aggregate {call.name!r} references undefined window "
                f"{call.over!r}")
        value_args, constants = _split_constants(call)
        binding = AggregateBinding(
            call=call, window=call.over, func_name=call.name,
            value_args=value_args, constants=constants,
            slot=len(bindings))
        bindings[call] = binding
        per_window[call.over].append(binding)

    windows: Dict[str, WindowPlan] = {}
    for spec in statement.windows:
        for column in (*spec.partition_by, spec.order_by):
            if column not in table_schema:
                raise PlanError(
                    f"window {spec.name!r} references unknown column "
                    f"{column!r} of table {statement.table!r}")
        for union_table in spec.union_tables:
            if union_table not in catalog:
                raise PlanError(
                    f"window {spec.name!r} unions unknown table "
                    f"{union_table!r}")
            if not table_schema.union_compatible(catalog[union_table]):
                raise PlanError(
                    f"window {spec.name!r}: table {union_table!r} is not "
                    f"union-compatible with {statement.table!r}")
        rows_preceding, range_ms = _normalise_frame(spec)
        windows[spec.name] = WindowPlan(
            spec=spec,
            partition_columns=spec.partition_by,
            order_column=spec.order_by,
            union_tables=spec.union_tables,
            rows_preceding=rows_preceding,
            range_preceding_ms=range_ms,
            exclude_current_row=spec.exclude_current_row,
            instance_not_in_window=spec.instance_not_in_window,
            maxsize=spec.maxsize,
            aggregates=tuple(per_window[spec.name]),
        )

    output_names = _output_names(statement, table_schema, catalog)
    tree = _build_tree(statement, joins, windows)
    return QueryPlan(
        statement=statement, table=statement.table, table_alias=alias,
        table_schema=table_schema, joins=joins, windows=windows,
        output_names=output_names, tree=tree)


def _plan_join(clause: ast.LastJoinClause,
               catalog: Mapping[str, Schema]) -> JoinPlan:
    if clause.table not in catalog:
        raise PlanError(f"LAST JOIN references unknown table "
                        f"{clause.table!r}")
    right_alias = clause.effective_name
    right_schema = catalog[clause.table]
    eq_keys: List[Tuple[ast.Expr, str]] = []
    residuals: List[ast.Expr] = []
    _split_join_condition(clause.condition, right_alias, clause.table,
                          right_schema, eq_keys, residuals)
    if not eq_keys:
        raise PlanError(
            f"LAST JOIN on {clause.table!r} needs at least one equality "
            "against a right-table column (index lookup path)")
    residual: Optional[ast.Expr] = None
    for piece in residuals:
        residual = piece if residual is None else ast.BinaryOp(
            "AND", residual, piece)
    return JoinPlan(clause=clause, right_table=clause.table,
                    right_alias=right_alias, order_by=clause.order_by,
                    eq_keys=tuple(eq_keys), residual=residual)


def _is_right_column(expr: ast.Expr, right_alias: str, right_table: str,
                     right_schema: Schema) -> Optional[str]:
    if isinstance(expr, ast.ColumnRef):
        if expr.table in (right_alias, right_table):
            return expr.name
        if expr.table is None and expr.name in right_schema:
            return expr.name
    return None


def _split_join_condition(condition: ast.Expr, right_alias: str,
                          right_table: str, right_schema: Schema,
                          eq_keys: List[Tuple[ast.Expr, str]],
                          residuals: List[ast.Expr]) -> None:
    """Split an AND-tree into right-column equalities and residuals."""
    if isinstance(condition, ast.BinaryOp) and condition.op == "AND":
        _split_join_condition(condition.left, right_alias, right_table,
                              right_schema, eq_keys, residuals)
        _split_join_condition(condition.right, right_alias, right_table,
                              right_schema, eq_keys, residuals)
        return
    if isinstance(condition, ast.BinaryOp) and condition.op == "=":
        right_col = _is_right_column(condition.right, right_alias,
                                     right_table, right_schema)
        left_is_right = _is_right_column(condition.left, right_alias,
                                         right_table, right_schema)
        # A right-column = left-expression pair is an index key; a
        # right-column = literal pair is a filter (stream indexes key on
        # left-row values, not constants), so it stays residual.
        if right_col is not None and left_is_right is None \
                and not isinstance(condition.left, ast.Literal):
            eq_keys.append((condition.left, right_col))
            return
        if left_is_right is not None and right_col is None \
                and not isinstance(condition.right, ast.Literal):
            eq_keys.append((condition.right, left_is_right))
            return
    residuals.append(condition)


def _output_names(statement: ast.SelectStatement, table_schema: Schema,
                  catalog: Mapping[str, Schema]) -> Tuple[str, ...]:
    names: List[str] = []
    for item in statement.items:
        if isinstance(item.expr, ast.Star):
            if item.expr.table is None:
                names.extend(table_schema.column_names)
                for join in statement.joins:
                    names.extend(catalog[join.table].column_names)
            else:
                qualifier = item.expr.table
                if qualifier in (statement.table_alias, statement.table):
                    names.extend(table_schema.column_names)
                else:
                    for join in statement.joins:
                        if qualifier in (join.effective_name, join.table):
                            names.extend(catalog[join.table].column_names)
                            break
                    else:
                        raise PlanError(
                            f"{qualifier}.* references unknown table")
            continue
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, ast.ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(f"expr_{len(names)}")
    return tuple(names)


def _build_tree(statement: ast.SelectStatement,
                joins: Tuple[JoinPlan, ...],
                windows: Dict[str, WindowPlan]) -> PlanNode:
    """Baseline (serial) operator tree; the optimizer may rewrite it."""
    node: PlanNode = DataProviderNode(table=statement.table)
    for join in joins:
        node = LastJoinNode(children=(node,), join=join)
    for name in windows:
        node = WindowAggNode(children=(node,), window=name)
    return ProjectNode(children=(node,))
