"""External-sort shuffle with spill-to-disk runs (paper Section 6).

The offline engine's shuffle step orders every window-source event by
``(partition key, ts)`` so tasks can be cut from contiguous groups.  At
GLQ/TalkingData scale that ordering no longer fits in memory, so this
module implements the classic external sort the paper's batch engine
inherits from Spark:

1. events accumulate in an in-memory buffer until a configured byte
   budget is hit;
2. the buffer is sorted and written out as one **run** (a temp file of
   length-prefixed pickled records — the payloads themselves are
   already compact ``RowCodec`` bytes, the same wire format the process
   pool uses);
3. iteration k-way-merges the sorted runs with ``heapq.merge``, so the
   engine streams groups in order while holding only one buffer plus
   one record per run.

Spill activity is observable: :class:`ExternalSorter` counts runs,
spilled rows and bytes, which the engine surfaces as the
``offline.shuffle.*`` metrics and in ``OfflineStats.shuffle``.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import pickle
import tempfile
from operator import itemgetter
from typing import Any, Iterator, List, Optional, Tuple

from ..errors import ExecutionError

__all__ = ["SpillConfig", "ExternalSorter"]


@dataclasses.dataclass(frozen=True)
class SpillConfig:
    """Shuffle memory budget.

    ``memory_budget_bytes`` bounds the in-memory sort buffer (counting
    encoded record payloads plus a small per-record overhead); when the
    working set exceeds it, sorted runs spill to ``tmp_dir`` (the
    system temp directory by default).
    """

    memory_budget_bytes: int = 16 * 1024 * 1024
    tmp_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.memory_budget_bytes <= 0:
            raise ExecutionError("shuffle memory budget must be positive")


# Accounting overhead per buffered record: the sort-key tuple and list
# slot cost something even though only payload bytes are precise.
_RECORD_OVERHEAD = 64

_Record = Tuple[Tuple[Any, ...], bytes]


class ExternalSorter:
    """Budget-bounded sorter over ``(sort_key, payload)`` records.

    Records are added in any order; :meth:`sorted_records` streams them
    back ordered by ``sort_key``.  Keys must be comparable tuples and
    picklable (the engine uses ``(str(key), pickled key, ts, tie...)``,
    which both totally orders groups and keeps equal keys contiguous).
    """

    def __init__(self, config: SpillConfig = SpillConfig()) -> None:
        self.config = config
        self._buffer: List[_Record] = []
        self._buffer_bytes = 0
        self._run_paths: List[str] = []
        self._drained = False
        # Observability counters, read by the engine after the merge.
        self.rows = 0
        self.runs = 0
        self.spilled_rows = 0
        self.spilled_bytes = 0

    # ------------------------------------------------------------------

    def add(self, sort_key: Tuple[Any, ...], payload: bytes) -> None:
        if self._drained:
            raise ExecutionError("sorter already drained")
        self._buffer.append((sort_key, payload))
        self._buffer_bytes += len(payload) + _RECORD_OVERHEAD
        self.rows += 1
        if self._buffer_bytes >= self.config.memory_budget_bytes:
            self._spill_run()

    def _spill_run(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort(key=itemgetter(0))
        handle = tempfile.NamedTemporaryFile(
            mode="wb", delete=False, prefix="repro-shuffle-",
            suffix=".run", dir=self.config.tmp_dir)
        try:
            with handle:
                for record in self._buffer:
                    pickle.dump(record, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
            self._run_paths.append(handle.name)
        except BaseException:
            os.unlink(handle.name)
            raise
        self.runs += 1
        self.spilled_rows += len(self._buffer)
        self.spilled_bytes += sum(len(payload)
                                  for _key, payload in self._buffer)
        self._buffer = []
        self._buffer_bytes = 0

    @staticmethod
    def _read_run(path: str) -> Iterator[_Record]:
        with open(path, "rb") as handle:
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return

    def sorted_records(self) -> Iterator[_Record]:
        """Stream all records in ``sort_key`` order; single use."""
        if self._drained:
            raise ExecutionError("sorter already drained")
        self._drained = True
        self._buffer.sort(key=itemgetter(0))
        buffer, self._buffer = self._buffer, []
        self._buffer_bytes = 0
        try:
            if not self._run_paths:
                yield from buffer
                return
            streams = [self._read_run(path) for path in self._run_paths]
            yield from heapq.merge(*streams, iter(buffer),
                                   key=itemgetter(0))
        finally:
            self.close()

    def close(self) -> None:
        """Delete any remaining run files."""
        for path in self._run_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._run_paths = []
