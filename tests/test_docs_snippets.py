"""Execute every fenced ``python`` block in the prose docs.

Documentation that shows code must show *working* code: each Markdown
file's ``` ```python ``` blocks run top to bottom in one shared
namespace (so later blocks may use names defined by earlier ones,
exactly as a reader following along would).  Run just these checks with
``make verify-docs`` (the ``docs`` marker).
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks(path):
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


@pytest.mark.docs
@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda path: path.name)
def test_python_blocks_execute(doc):
    blocks = _blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name} has no python blocks")
    namespace = {"__name__": f"docs_snippet_{doc.stem}"}
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{doc.name}:block{index}", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{doc.name} python block #{index} failed: "
                f"{type(error).__name__}: {error}\n--- block ---\n{block}")


@pytest.mark.docs
def test_readme_has_runnable_quickstart():
    assert len(_blocks(ROOT / "README.md")) >= 2


@pytest.mark.docs
def test_observability_doc_exists_with_examples():
    doc = ROOT / "docs" / "observability.md"
    assert doc.exists()
    assert len(_blocks(doc)) >= 1


@pytest.mark.docs
def test_network_protocol_doc_exists_with_examples():
    doc = ROOT / "docs" / "network_protocol.md"
    assert doc.exists()
    # The protocol page is a worked wire session: several executed
    # blocks (startup, both query protocols, pipelining, errors).
    assert len(_blocks(doc)) >= 4
