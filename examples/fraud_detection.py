"""Real-time anti-fraud features with long-window pre-aggregation.

Models the bank anti-fraud deployments the paper cites (sub-20 ms risk
checks): a card-transaction stream with *year-scale* behavioural windows
that are only servable online through the long-window pre-aggregation of
Section 5.1 (``OPTIONS(long_windows=...)``, Figure 11).

Demonstrates:

* a DEPLOY statement with the ``long_windows`` option,
* the asynchronous aggregator-update pipeline through the binlog,
* the latency difference against the same deployment without the option,
* the consistency check between both deployments.

Run:  python examples/fraud_detection.py
"""

from __future__ import annotations

import random
import time

from repro import OpenMLDB

HOUR_MS = 3_600_000
DAY_MS = 24 * HOUR_MS

FEATURE_SQL = (
    "SELECT card, "
    "  sum(amount) OVER w_year AS spend_1y, "
    "  count(amount) OVER w_year AS txns_1y, "
    "  max(amount) OVER w_year AS max_txn_1y, "
    "  avg(amount) OVER w_day AS avg_txn_1d, "
    "  count(amount) OVER w_day AS txns_1d "
    "FROM txns WINDOW "
    "  w_year AS (PARTITION BY card ORDER BY ts "
    "    ROWS_RANGE BETWEEN 365d PRECEDING AND CURRENT ROW), "
    "  w_day AS (PARTITION BY card ORDER BY ts "
    "    ROWS_RANGE BETWEEN 1d PRECEDING AND CURRENT ROW)")


def main() -> None:
    db = OpenMLDB()
    db.execute("CREATE TABLE txns (card string, ts timestamp, "
               "amount double, INDEX(KEY=card, TS=ts))")

    # A year of hourly activity on a busy card + background cards.
    rng = random.Random(13)
    print("loading one year of transactions ...")
    for hour in range(365 * 24):
        db.insert("txns", ("hot-card", hour * HOUR_MS,
                           round(rng.uniform(5, 200), 2)))
        if hour % 7 == 0:
            db.insert("txns", (f"card-{hour % 50}", hour * HOUR_MS,
                               round(rng.uniform(5, 80), 2)))

    # Deploy twice: with and without long-window pre-aggregation.
    db.deploy("fraud_raw", FEATURE_SQL)
    deployment = db.deploy("fraud_fast", FEATURE_SQL,
                           long_windows="w_year:1d")
    db.flush_preagg()
    print(f"pre-aggregation backfill took "
          f"{deployment.backfill_seconds:.3f}s; "
          f"aggregators: {deployment.preagg_stats()}")

    incoming = ("hot-card", 365 * DAY_MS + 1, 999.0)

    def timed(name):
        started = time.perf_counter()
        features = db.request(name, incoming)
        return features, (time.perf_counter() - started) * 1_000

    raw_features, raw_ms = timed("fraud_raw")
    fast_features, fast_ms = timed("fraud_fast")

    print("\nrisk features for the incoming transaction:")
    for key, value in fast_features.items():
        print(f"  {key:12s} = {value}")
    print(f"\nrequest latency without pre-aggregation: {raw_ms:8.2f} ms")
    print(f"request latency with    pre-aggregation: {fast_ms:8.2f} ms")
    print(f"speedup: {raw_ms / fast_ms:.1f}x  (paper Figure 11: ~45x)")

    mismatched = [key for key in raw_features
                  if abs((raw_features[key] if isinstance(
                      raw_features[key], (int, float)) else 0)
                      - (fast_features[key] if isinstance(
                          fast_features[key], (int, float)) else 0))
                  > 1e-6 and key != "card"]
    print("feature agreement:", "OK" if not mismatched else mismatched)

    # New transactions keep the aggregators fresh asynchronously.
    db.insert("txns", ("hot-card", 365 * DAY_MS + 2, 50.0))
    db.flush_preagg()
    print("\naggregators absorbed the new transaction via the binlog:",
          deployment.preagg_stats())
    db.close()


if __name__ == "__main__":
    main()
