"""Deployments: compiled feature scripts bound to online serving.

A deployment is the unit the paper's Figure 3 pushes from development to
production: a SELECT compiled once, plus serving options — most notably
``OPTIONS(long_windows="w1:1d")``, which turns on long-window
pre-aggregation (Section 5.1, Figure 11) for the named windows.

Deploying with long windows:

1. verifies the windows exist and use time-range frames;
2. creates one :class:`~repro.online.preagg.PreAggregator` per *mergeable*
   aggregate bound to those windows (non-mergeable aggregates keep the
   raw-scan path — correctness never depends on pre-aggregation);
3. **backfills** the aggregators from existing table data (the paper's
   "slightly higher data loading overhead");
4. registers an ``update_aggr`` binlog closure so subsequent inserts
   maintain the aggregators asynchronously.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import DeploymentError
from ..schema import Row
from ..sql import ast
from ..sql.compiler import CompiledQuery
from ..storage.memtable import normalize_ts
from ..online.incremental import IncrementalWindowState
from ..online.preagg import (LongWindowOption, PreAggregator,
                             parse_long_windows)

__all__ = ["Deployment"]


@dataclasses.dataclass
class Deployment:
    """One deployed feature script.

    Attributes:
        name: deployment name (``DEPLOY name ...``).
        sql: original SQL text (for introspection/EXPLAIN).
        compiled: the compiled plan executed per request.
        long_windows: parsed long-window options, empty when disabled.
        preaggs: window name → {aggregate slot → PreAggregator}; the
            online engine answers these slots from pre-aggregation.
        incrementals: canonical window name → ingest-time running window
            state (Section 5.2); the online engine answers whole windows
            from these on warm keys, falling back to scans otherwise.
        backfill_seconds: measured aggregator backfill cost at deploy time.
    """

    name: str
    sql: str
    compiled: CompiledQuery
    long_windows: Tuple[LongWindowOption, ...] = ()
    preaggs: Dict[str, Dict[int, PreAggregator]] = dataclasses.field(
        default_factory=dict)
    incrementals: Dict[str, IncrementalWindowState] = dataclasses.field(
        default_factory=dict)
    backfill_seconds: float = 0.0

    @classmethod
    def from_statement(cls, statement: ast.DeployStatement, sql: str,
                       compiled: CompiledQuery) -> "Deployment":
        option = statement.option("long_windows")
        long_windows = parse_long_windows(option) if option else ()
        return cls(name=statement.name, sql=sql, compiled=compiled,
                   long_windows=long_windows)

    # ------------------------------------------------------------------

    def initialize_preagg(
            self, tables: Mapping[str, Any],
            register_updater: Callable[[str, Callable], None],
            levels: int = 2, obs: Optional[Any] = None) -> None:
        """Create, backfill, and wire the deployment's pre-aggregators.

        Args:
            tables: table name → storage object.
            register_updater: callback ``(table_name, update_closure)``
                hooking aggregator maintenance into the binlog pipeline.
            levels: aggregator hierarchy depth (Section 5.1).
            obs: optional observability handle; aggregators record
                absorbed-row / query / bucket-merge counters when set.
        """
        started = time.perf_counter()
        for option in self.long_windows:
            window = self.compiled.windows.get(option.window)
            if window is None:
                raise DeploymentError(
                    f"long_windows references unknown window "
                    f"{option.window!r}")
            plan = window.plan
            if not plan.is_range_frame:
                raise DeploymentError(
                    f"long_windows window {option.window!r} must use a "
                    "ROWS_RANGE frame")
            if plan.union_tables:
                raise DeploymentError(
                    "long-window pre-aggregation over WINDOW UNION is not "
                    "supported; drop the union or the long_windows option")
            if plan.instance_not_in_window:
                raise DeploymentError(
                    "long-window pre-aggregation aggregates instance-table "
                    "rows, which INSTANCE_NOT_IN_WINDOW excludes")
            slot_map: Dict[int, PreAggregator] = {}
            for compiled_agg in window.aggregates:
                aggregator = self._build_aggregator(
                    window, compiled_agg, option, levels)
                if aggregator is None:
                    continue  # non-mergeable: stays on the raw path
                if obs is not None and obs.enabled:
                    aggregator.bind_obs(obs)
                table = tables[self.compiled.plan.table]
                aggregator.backfill(list(table.rows()))
                register_updater(self.compiled.plan.table,
                                 aggregator.make_update_closure())
                slot_map[compiled_agg.slot] = aggregator
            if slot_map:
                self.preaggs[option.window] = slot_map
        self.backfill_seconds = time.perf_counter() - started

    @staticmethod
    def _build_aggregator(window, compiled_agg, option: LongWindowOption,
                          levels: int) -> Optional[PreAggregator]:
        from ..sql.functions import get_aggregate

        binding = compiled_agg.binding
        probe = get_aggregate(binding.func_name, *binding.constants)
        if not probe.mergeable:
            return None
        order_position = window.order_position

        def ts_fn(row: Row, position: int = order_position) -> int:
            return normalize_ts(row[position])

        return PreAggregator(
            func_name=binding.func_name, constants=binding.constants,
            arg_fn=compiled_agg.arg_fn, key_fn=window.partition_key,
            ts_fn=ts_fn, bucket_ms=option.bucket_ms, levels=levels)

    # ------------------------------------------------------------------

    def initialize_incremental(
            self, tables: Mapping[str, Any],
            register_updater: Callable[[str, Callable], None]) -> None:
        """Create, backfill, and wire ingest-time window state.

        Every *eligible* window gets a per-key running aggregate state
        maintained from the binlog (Section 5.2 applied at ingest time):
        no WINDOW UNION, no INSTANCE_NOT_IN_WINDOW, all aggregates
        invertible and order-insensitive, and a primary table whose TTL
        eviction can be mirrored (memory tables).  Windows already
        served by long-window pre-aggregation keep that path.  Anything
        ineligible silently stays on the scan-fold path — incremental
        state is an accelerator, never a semantics change.
        """
        table_name = self.compiled.plan.table
        table = tables.get(table_name)
        if table is None or not hasattr(table, "subscribe_eviction"):
            return
        for name, window in self.compiled.windows.items():
            if not window.aggregates or name in self.preaggs:
                continue
            state = IncrementalWindowState.for_window(
                window, tables, table_name)
            if state is None:
                continue
            state.backfill(table.rows())
            register_updater(table_name, state.make_update_closure())
            table.subscribe_eviction(state.on_ttl_evict)
            self.incrementals[name] = state

    @property
    def uses_incremental(self) -> bool:
        return bool(self.incrementals)

    def incremental_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-window ingest-state footprint (keys and buffered rows)."""
        return {
            name: {"keys": state.key_count,
                   "buffered_rows": state.buffered_rows(),
                   "rows_seen": state.rows_seen}
            for name, state in self.incrementals.items()
        }

    @property
    def uses_preagg(self) -> bool:
        return bool(self.preaggs)

    def preagg_stats(self) -> Dict[str, Dict[int, int]]:
        """rows absorbed per (window, slot) — observability for Fig. 11."""
        return {
            window: {slot: aggregator.rows_absorbed
                     for slot, aggregator in slots.items()}
            for window, slots in self.preaggs.items()
        }
