"""Golden tests for the OpenMLDB SQL dialect as a whole.

These exercise the dialect surface end to end (parse → plan → compile →
execute) for every documented construct, catching regressions that
single-layer tests can miss.
"""

import pytest

from repro import OpenMLDB
from repro.errors import LexError, ParseError, PlanError
from repro.sql.parser import parse, parse_select


@pytest.fixture
def db():
    database = OpenMLDB()
    database.execute(
        "CREATE TABLE events (uid string, ts timestamp, amount double, "
        "qty int, tag string, note string, INDEX(KEY=uid, TS=ts))")
    rows = [
        ("u1", 1_000, 10.0, 1, "a", "k1:5,k2:7"),
        ("u1", 2_000, 20.0, 2, "b", "k3:1"),
        ("u1", 3_000, 30.0, 3, "a", None),
        ("u2", 1_500, 5.0, 1, "c", "k9:9"),
    ]
    for row in rows:
        database.insert("events", row)
    yield database
    database.close()


def request(db, select_body, row=("u1", 4_000, 40.0, 4, "a", "x:1")):
    name = f"g{abs(hash(select_body)) % 10 ** 8}"
    db.deploy(name, select_body)
    return db.request(name, row)


WINDOW = (" FROM events WINDOW w AS (PARTITION BY uid ORDER BY ts "
          "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW)")


class TestDialectEndToEnd:
    def test_arithmetic_and_case(self, db):
        result = request(db, (
            "SELECT amount * 2 + 1 AS double_amt, "
            "CASE WHEN qty > 2 THEN 'bulk' ELSE 'single' END AS kind "
            "FROM events"))
        assert result == {"double_amt": 81.0, "kind": "bulk"}

    def test_string_functions(self, db):
        result = request(db, (
            "SELECT upper(tag) AS u, substr(note, 1, 1) AS first, "
            "tag || '-' || uid AS joined, split_by_key(note, ',', ':') "
            "AS keys FROM events"))
        assert result == {"u": "A", "first": "x", "joined": "a-u1",
                          "keys": "x"}

    def test_null_handling(self, db):
        result = request(db, (
            "SELECT ifnull(note, 'missing') AS n, "
            "note IS NULL AS is_null FROM events"),
            row=("u1", 4_000, 1.0, 1, "a", None))
        assert result == {"n": "missing", "is_null": True}

    def test_every_standard_aggregate(self, db):
        result = request(db, (
            "SELECT sum(amount) OVER w AS s, avg(amount) OVER w AS a, "
            "min(amount) OVER w AS lo, max(amount) OVER w AS hi, "
            "count(amount) OVER w AS n, "
            "distinct_count(tag) OVER w AS dc, "
            "variance(amount) OVER w AS var, "
            "stddev(amount) OVER w AS sd" + WINDOW))
        assert result["s"] == 100.0
        assert result["a"] == 25.0
        assert result["lo"] == 10.0
        assert result["hi"] == 40.0
        assert result["n"] == 4
        assert result["dc"] == 2
        assert result["var"] == pytest.approx(125.0)
        assert result["sd"] == pytest.approx(125.0 ** 0.5)

    def test_table_one_extensions(self, db):
        result = request(db, (
            "SELECT topn_frequency(tag, 2) OVER w AS top, "
            "avg_cate_where(amount, qty > 1, tag) OVER w AS acw, "
            "drawdown(amount) OVER w AS dd, "
            "ew_avg(amount, 0.5) OVER w AS ew, "
            "lag(amount, 1) OVER w AS prev" + WINDOW),
            row=("u1", 4_000, 15.0, 4, "a", "x"))
        assert result["top"] == "a,b"
        assert result["acw"] == "a:22.5,b:20"
        assert result["dd"] == pytest.approx(0.5)  # 30 → 15
        assert result["prev"] == 30.0

    def test_where_and_comparisons(self, db):
        rows, _ = db.offline_query(
            "SELECT uid FROM events WHERE amount >= 20.0 AND tag != 'c'")
        assert len(rows) == 2

    def test_like(self, db):
        rows, _ = db.offline_query(
            "SELECT uid FROM events WHERE note LIKE 'k%:5%'")
        assert len(rows) == 1

    def test_limit(self, db):
        rows, _ = db.offline_query("SELECT uid FROM events LIMIT 2")
        assert len(rows) == 2


class TestDialectErrors:
    def test_undefined_column(self, db):
        with pytest.raises(PlanError):
            db.offline_query("SELECT ghost FROM events")

    def test_undefined_table(self, db):
        with pytest.raises(PlanError):
            db.offline_query("SELECT a FROM nowhere")

    def test_syntax_error_positions(self):
        with pytest.raises(ParseError, match="offset"):
            parse("SELECT FROM t")

    def test_lex_error(self):
        with pytest.raises(LexError):
            parse("SELECT a § b FROM t")

    def test_window_frame_required_parts(self):
        with pytest.raises(ParseError):
            parse_select(
                "SELECT sum(v) OVER w AS s FROM t WINDOW w AS "
                "(PARTITION BY k ROWS BETWEEN 1 PRECEDING AND "
                "CURRENT ROW)")  # ORDER BY missing

    def test_aggregate_arity_checked(self, db):
        with pytest.raises(PlanError):
            db.offline_query(
                "SELECT topn_frequency(tag) OVER w AS t" + WINDOW)
